"""System Energy Optimizer: bandit learning over system configurations.

The SEO (paper Sec. 3.2) treats every system configuration as the arm of
a multi-armed bandit whose reward is energy efficiency (rate/power).  It

* estimates per-configuration rate and power with EWMAs (Eqn. 1),
* initializes estimates from an optimistic prior — performance linear in
  resources, power cubic in clock speed and linear in cores ("an
  overestimate for all applications, but not a gross overestimate"),
* balances exploration and exploitation with VDBE (Eqn. 2),
* exploits by selecting the configuration with the highest estimated
  efficiency (Eqn. 3).

Priors are supplied as unit-free *shapes*; the optimizer learns global
scale factors from measurements (EWMA of measured/shape over visited
configurations) so unvisited configurations are estimated as
``shape × scale × optimism`` — keeping them optimistic, as the paper's
initialization intends, while giving them correct units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence

import numpy as np

from .ewma import DEFAULT_ALPHA
from .vdbe import Vdbe


@dataclass(frozen=True)
class SeoDecision:
    """One SEO selection: the arm to pull and why."""

    index: int
    explored: bool
    epsilon: float


class SystemEnergyOptimizer:
    """Bandit over system configurations maximizing energy efficiency.

    Parameters
    ----------
    prior_rate_shape / prior_power_shape:
        Positive arrays over configurations giving the *shape* of the
        optimistic prior (any units).
    alpha:
        EWMA weight of new samples (paper: 0.85).
    optimism:
        Multiplier applied to scale-calibrated priors of unvisited
        configurations (≥ 1).  The default 1.0 trusts the prior's own
        optimism (its shape already overestimates, per the paper);
        values above 1 force longer systematic sweeps of unvisited
        configurations, which costs energy on large spaces — ablated in
        ``benchmarks/bench_ablations.py``.
    vdbe:
        Exploration state; defaults to the paper's parameters.
    seed:
        RNG seed for the exploration draws.
    """

    def __init__(
        self,
        prior_rate_shape: Sequence[float],
        prior_power_shape: Sequence[float],
        alpha: float = DEFAULT_ALPHA,
        optimism: float = 1.0,
        vdbe: Optional[Vdbe] = None,
        seed: int = 0,
    ) -> None:
        rates = np.asarray(prior_rate_shape, dtype=float)
        powers = np.asarray(prior_power_shape, dtype=float)
        if rates.shape != powers.shape or rates.ndim != 1 or len(rates) == 0:
            raise ValueError("prior shapes must be equal-length 1-D arrays")
        if (rates <= 0).any() or (powers <= 0).any():
            raise ValueError("prior shapes must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if optimism < 1.0:
            raise ValueError("optimism must be >= 1")
        self.n_configs = len(rates)
        self.alpha = alpha
        self.optimism = optimism
        self._rate_shape = rates
        self._power_shape = powers
        self._rate_est = np.zeros(self.n_configs)
        self._power_est = np.zeros(self.n_configs)
        self._visited = np.zeros(self.n_configs, dtype=bool)
        self._rate_scale: Optional[float] = None
        self._power_scale: Optional[float] = None
        self.vdbe = vdbe if vdbe is not None else Vdbe(self.n_configs)
        self._rng = np.random.default_rng(seed)
        self.updates = 0
        self.last_rate_delta = 0.0

    # -- estimates ------------------------------------------------------------
    def rate_estimate(self, index: int) -> float:
        """Current r̂ for a configuration (prior-based if unvisited)."""
        if self._visited[index]:
            return float(self._rate_est[index])
        scale = self._rate_scale if self._rate_scale is not None else 1.0
        return float(self._rate_shape[index] * scale * self.optimism)

    def power_estimate(self, index: int) -> float:
        """Current p̂ for a configuration (prior-based if unvisited).

        Note power priors are *divided* by optimism: an optimistic
        efficiency prior overestimates rate and underestimates power.
        """
        if self._visited[index]:
            return float(self._power_est[index])
        scale = self._power_scale if self._power_scale is not None else 1.0
        return float(self._power_shape[index] * scale / self.optimism)

    def efficiency_estimate(self, index: int) -> float:
        return self.rate_estimate(index) / self.power_estimate(index)

    def _all_rate_estimates(self) -> np.ndarray:
        scale = self._rate_scale if self._rate_scale is not None else 1.0
        estimates = self._rate_shape * scale * self.optimism
        estimates[self._visited] = self._rate_est[self._visited]
        return estimates

    def _all_power_estimates(self) -> np.ndarray:
        scale = self._power_scale if self._power_scale is not None else 1.0
        estimates = self._power_shape * scale / self.optimism
        estimates[self._visited] = self._power_est[self._visited]
        return estimates

    @property
    def best_index(self) -> int:
        """Eqn. 3: configuration with the highest estimated efficiency."""
        efficiency = self._all_rate_estimates() / self._all_power_estimates()
        return int(efficiency.argmax())

    @property
    def epsilon(self) -> float:
        return self.vdbe.epsilon

    @property
    def visited_count(self) -> int:
        return int(self._visited.sum())

    # -- bandit interface ------------------------------------------------------
    def select(self) -> SeoDecision:
        """Pick the next configuration (explore w.p. ε, else exploit)."""
        rand = float(self._rng.random())
        if self.vdbe.should_explore(rand):
            index = int(self._rng.integers(self.n_configs))
            return SeoDecision(
                index=index, explored=True, epsilon=self.vdbe.epsilon
            )
        return SeoDecision(
            index=self.best_index, explored=False, epsilon=self.vdbe.epsilon
        )

    def update(self, index: int, rate: float, power: float) -> None:
        """Fold one measurement of configuration ``index`` (Eqns. 1–2)."""
        if rate <= 0 or power <= 0:
            raise ValueError("rate and power must be positive")
        if not 0 <= index < self.n_configs:
            raise IndexError(index)
        prior_rate = self.rate_estimate(index)
        prior_power = self.power_estimate(index)
        estimated_eff = prior_rate / prior_power
        self.last_rate_delta = abs(rate / prior_rate - 1.0)

        # Global scale calibration for unvisited configurations.
        rate_ratio = rate / self._rate_shape[index]
        power_ratio = power / self._power_shape[index]
        if self._rate_scale is None:
            self._rate_scale = rate_ratio
            self._power_scale = power_ratio
        else:
            blend = 0.25
            self._rate_scale += blend * (rate_ratio - self._rate_scale)
            self._power_scale += blend * (power_ratio - self._power_scale)

        # Per-configuration EWMA seeded from the (calibrated) prior.
        if not self._visited[index]:
            self._rate_est[index] = prior_rate
            self._power_est[index] = prior_power
            self._visited[index] = True
        self._rate_est[index] += self.alpha * (rate - self._rate_est[index])
        self._power_est[index] += self.alpha * (
            power - self._power_est[index]
        )
        self.vdbe.update(rate / power, estimated_eff)
        self.updates += 1

    # -- persistence ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable learned state.

        Everything the VDBE exploration paid for is here — priors,
        per-arm EWMA tables, visit mask, scale calibration, ε — so a new
        optimizer for the same configuration space can warm-start
        instead of re-exploring (see :mod:`repro.service.state`).  The
        RNG state rides along so a restore without an explicit reseed
        continues the exact exploration sequence.
        """
        return {
            "alpha": self.alpha,
            "optimism": self.optimism,
            "rate_shape": self._rate_shape.tolist(),
            "power_shape": self._power_shape.tolist(),
            "rate_est": self._rate_est.tolist(),
            "power_est": self._power_est.tolist(),
            "visited": [bool(flag) for flag in self._visited],
            "rate_scale": self._rate_scale,
            "power_scale": self._power_scale,
            "vdbe": self.vdbe.snapshot(),
            "updates": self.updates,
            "last_rate_delta": self.last_rate_delta,
            "rng_state": self._rng.bit_generator.state,
        }

    @classmethod
    def restore(
        cls,
        snapshot: Mapping[str, Any],
        seed: Optional[int] = None,
    ) -> "SystemEnergyOptimizer":
        """Rebuild an optimizer from :meth:`snapshot` output.

        ``seed`` reseeds the exploration RNG (for replicated runs that
        share learned tables but need independent — or deterministic —
        exploration draws); ``None`` resumes the snapshotted RNG state.
        """
        seo = cls(
            snapshot["rate_shape"],
            snapshot["power_shape"],
            alpha=float(snapshot["alpha"]),
            optimism=float(snapshot["optimism"]),
            vdbe=Vdbe.restore(snapshot["vdbe"]),
            seed=0 if seed is None else seed,
        )
        rate_est = np.asarray(snapshot["rate_est"], dtype=float)
        power_est = np.asarray(snapshot["power_est"], dtype=float)
        visited = np.asarray(snapshot["visited"], dtype=bool)
        if not (
            rate_est.shape
            == power_est.shape
            == visited.shape
            == (seo.n_configs,)
        ):
            raise ValueError(
                "snapshot tables do not match the configuration space"
            )
        seo._rate_est = rate_est
        seo._power_est = power_est
        seo._visited = visited
        for attr in ("rate_scale", "power_scale"):
            value = snapshot[attr]
            setattr(
                seo, f"_{attr}", None if value is None else float(value)
            )
        seo.updates = int(snapshot["updates"])
        seo.last_rate_delta = float(snapshot["last_rate_delta"])
        if seed is None and snapshot.get("rng_state") is not None:
            seo._rng.bit_generator.state = snapshot["rng_state"]
        return seo
