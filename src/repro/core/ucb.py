"""UCB1 alternative to the VDBE ε-greedy learner.

The paper picks a Boltzmann/VDBE bandit (Sec. 3.2); classic upper-
confidence-bound exploration is the natural comparison point.  This
module provides a drop-in SEO variant that selects

    argmax_i  eff̂_i + c · sqrt(ln t / n_i)

over *visited* arms, seeding unvisited arms from the same calibrated
optimistic prior as the default learner (an unvisited arm's bonus is
infinite, so priors mainly order the first pulls).  It exposes the same
``select``/``update``/estimate interface as
:class:`repro.core.bandit.SystemEnergyOptimizer`, so the runtime and the
ablation bench can swap it in unchanged.

UCB1's weakness in this setting — and the reason the paper's choice is
defensible — is that it *must* pull every arm once before its bounds
mean anything: on the Server's 1024 configurations that forced sweep
costs real energy.  ``bench_ablations.py`` quantifies this.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .bandit import SeoDecision
from .ewma import DEFAULT_ALPHA


class UcbSystemOptimizer:
    """UCB1 bandit over system configurations.

    Parameters
    ----------
    prior_rate_shape / prior_power_shape:
        Same unit-free optimistic shapes as the default learner; they
        order the initial pulls.
    exploration:
        The UCB exploration constant ``c`` (scaled by the running mean
        efficiency so it is unit-free).
    alpha:
        EWMA weight for per-arm rate/power estimates.
    max_initial_pulls:
        Cap on the forced pull-every-arm phase: after this many distinct
        arms have been tried, unvisited arms no longer get an infinite
        bonus and are ranked by prior instead.  ``None`` = classic UCB1.
    """

    def __init__(
        self,
        prior_rate_shape: Sequence[float],
        prior_power_shape: Sequence[float],
        exploration: float = 0.5,
        alpha: float = DEFAULT_ALPHA,
        max_initial_pulls: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        rates = np.asarray(prior_rate_shape, dtype=float)
        powers = np.asarray(prior_power_shape, dtype=float)
        if rates.shape != powers.shape or rates.ndim != 1 or not len(rates):
            raise ValueError("prior shapes must be equal-length 1-D arrays")
        if (rates <= 0).any() or (powers <= 0).any():
            raise ValueError("prior shapes must be positive")
        if exploration < 0:
            raise ValueError("exploration must be non-negative")
        self.n_configs = len(rates)
        self.exploration = exploration
        self.alpha = alpha
        self.max_initial_pulls = max_initial_pulls
        self._prior_eff = rates / powers
        self._rate_est = np.zeros(self.n_configs)
        self._power_est = np.ones(self.n_configs)
        self._pulls = np.zeros(self.n_configs, dtype=int)
        self._rate_scale: Optional[float] = None
        self._power_scale: Optional[float] = None
        self._rate_shape = rates
        self._power_shape = powers
        self._rng = np.random.default_rng(seed)
        self.updates = 0
        self.last_rate_delta = 0.0

    # -- estimates (same interface as SystemEnergyOptimizer) -----------------
    def rate_estimate(self, index: int) -> float:
        if self._pulls[index]:
            return float(self._rate_est[index])
        scale = self._rate_scale if self._rate_scale is not None else 1.0
        return float(self._rate_shape[index] * scale)

    def power_estimate(self, index: int) -> float:
        if self._pulls[index]:
            return float(self._power_est[index])
        scale = self._power_scale if self._power_scale is not None else 1.0
        return float(self._power_shape[index] * scale)

    def efficiency_estimate(self, index: int) -> float:
        return self.rate_estimate(index) / self.power_estimate(index)

    @property
    def visited_count(self) -> int:
        return int((self._pulls > 0).sum())

    @property
    def epsilon(self) -> float:
        """No ε in UCB; reported as 0 for interface compatibility."""
        return 0.0

    @property
    def best_index(self) -> int:
        """Highest estimated efficiency (no exploration bonus)."""
        visited = self._pulls > 0
        if not visited.any():
            return int(self._prior_eff.argmax())
        eff = np.where(
            visited,
            np.divide(
                self._rate_est,
                self._power_est,
                out=np.zeros_like(self._rate_est),
                where=visited,
            ),
            -np.inf,
        )
        return int(eff.argmax())

    # -- bandit interface ------------------------------------------------------
    def _ucb_scores(self) -> np.ndarray:
        visited = self._pulls > 0
        eff = np.zeros(self.n_configs)
        eff[visited] = self._rate_est[visited] / self._power_est[visited]
        scale = eff[visited].mean() if visited.any() else 1.0
        t = max(2, self.updates + 1)
        bonus = np.zeros(self.n_configs)
        bonus[visited] = (
            self.exploration
            * scale
            * np.sqrt(math.log(t) / self._pulls[visited])
        )
        scores = eff + bonus
        unvisited = ~visited
        if unvisited.any():
            if (
                self.max_initial_pulls is not None
                and self.visited_count >= self.max_initial_pulls
            ):
                prior_scale = scale if visited.any() else 1.0
                normalized = self._prior_eff / self._prior_eff.max()
                scores[unvisited] = normalized[unvisited] * prior_scale
            else:
                scores[unvisited] = np.inf
        return scores

    def select(self) -> SeoDecision:
        scores = self._ucb_scores()
        best = scores.max()
        # Break ties (notably among the inf-scored unvisited arms) by
        # prior efficiency, then randomly.
        candidates = np.flatnonzero(scores == best)
        if len(candidates) > 1:
            priors = self._prior_eff[candidates]
            top = candidates[priors == priors.max()]
            index = int(self._rng.choice(top))
        else:
            index = int(candidates[0])
        explored = self._pulls[index] == 0 or index != self.best_index
        return SeoDecision(index=index, explored=bool(explored), epsilon=0.0)

    def update(self, index: int, rate: float, power: float) -> None:
        if rate <= 0 or power <= 0:
            raise ValueError("rate and power must be positive")
        if not 0 <= index < self.n_configs:
            raise IndexError(index)
        prior_rate = self.rate_estimate(index)
        self.last_rate_delta = abs(rate / prior_rate - 1.0)
        rate_ratio = rate / self._rate_shape[index]
        power_ratio = power / self._power_shape[index]
        if self._rate_scale is None:
            self._rate_scale = rate_ratio
            self._power_scale = power_ratio
        else:
            self._rate_scale += 0.25 * (rate_ratio - self._rate_scale)
            self._power_scale += 0.25 * (power_ratio - self._power_scale)
        if not self._pulls[index]:
            self._rate_est[index] = rate
            self._power_est[index] = power
        else:
            self._rate_est[index] += self.alpha * (
                rate - self._rate_est[index]
            )
            self._power_est[index] += self.alpha * (
                power - self._power_est[index]
            )
        self._pulls[index] += 1
        self.updates += 1
