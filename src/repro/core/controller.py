"""Application Accuracy Optimizer: the speedup PI controller (Sec. 3.3).

Given the learner's estimate of the best system configuration's rate and
power, the AAO computes the *additional* speedup the application must
provide to hit the energy goal (Eqn. 4) and eliminates the tracking
error with an integral controller whose gain depends on the adaptive
pole (Eqn. 5)::

    s(t) = s(t−1) + (1 − pole(t)) · error(t) / r̂_bestsys(t)

The speedup is clamped to the application's achievable range with
anti-windup (the integrator does not accumulate beyond the clamp), a
standard actuator-saturation guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

from .contracts import (
    check,
    invariant,
    non_negative,
    positive,
    require,
    stable_pole,
)


@require(
    "target_energy_per_work",
    positive,
    "target energy per work must be positive",
)
@require("est_system_power", positive, "estimated power must be positive")
def required_rate(
    target_energy_per_work: float, est_system_power: float
) -> float:
    """Rate needed so energy/work hits the target at the estimated power.

    This is the paper's Eqn. 4 expressed directly in budget terms: the
    factor f and the default rate/power cancel into the target
    joules-per-work-unit the accountant maintains.
    """
    return est_system_power / target_energy_per_work


def speedup_target(
    factor: float,
    default_rate: float,
    default_power: float,
    est_system_rate: float,
    est_system_power: float,
) -> float:
    """Literal Eqn. 4: total speedup for an energy-reduction factor f.

    ``s = f · (r_default/p_default) · (p̂_bestsys/r̂_bestsys)``; provided
    for analysis and tests — the runtime uses :func:`required_rate` with
    the live remaining-budget target instead.
    """
    check(
        min(
            factor,
            default_rate,
            default_power,
            est_system_rate,
            est_system_power,
        )
        > 0,
        "all quantities must be positive",
    )
    return (
        factor
        * (default_rate / default_power)
        * (est_system_power / est_system_rate)
    )


@invariant(
    lambda self: self.min_speedup <= self.speedup <= self.max_speedup,
    "control signal must stay inside the actuator clamp",
)
@dataclass
class SpeedupController:
    """Integral controller on application speedup (Eqn. 5).

    Parameters
    ----------
    min_speedup / max_speedup:
        Achievable range of the application's configuration table.
    initial_speedup:
        Starting control signal (the default configuration's 1.0).
    """

    min_speedup: float = 1.0
    max_speedup: float = float("inf")
    initial_speedup: float = 1.0

    def __post_init__(self) -> None:
        check(self.min_speedup > 0, "min_speedup must be positive")
        check(
            self.max_speedup >= self.min_speedup,
            "max_speedup must be >= min_speedup",
        )
        self.speedup = float(
            min(max(self.initial_speedup, self.min_speedup), self.max_speedup)
        )

    @property
    def saturated(self) -> bool:
        """True when the control signal sits on a clamp boundary."""
        return self.speedup in (self.min_speedup, self.max_speedup)

    @require("pole", stable_pole, "pole must be in [0, 1)")
    @require(
        "est_system_rate", positive, "estimated system rate must be positive"
    )
    @require("measured_rate", non_negative, "rates cannot be negative")
    @require("required", non_negative, "rates cannot be negative")
    def step(
        self,
        required: float,
        measured_rate: float,
        est_system_rate: float,
        pole: float,
    ) -> float:
        """One control update; returns the new (clamped) speedup."""
        error = required - measured_rate
        unclamped = self.speedup + (1.0 - pole) * error / est_system_rate
        self.speedup = float(
            min(max(unclamped, self.min_speedup), self.max_speedup)
        )
        return self.speedup

    def reset(self, speedup: float = 1.0) -> None:
        """Reset the integrator (used on phase-change detection tests)."""
        self.speedup = float(
            min(max(speedup, self.min_speedup), self.max_speedup)
        )

    # -- persistence ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable state (see :mod:`repro.service.state`)."""
        return {
            "min_speedup": self.min_speedup,
            "max_speedup": self.max_speedup,
            "speedup": self.speedup,
        }

    @classmethod
    def restore(cls, snapshot: Mapping[str, Any]) -> "SpeedupController":
        """Rebuild a controller from :meth:`snapshot` output."""
        return cls(
            min_speedup=float(snapshot["min_speedup"]),
            max_speedup=float(snapshot["max_speedup"]),
            initial_speedup=float(snapshot["speedup"]),
        )
