"""Adaptive pole placement (paper Eqns. 9–11).

The controller's pole determines how much model inaccuracy the closed
loop tolerates: for multiplicative model error δ, the loop is stable iff

    0 < δ < 2 / (1 − pole)                                   (Eqn. 9)

JouleGuard measures δ(t) from the learner's prediction error (Eqn. 10)
and sets the pole just large enough to keep the measured error inside
the stability region (Eqn. 11)::

    pole(t) = 1 − 2/δ(t)   if δ(t) > 2
              0            otherwise

A ``margin`` > 1 tightens the bound (the literal rule places the loop on
the stability boundary when δ > 2); margin 1 reproduces the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

import numpy as np

from .contracts import (
    check,
    invariant,
    non_negative,
    positive,
    require,
    stable_pole,
)


@require("predicted_rate", positive, "predicted rate must be positive")
@require("measured_rate", non_negative, "measured rate cannot be negative")
def multiplicative_error(measured_rate: float, predicted_rate: float) -> float:
    """Eqn. 10: δ(t) = |measured/predicted − 1|.

    ``predicted_rate`` is what the models forecast for the measured
    iteration — the learner's system-rate estimate times the speedup the
    controller had applied.
    """
    return abs(measured_rate / predicted_rate - 1.0)


@require("delta", non_negative, "delta cannot be negative")
@require("margin", lambda m: m >= 1.0, "margin must be >= 1")
def pole_for_error(delta: float, margin: float = 1.0) -> float:
    """Eqn. 11: smallest pole keeping error ``delta`` inside Eqn. 9.

    With ``margin`` m, the pole is chosen so the stability bound covers
    m·δ.  The result is always in [0, 1).
    """
    effective = delta * margin
    if effective > 2.0:
        return 1.0 - 2.0 / effective
    return 0.0


@require("pole", stable_pole, "pole must be in [0, 1)")
def max_stable_error(pole: float) -> float:
    """Eqn. 9: largest multiplicative error a given pole tolerates."""
    return 2.0 / (1.0 - pole)


def pole_for_error_array(
    delta: np.ndarray, margin: float = 1.0
) -> np.ndarray:
    """Eqn. 11 over an array of learners' error estimates.

    Elementwise twin of :func:`pole_for_error` — identical arithmetic
    per row, so results are bit-equal to the scalar rule.
    """
    check(margin >= 1.0, "margin must be >= 1")
    effective = np.asarray(delta, dtype=np.float64) * margin
    placed = 1.0 - 2.0 / np.where(effective > 2.0, effective, 4.0)
    return np.where(effective > 2.0, placed, 0.0)


@invariant(
    lambda self: stable_pole(self.pole),
    "adaptive pole must stay in the stable range [0, 1) (Eqn. 9)",
)
@dataclass
class AdaptivePole:
    """Stateful pole adaptation with optional smoothing.

    ``smoothing`` in [0, 1) low-passes δ(t) before Eqn. 11 — a single
    noisy iteration should not whipsaw the pole; 0 reproduces the
    memoryless paper rule.
    """

    margin: float = 1.0
    smoothing: float = 0.0
    _delta: float = 0.0

    def __post_init__(self) -> None:
        check(
            0.0 <= self.smoothing < 1.0, "smoothing must be in [0, 1)"
        )

    def update(self, measured_rate: float, predicted_rate: float) -> float:
        """Fold one prediction error; return the new pole."""
        return self.update_from_delta(
            multiplicative_error(measured_rate, predicted_rate)
        )

    @require("delta", non_negative, "delta cannot be negative")
    def update_from_delta(self, delta: float) -> float:
        """Fold an already-computed δ(t); return the new pole."""
        self._delta = (
            self.smoothing * self._delta + (1.0 - self.smoothing) * delta
        )
        return self.pole

    @property
    def delta(self) -> float:
        return self._delta

    @property
    def pole(self) -> float:
        return pole_for_error(self._delta, self.margin)

    # -- persistence ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable state (see :mod:`repro.service.state`)."""
        return {
            "margin": self.margin,
            "smoothing": self.smoothing,
            "delta": self._delta,
        }

    @classmethod
    def restore(cls, snapshot: Mapping[str, Any]) -> "AdaptivePole":
        """Rebuild pole state from :meth:`snapshot` output."""
        return cls(
            margin=float(snapshot["margin"]),
            smoothing=float(snapshot["smoothing"]),
            _delta=float(snapshot["delta"]),
        )
