"""Multi-application energy coordination (an extension beyond the paper).

The paper manages one application against one budget.  A device usually
runs several approximate applications against one battery; this module
coordinates N independent :class:`~repro.core.jouleguard.JouleGuardRuntime`
instances sharing a *global* budget:

* the global budget is split into per-application budgets up front
  (proportional to each application's forecast default energy need,
  scaled by optional user priorities);
* every ``rebalance_period`` iterations, the coordinator forecasts each
  application's remaining spend from its recent energy-per-work and
  *transfers* surplus joules from applications running under budget to
  those straining (most usefully: ones whose goals have become
  infeasible on their own share).

Transfers are conservative — the sum of effective budgets always equals
the global budget — so the whole-device guarantee is preserved while
accuracy is re-maximized across applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..enforce.ladder import (
    EnforcementLadder,
    LadderPolicy,
    Tier,
    overdraft_signal,
)
from .budget import BudgetAccountant
from .contracts import ContractError
from .jouleguard import Decision, JouleGuardRuntime
from .types import Measurement


class ApplicationKilled(RuntimeError):
    """The enforcement ladder terminated one coordinated application.

    The application's unspent share stays in its accountant and drains
    to strainers through subsequent rebalances (killed applications are
    pure donors), so the coordinator-wide budget sum stays invariant.
    """

    def __init__(self, name: str, summary: Dict[str, float]) -> None:
        super().__init__(
            f"application {name!r} killed by the enforcement ladder"
        )
        self.name = name
        self.summary = summary


@dataclass
class _AppState:
    runtime: JouleGuardRuntime
    recent_epw: Optional[float] = None
    steps: int = 0
    ladder: Optional[EnforcementLadder] = None
    recent_step_energy_j: Optional[float] = None
    killed: bool = False

    @property
    def tier(self) -> Tier:
        return self.ladder.tier if self.ladder is not None else Tier.NOMINAL


def split_budget(
    total_j: float,
    default_energy_needs: Mapping[str, float],
    priorities: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Initial per-application budgets.

    ``default_energy_needs`` maps each application to the joules its
    whole workload would cost in the default configuration; priorities
    (default 1.0) scale each share before normalization.
    """
    if total_j <= 0:
        raise ValueError("total budget must be positive")
    if not default_energy_needs:
        raise ValueError("no applications")
    weights = {}
    for name, need in default_energy_needs.items():
        if need <= 0:
            raise ValueError(f"{name}: energy need must be positive")
        priority = 1.0 if priorities is None else priorities.get(name, 1.0)
        if priority <= 0:
            raise ValueError(f"{name}: priority must be positive")
        weights[name] = need * priority
    scale = total_j / sum(weights.values())
    return {name: weight * scale for name, weight in weights.items()}


class MultiAppCoordinator:
    """Coordinates several runtimes against one global energy budget.

    Parameters
    ----------
    runtimes:
        Name → runtime.  Each runtime's own goal carries its initial
        share (see :func:`split_budget`).
    rebalance_period:
        Coordinator iterations between budget transfers.
    transfer_fraction:
        Share of a donor's forecast surplus moved per rebalance (moving
        everything at once overreacts to noisy forecasts).
    smoothing:
        EWMA weight for each application's recent energy-per-work.
    enforcement:
        Optional :class:`~repro.enforce.ladder.LadderPolicy`; when set,
        each application gets its own enforcement ladder.  DEGRADE pins
        the safe fallback, THROTTLE is surfaced via :meth:`throttle_s`
        (the caller owns the loop, so it owns the sleep), and KILL
        freezes the application and raises :class:`ApplicationKilled`.
        ``None`` (the default) preserves the pre-ladder behaviour.
    """

    def __init__(
        self,
        runtimes: Mapping[str, JouleGuardRuntime],
        rebalance_period: int = 25,
        transfer_fraction: float = 0.5,
        smoothing: float = 0.25,
        enforcement: Optional[LadderPolicy] = None,
    ) -> None:
        if not runtimes:
            raise ValueError("no runtimes to coordinate")
        if rebalance_period < 1:
            raise ValueError("rebalance period must be >= 1")
        if not 0.0 < transfer_fraction <= 1.0:
            raise ValueError("transfer_fraction must be in (0, 1]")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self._apps = {
            name: _AppState(
                runtime=runtime,
                ladder=(
                    EnforcementLadder(policy=enforcement)
                    if enforcement is not None
                    else None
                ),
            )
            for name, runtime in runtimes.items()
        }
        self.rebalance_period = rebalance_period
        self.transfer_fraction = transfer_fraction
        self.smoothing = smoothing
        self._steps_since_rebalance = 0
        self.transfers: List[Dict[str, float]] = []

    # -- delegation -------------------------------------------------------------
    def current_decision(self, name: str) -> Decision:
        return self._apps[name].runtime.current_decision

    def step(self, name: str, measurement: Measurement) -> Decision:
        """Feed one application's measurement; rebalance on schedule.

        With enforcement configured, the heartbeat also feeds this
        application's ladder: DEGRADE pins its safe fallback, and KILL
        freezes it (further steps raise) and raises
        :class:`ApplicationKilled`.
        """
        state = self._apps[name]
        if state.killed:
            raise ApplicationKilled(name, self._app_summary(state))
        epw = measurement.energy_j / measurement.work
        if state.recent_epw is None:
            state.recent_epw = epw
        else:
            state.recent_epw += self.smoothing * (epw - state.recent_epw)
        state.steps += 1
        decision = state.runtime.step(measurement)
        if state.recent_step_energy_j is None:
            state.recent_step_energy_j = measurement.energy_j
        else:
            state.recent_step_energy_j += self.smoothing * (
                measurement.energy_j - state.recent_step_energy_j
            )
        if state.ladder is not None:
            decision = self._enforce(name, state, decision)
        self._steps_since_rebalance += 1
        if self._steps_since_rebalance >= self.rebalance_period:
            self.rebalance()
            self._steps_since_rebalance = 0
        return decision

    def _enforce(
        self, name: str, state: _AppState, decision: Decision
    ) -> Decision:
        """One ladder observation for one application."""
        assert state.ladder is not None
        signal = overdraft_signal(
            state.runtime.accountant,
            state.recent_epw,
            state.recent_step_energy_j,
        )
        tier = state.ladder.observe(signal, state.steps)
        if Tier.DEGRADE <= tier < Tier.KILL:
            # Re-pin every enforced step; the pin is per-decision.
            state.runtime.pin_safe_fallback()
            decision = state.runtime.current_decision
        if tier is Tier.KILL:
            state.killed = True
            raise ApplicationKilled(name, self._app_summary(state))
        return decision

    def tier_of(self, name: str) -> Tier:
        """This application's current enforcement tier."""
        return self._apps[name].tier

    def throttle_s(self, name: str) -> float:
        """Duty-cycle sleep the caller should inject for this app."""
        ladder = self._apps[name].ladder
        return ladder.throttle_s() if ladder is not None else 0.0

    # -- budget transfers ----------------------------------------------------------
    def _forecast_surplus(self, state: _AppState) -> float:
        """Remaining budget minus forecast remaining spend (can be < 0).

        A killed application will never spend again, so its whole
        remaining budget is surplus: rebalances drain it to strainers
        instead of deleting it, keeping the budget sum invariant.
        """
        accountant = state.runtime.accountant
        if (
            state.killed
            or accountant.complete
            or state.recent_epw is None
        ):
            return accountant.remaining_energy_j
        projected = state.recent_epw * accountant.remaining_work
        return accountant.remaining_energy_j - projected

    def _overdraft_j(self, name: str) -> float:
        """How far an application's spend already exceeds its budget."""
        accountant = self._apps[name].runtime.accountant
        return max(
            0.0,
            accountant.energy_used_j - accountant.effective_budget_j,
        )

    def rebalance(self) -> Dict[str, float]:
        """Move surplus joules from under-spenders to strainers.

        Returns the per-application deltas applied (sum ≈ 0).  A
        transfer happens only when at least one application forecasts a
        deficit and another a surplus.
        """
        surpluses = {
            name: self._forecast_surplus(state)
            for name, state in self._apps.items()
        }
        donors = {n: s for n, s in surpluses.items() if s > 0}
        needers = {n: -s for n, s in surpluses.items() if s < 0}
        deltas = {name: 0.0 for name in self._apps}
        while donors and needers:
            available = sum(donors.values()) * self.transfer_fraction
            needed = sum(needers.values())
            moved = min(available, needed)
            if moved <= 0:
                break
            # A grant below an application's overdraft cannot lift it
            # back above water and the accountant rejects it (an
            # effective budget may never end up under what is already
            # spent), so drop such needers and re-split among the rest.
            undersized = [
                name
                for name, deficit in needers.items()
                if moved * deficit / needed
                < self._overdraft_j(name) - 1e-9
            ]
            if undersized:
                for name in undersized:
                    del needers[name]
                continue
            donor_total = sum(donors.values())
            # All-or-nothing application of the transfer plan: a
            # contract rejection mid-plan compensates the transfers
            # already applied before re-raising, keeping the sum of
            # effective budgets invariant on the exception edge too
            # (jgflow JGF301's sanctioned rollback idiom).
            applied: List[Tuple[BudgetAccountant, float]] = []
            try:
                for name, surplus in donors.items():
                    share_j = moved * surplus / donor_total
                    accountant = self._apps[name].runtime.accountant
                    accountant.adjust_budget(-share_j)
                    applied.append((accountant, -share_j))
                    deltas[name] -= share_j
                for name, deficit in needers.items():
                    share_j = moved * deficit / needed
                    accountant = self._apps[name].runtime.accountant
                    accountant.adjust_budget(share_j)
                    applied.append((accountant, share_j))
                    deltas[name] += share_j
            except ContractError:
                for accountant, applied_j in reversed(applied):
                    accountant.adjust_budget(-applied_j)
                raise
            break
        self.transfers.append(deltas)
        return deltas

    # -- accounting invariants ---------------------------------------------------------
    @property
    def total_effective_budget_j(self) -> float:
        """Sum of effective budgets — conserved across rebalances."""
        return sum(
            state.runtime.accountant.effective_budget_j
            for state in self._apps.values()
        )

    @property
    def total_energy_used_j(self) -> float:
        return sum(
            state.runtime.accountant.energy_used_j
            for state in self._apps.values()
        )

    def _app_summary(self, state: _AppState) -> Dict[str, float]:
        accountant = state.runtime.accountant
        return {
            "budget_j": accountant.goal.budget_j,
            "effective_budget_j": accountant.effective_budget_j,
            "energy_used_j": accountant.energy_used_j,
            "work_done": accountant.work_done,
            "infeasible": state.runtime.goal_reported_infeasible,
            "tier": state.tier.label,
            "killed": state.killed,
        }

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-application accounting snapshot."""
        return {
            name: self._app_summary(state)
            for name, state in self._apps.items()
        }
