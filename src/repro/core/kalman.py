"""Scalar Kalman-filter estimation as an EWMA alternative.

Kalman filters are the standard adaptive estimator in the self-adaptive
systems literature the paper cites (Kalyvianaki et al. [28, 29]); this
module provides a scalar random-walk Kalman filter that can replace the
Eqn. 1 EWMAs for per-configuration rate/power estimation.

State model::

    x(t) = x(t-1) + w,  w ~ N(0, q)      (the true rate/power drifts)
    z(t) = x(t)  + v,  v ~ N(0, r)      (noisy measurement)

Unlike the fixed-α EWMA, the Kalman gain adapts: it starts high while
the estimate is uncertain and settles at the steady-state gain implied
by q/r.  The EWMA with α = 0.85 corresponds to a high q/r ratio — the
paper's choice favours agility over smoothing; the comparison is
exercised in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .contracts import check, require


@dataclass
class ScalarKalmanFilter:
    """Random-walk Kalman filter for one scalar quantity.

    Parameters
    ----------
    process_variance:
        q — how fast the underlying quantity is believed to drift.
    measurement_variance:
        r — sensor noise variance.
    value:
        Optional prior estimate; ``prior_variance`` states its trust
        (defaults to effectively uninformative).
    """

    process_variance: float = 1e-2
    measurement_variance: float = 1e-1
    value: Optional[float] = None
    prior_variance: float = 1e6
    updates: int = field(default=0)

    def __post_init__(self) -> None:
        check(
            self.process_variance >= 0 and self.measurement_variance > 0,
            "variances must be positive (q may be 0)",
        )
        check(self.prior_variance > 0, "prior variance must be positive")
        self._variance = self.prior_variance

    @property
    def variance(self) -> float:
        """Current estimate variance (uncertainty)."""
        return self._variance

    @property
    def gain(self) -> float:
        """The Kalman gain the *next* update would apply."""
        predicted = self._variance + self.process_variance
        return predicted / (predicted + self.measurement_variance)

    def update(self, measurement: float) -> float:
        """Fold one measurement; return the new estimate."""
        if self.value is None:
            self.value = measurement
            self._variance = self.measurement_variance
            self.updates += 1
            return self.value
        predicted_var = self._variance + self.process_variance
        gain = predicted_var / (predicted_var + self.measurement_variance)
        self.value = self.value + gain * (measurement - self.value)
        self._variance = (1.0 - gain) * predicted_var
        self.updates += 1
        return self.value

    @property
    def initialized(self) -> bool:
        return self.value is not None

    def steady_state_gain(self) -> float:
        """The gain the filter converges to (function of q/r only).

        Solves the steady-state Riccati equation for the random-walk
        model; useful to pick (q, r) mimicking a target EWMA α.
        """
        q, r = self.process_variance, self.measurement_variance
        if q <= 0.0:
            return 0.0
        return _steady_gain(q / r)


class KalmanBank:
    """A bank of independent :class:`ScalarKalmanFilter` rows.

    The fleet pool keeps one row per session (struct-of-arrays Kalman
    mean/variance) and folds every session's measurement in a single
    vectorized update.  Row ``i`` evolves exactly as a scalar filter
    with the same (q, r) fed the same measurements — the update uses
    only ``+ - * /``, which numpy and CPython round identically, so
    the bank is bit-equal to the scalar filter.
    """

    def __init__(
        self,
        n: int,
        process_variance: float = 1e-2,
        measurement_variance: float = 1e-1,
    ) -> None:
        check(n >= 0, "bank size cannot be negative")
        check(
            process_variance >= 0 and measurement_variance > 0,
            "variances must be positive (q may be 0)",
        )
        self.process_variance = process_variance
        self.measurement_variance = measurement_variance
        self.value = np.zeros(n, dtype=np.float64)
        self.variance = np.zeros(n, dtype=np.float64)
        self.initialized = np.zeros(n, dtype=bool)
        self.updates = np.zeros(n, dtype=np.int64)

    @property
    def n(self) -> int:
        return int(self.value.shape[0])

    def extend(self, k: int) -> None:
        """Append ``k`` fresh (uninitialized) rows."""
        check(k >= 0, "cannot extend by a negative count")
        self.value = np.concatenate(
            [self.value, np.zeros(k, dtype=np.float64)]
        )
        self.variance = np.concatenate(
            [self.variance, np.zeros(k, dtype=np.float64)]
        )
        self.initialized = np.concatenate(
            [self.initialized, np.zeros(k, dtype=bool)]
        )
        self.updates = np.concatenate(
            [self.updates, np.zeros(k, dtype=np.int64)]
        )

    def keep(self, mask: np.ndarray) -> None:
        """Drop rows where ``mask`` is False (pool compaction)."""
        keep = np.asarray(mask, dtype=bool)
        self.value = self.value[keep]
        self.variance = self.variance[keep]
        self.initialized = self.initialized[keep]
        self.updates = self.updates[keep]

    def update(
        self, measurements: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Fold one measurement per masked row; return the estimates."""
        z = np.asarray(measurements, dtype=np.float64)
        if mask is None:
            rows = np.ones(self.n, dtype=bool)
        else:
            rows = np.asarray(mask, dtype=bool)
        first = rows & ~self.initialized
        later = rows & self.initialized
        predicted = self.variance + self.process_variance
        gain = predicted / (predicted + self.measurement_variance)
        folded = self.value + gain * (z - self.value)
        self.value = np.where(
            later, folded, np.where(first, z, self.value)
        )
        self.variance = np.where(
            later,
            (1.0 - gain) * predicted,
            np.where(first, self.measurement_variance, self.variance),
        )
        self.initialized = self.initialized | rows
        self.updates = self.updates + rows.astype(np.int64)
        return self.value


def _steady_gain(ratio: float) -> float:
    """Steady-state Kalman gain for process/measurement variance ratio."""
    # K* = (sqrt(ratio^2 + 4 ratio) + ratio) / (sqrt(...) + ratio + 2)
    s = math.sqrt(ratio**2 + 4.0 * ratio)
    return (s + ratio) / (s + ratio + 2.0)


@require(
    "alpha", lambda a: 0.0 < a < 1.0, "alpha must be in (0, 1)"
)
def variances_for_alpha(
    alpha: float, measurement_variance: float = 1.0
) -> float:
    """Process variance q making the steady-state gain equal ``alpha``.

    Lets a Kalman filter be configured to mimic the paper's EWMA in
    steady state while still adapting its gain during start-up.
    """
    # Invert K* = alpha for the random-walk model: q/r = K^2 / (1 - K).
    return measurement_variance * alpha**2 / (1.0 - alpha)
