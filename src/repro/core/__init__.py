"""JouleGuard core: the paper's contribution (Sec. 3).

* :mod:`.bandit` — System Energy Optimizer (reinforcement learning over
  system configurations, Eqns. 1–3),
* :mod:`.controller` / :mod:`.pole` — Application Accuracy Optimizer
  (adaptive-pole integral control, Eqns. 4–5, 10–11),
* :mod:`.jouleguard` — the Algorithm 1 runtime coordinating both,
* :mod:`.analysis` — Z-domain stability/convergence analysis (Eqns. 7–9),
* :mod:`.budget` — energy goals and remaining-budget bookkeeping,
* :mod:`.hwapprox` — the Sec. 3.7 approximate-hardware variant.
"""

from .analysis import (
    FirstOrderLoop,
    nominal_loop,
    perturbed_loop,
    settling_time,
    stability_bound,
)
from .bandit import SeoDecision, SystemEnergyOptimizer
from .budget import PAPER_FACTORS, BudgetAccountant, EnergyGoal
from .contracts import ContractError, check, invariant, require
from .controller import SpeedupController, required_rate, speedup_target
from .ewma import DEFAULT_ALPHA, Ewma
from .hwapprox import (
    HardwareApproxLevel,
    HardwareApproxTable,
    PowerReductionController,
)
from .jouleguard import Decision, JouleGuardRuntime, build_runtime
from .kalman import ScalarKalmanFilter, variances_for_alpha
from .multi import ApplicationKilled, MultiAppCoordinator, split_budget
from .pole import AdaptivePole, max_stable_error, multiplicative_error, pole_for_error
from .types import AccuracyOrderedConfig, AccuracyOrderedTable, Measurement
from .ucb import UcbSystemOptimizer
from .vdbe import Vdbe

__all__ = [
    "AccuracyOrderedConfig",
    "AccuracyOrderedTable",
    "AdaptivePole",
    "ApplicationKilled",
    "BudgetAccountant",
    "ContractError",
    "DEFAULT_ALPHA",
    "Decision",
    "EnergyGoal",
    "Ewma",
    "FirstOrderLoop",
    "HardwareApproxLevel",
    "HardwareApproxTable",
    "JouleGuardRuntime",
    "Measurement",
    "MultiAppCoordinator",
    "PAPER_FACTORS",
    "PowerReductionController",
    "ScalarKalmanFilter",
    "SeoDecision",
    "SpeedupController",
    "SystemEnergyOptimizer",
    "UcbSystemOptimizer",
    "Vdbe",
    "build_runtime",
    "check",
    "invariant",
    "max_stable_error",
    "multiplicative_error",
    "nominal_loop",
    "perturbed_loop",
    "pole_for_error",
    "require",
    "required_rate",
    "settling_time",
    "speedup_target",
    "split_budget",
    "stability_bound",
    "variances_for_alpha",
]
