"""Tests for CSV/JSON export of runs and sweeps."""

import csv
import json

import pytest

from repro.runtime.export import (
    TRACE_COLUMNS,
    summary_dict,
    write_summary_json,
    write_sweep_csv,
    write_trace_csv,
)
from repro.runtime.harness import run_jouleguard


@pytest.fixture(scope="module")
def result(apps):
    from repro.hw import get_machine

    return run_jouleguard(
        get_machine("tablet"), apps["x264"], factor=1.5, n_iterations=40,
        seed=0,
    )


class TestTraceCsv:
    def test_row_per_iteration(self, result, tmp_path):
        path = write_trace_csv(result, tmp_path / "trace.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 40

    def test_columns(self, result, tmp_path):
        path = write_trace_csv(result, tmp_path / "trace.csv")
        with path.open() as handle:
            header = next(csv.reader(handle))
        assert tuple(header) == TRACE_COLUMNS

    def test_values_roundtrip(self, result, tmp_path):
        path = write_trace_csv(result, tmp_path / "trace.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert float(rows[3]["true_energy_j"]) == pytest.approx(
            result.trace.true_energy_j[3]
        )
        assert int(rows[0]["iteration"]) == 0


class TestSummary:
    def test_summary_fields(self, result):
        summary = summary_dict(result)
        assert summary["machine"] == "tablet"
        assert summary["application"] == "x264"
        assert summary["iterations"] == 40
        assert "effective_accuracy" in summary

    def test_summary_without_oracle(self, apps):
        from repro.hw import get_machine

        result = run_jouleguard(
            get_machine("tablet"), apps["x264"], factor=1.5,
            n_iterations=10, compute_oracle=False, seed=0,
        )
        summary = summary_dict(result)
        assert "effective_accuracy" not in summary

    def test_json_roundtrip(self, result, tmp_path):
        path = write_summary_json(result, tmp_path / "summary.json")
        loaded = json.loads(path.read_text())
        assert loaded == summary_dict(result)


class TestSweepCsv:
    def test_one_row_per_result(self, result, tmp_path):
        path = write_sweep_csv([result, result], tmp_path / "sweep.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["application"] == "x264"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_sweep_csv([], tmp_path / "sweep.csv")
