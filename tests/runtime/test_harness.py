"""Tests for the closed-loop experiment harness."""

import numpy as np
import pytest

from repro.runtime.harness import ExperimentResult, prior_shapes, run_jouleguard
from repro.workloads.phases import steady


class TestPriorShapes:
    def test_shapes_cover_space(self, machines):
        for machine in machines.values():
            rates, powers = prior_shapes(machine)
            assert len(rates) == len(machine.space)
            assert len(powers) == len(machine.space)
            assert (rates > 0).all()
            assert (powers > 0).all()

    def test_rate_prior_linear_in_cores(self, server):
        rates, _ = prior_shapes(server)
        base = server.default_config.replace(cores=4, hyperthreads=1)
        double = server.default_config.replace(cores=8, hyperthreads=1)
        ratio = (
            rates[server.space.index_of(double)]
            / rates[server.space.index_of(base)]
        )
        assert ratio == pytest.approx(2.0)

    def test_power_prior_superlinear_in_clock(self, server):
        _, powers = prior_shapes(server)
        lo = server.default_config.replace(clock_ghz=0.8)
        hi = server.default_config.replace(clock_ghz=2.9)
        floor = server.idle_w + server.external_w
        dyn_lo = powers[server.space.index_of(lo)] - floor
        dyn_hi = powers[server.space.index_of(hi)] - floor
        # Cubic: (2.9/0.8)^3 ≈ 47x on the dynamic part.
        assert dyn_hi / dyn_lo > 20.0

    def test_power_prior_includes_known_floor(self, server):
        _, powers = prior_shapes(server)
        assert powers.min() > server.idle_w + server.external_w


class TestRunJouleguard:
    def test_returns_full_trace(self, server, apps):
        result = run_jouleguard(
            server, apps["x264"], factor=1.5, n_iterations=60, seed=0
        )
        assert len(result.trace) == 60
        assert result.machine_name == "server"
        assert result.app_name == "x264"

    def test_deterministic_given_seed(self, server, apps):
        a = run_jouleguard(server, apps["x264"], 1.5, n_iterations=40, seed=3)
        b = run_jouleguard(server, apps["x264"], 1.5, n_iterations=40, seed=3)
        assert a.achieved_energy_j == b.achieved_energy_j

    def test_different_seeds_differ(self, server, apps):
        a = run_jouleguard(server, apps["x264"], 1.5, n_iterations=40, seed=3)
        b = run_jouleguard(server, apps["x264"], 1.5, n_iterations=40, seed=4)
        assert a.achieved_energy_j != b.achieved_energy_j

    def test_platform_gating_enforced(self, mobile, apps):
        with pytest.raises(ValueError, match="does not run"):
            run_jouleguard(mobile, apps["swish"], 1.5)

    def test_oracle_optional(self, server, apps):
        result = run_jouleguard(
            server, apps["x264"], 1.5, n_iterations=30, compute_oracle=False
        )
        with pytest.raises(ValueError, match="oracle"):
            _ = result.effective_acc

    def test_goal_matches_factor(self, server, apps):
        result = run_jouleguard(
            server, apps["x264"], 2.0, n_iterations=30, seed=0
        )
        expected = result.default_epw * 30 / 2.0
        assert result.goal.budget_j == pytest.approx(expected)

    def test_energy_savings_reported_vs_default(self, server, apps):
        result = run_jouleguard(
            server, apps["x264"], 2.0, n_iterations=200, seed=0
        )
        assert result.energy_savings == pytest.approx(2.0, rel=0.1)

    def test_custom_workload_respected(self, server, apps):
        workload = steady(25, base_work=1.0)
        result = run_jouleguard(
            server, apps["x264"], 1.5, workload=workload, seed=0
        )
        assert len(result.trace) == 25

    def test_measured_energy_close_to_true(self, server, apps):
        # The runtime's sensor view should track ground truth within the
        # configured sensor noise.
        result = run_jouleguard(
            server, apps["x264"], 1.5, n_iterations=100, seed=1
        )
        true = np.array(result.trace.true_energy_j)
        measured = np.array(result.trace.measured_energy_j)
        assert np.abs(measured / true - 1.0).mean() < 0.05
