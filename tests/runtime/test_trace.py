"""Tests for run traces."""

import numpy as np
import pytest

from repro.runtime.trace import RunTrace


def make_trace(rows):
    trace = RunTrace()
    for work, energy, accuracy in rows:
        trace.append(
            work=work,
            time_s=0.1,
            true_energy_j=energy,
            measured_energy_j=energy,
            true_power_w=energy / 0.1,
            rate=work / 0.1,
            accuracy=accuracy,
            speedup_setpoint=1.0,
            system_index=0,
            app_index=0,
            pole=0.0,
            epsilon=0.0,
            explored=False,
            feasible=True,
        )
    return trace


class TestRunTrace:
    def test_length(self):
        assert len(make_trace([(1, 2, 1.0)] * 5)) == 5

    def test_energy_per_work(self):
        trace = make_trace([(2.0, 10.0, 1.0), (1.0, 3.0, 1.0)])
        assert trace.energy_per_work() == pytest.approx([5.0, 3.0])

    def test_totals(self):
        trace = make_trace([(2.0, 10.0, 1.0), (1.0, 3.0, 1.0)])
        assert trace.total_energy_j() == pytest.approx(13.0)
        assert trace.total_work() == pytest.approx(3.0)

    def test_mean_accuracy_is_work_weighted(self):
        trace = make_trace([(3.0, 1.0, 1.0), (1.0, 1.0, 0.0)])
        assert trace.mean_accuracy() == pytest.approx(0.75)

    def test_windowed_energy_per_work(self):
        trace = make_trace([(1.0, 2.0, 1.0)] * 10)
        smoothed = trace.windowed_energy_per_work(window=4)
        assert len(smoothed) == 7
        assert np.allclose(smoothed, 2.0)

    def test_windowed_smooths_spikes(self):
        rows = [(1.0, 2.0, 1.0)] * 10
        rows[5] = (1.0, 20.0, 1.0)
        trace = make_trace(rows)
        raw = trace.energy_per_work()
        smoothed = trace.windowed_energy_per_work(window=5)
        assert smoothed.max() < raw.max()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            make_trace([(1, 1, 1)]).windowed_energy_per_work(0)
