"""Tests for the clairvoyant oracle."""

import pytest

from repro.runtime.oracle import (
    best_system_energy_per_work,
    default_energy_per_work,
    max_feasible_factor,
    oracle_accuracy,
)
from repro.workloads.phases import three_scene_video


class TestEnergyPerWork:
    def test_best_no_worse_than_default(self, machines, apps):
        for machine in machines.values():
            for app in apps.values():
                if not app.runs_on(machine.name):
                    continue
                best, _ = best_system_energy_per_work(machine, app)
                assert best <= default_energy_per_work(machine, app) + 1e-12

    def test_best_config_is_in_space(self, server, apps):
        _, config = best_system_energy_per_work(server, apps["x264"])
        assert config in server.space

    def test_tablet_best_is_default(self, tablet, apps):
        # Sec. 4.3: peak efficiency at the default setting on Tablet.
        _, config = best_system_energy_per_work(tablet, apps["x264"])
        assert config == tablet.default_config


class TestOracleAccuracy:
    def test_trivial_goal_is_full_accuracy(self, server, apps):
        result = oracle_accuracy(server, apps["x264"], factor=1.0)
        assert result.accuracy == 1.0
        assert result.feasible

    def test_accuracy_monotone_in_factor(self, server, apps):
        accuracies = [
            oracle_accuracy(server, apps["bodytrack"], factor=f).accuracy
            for f in (1.0, 1.5, 2.0, 3.0, 4.0)
        ]
        assert accuracies == sorted(accuracies, reverse=True)

    def test_system_headroom_defers_accuracy_loss(self, server, apps):
        # While f is below the system-only savings, accuracy stays 1
        # (Fig. 7: "accuracy only starts to decrease at the point where
        # system-level manipulations are no longer effective").
        app = apps["x264"]
        savings = default_energy_per_work(
            server, app
        ) / best_system_energy_per_work(server, app)[0]
        result = oracle_accuracy(server, app, factor=savings * 0.95)
        assert result.accuracy == 1.0

    def test_infeasible_goal_flagged(self, server, apps):
        app = apps["ferret"]
        beyond = max_feasible_factor(server, app) * 1.2
        result = oracle_accuracy(server, app, factor=beyond)
        assert not result.feasible

    def test_feasible_up_to_max_factor(self, server, apps):
        app = apps["canneal"]
        result = oracle_accuracy(
            server, app, factor=max_feasible_factor(server, app) * 0.99
        )
        assert result.feasible

    def test_invalid_factor_rejected(self, server, apps):
        with pytest.raises(ValueError):
            oracle_accuracy(server, apps["x264"], factor=0.5)


class TestOracleWithPhases:
    def test_easy_phase_raises_mean_accuracy(self, mobile, apps):
        app = apps["bodytrack"]
        factor = max_feasible_factor(mobile, app) * 0.8
        flat = oracle_accuracy(mobile, app, factor)
        phased = oracle_accuracy(
            mobile, app, factor, workload=three_scene_video(100)
        )
        assert phased.accuracy >= flat.accuracy

    def test_phase_weighting(self, mobile, apps):
        # Mean accuracy is weighted by phase length.
        app = apps["bodytrack"]
        factor = max_feasible_factor(mobile, app) * 0.8
        result = oracle_accuracy(
            mobile, app, factor, workload=three_scene_video(100)
        )
        assert 0.0 < result.accuracy <= 1.0


class TestMaxFeasibleFactor:
    def test_composes_system_and_app_ranges(self, server, apps):
        app = apps["swish"]
        best, _ = best_system_energy_per_work(server, app)
        expected = (
            default_energy_per_work(server, app) / best
        ) * app.table.max_speedup
        assert max_feasible_factor(server, app) == pytest.approx(expected)

    def test_paper_ferret_limited_on_tablet(self, tablet, apps):
        # Sec. 5.3: "ferret can only achieve reductions up to 1.2x on
        # Tablet" — the tablet has no system headroom, so the limit is
        # ferret's own 1.24x table.
        assert max_feasible_factor(tablet, apps["ferret"]) == pytest.approx(
            1.24, abs=0.05
        )
