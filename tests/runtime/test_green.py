"""Tests for the Green-style accuracy-guarantee baseline."""

import pytest

from repro.hw import get_machine
from repro.runtime.green import GreenController, run_green
from repro.runtime.harness import run_jouleguard


class TestGreenController:
    def test_picks_fastest_config_meeting_bound(self, apps):
        machine = get_machine("server")
        app = apps["bodytrack"]
        controller = GreenController(app, accuracy_bound=0.95, machine=machine)
        _, config, _, _ = controller.decide()
        assert config.accuracy >= 0.95
        # Fastest such config: nothing faster meets the bound.
        faster = [
            c
            for c in app.table.pareto_frontier
            if c.speedup > config.speedup
        ]
        assert all(c.accuracy < 0.95 for c in faster)

    def test_bound_one_keeps_default(self, apps):
        machine = get_machine("server")
        controller = GreenController(
            apps["x264"], accuracy_bound=1.0, machine=machine
        )
        _, config, _, _ = controller.decide()
        assert config.accuracy == 1.0

    def test_invalid_bound(self, apps):
        with pytest.raises(ValueError):
            GreenController(
                apps["x264"], accuracy_bound=1.5, machine=get_machine("server")
            )


class TestRunGreen:
    def test_accuracy_guarantee_held(self, apps):
        result = run_green(
            get_machine("server"),
            apps["bodytrack"],
            accuracy_bound=0.92,
            n_iterations=200,
            seed=1,
        )
        assert min(result.trace.accuracy) >= 0.92

    def test_no_energy_guarantee(self, apps):
        # Green at a tight accuracy bound cannot reach aggressive energy
        # goals — the gap JouleGuard's design targets.
        app = apps["swish"]
        green = run_green(
            get_machine("server"),
            app,
            accuracy_bound=0.99,
            n_iterations=400,
            seed=2,
            report_factor=1.5,
        )
        assert green.relative_error_pct > 5.0

    def test_jouleguard_meets_goal_green_misses(self, apps):
        # Head-to-head at the same labelled goal: JouleGuard meets the
        # budget by spending accuracy; Green holds accuracy and misses.
        machine = get_machine("server")
        app = apps["swish"]
        factor = 1.5
        guarded = run_jouleguard(
            machine, app, factor=factor, n_iterations=400, seed=3
        )
        green = run_green(
            machine,
            app,
            accuracy_bound=0.95,
            n_iterations=400,
            seed=3,
            report_factor=factor,
        )
        assert guarded.relative_error_pct < green.relative_error_pct
        assert green.mean_accuracy > guarded.mean_accuracy

    def test_green_saves_energy_when_bound_is_loose(self, apps):
        # With a permissive bound Green runs fast approximations and
        # banks large energy savings (its design point).
        app = apps["streamcluster"]
        green = run_green(
            get_machine("server"),
            app,
            accuracy_bound=0.99,
            n_iterations=300,
            seed=4,
        )
        assert green.energy_savings > 2.0

    def test_platform_gating(self, apps):
        with pytest.raises(ValueError):
            run_green(
                get_machine("mobile"), apps["swish"], accuracy_bound=0.9
            )

    def test_controller_name(self, apps):
        result = run_green(
            get_machine("tablet"),
            apps["x264"],
            accuracy_bound=0.95,
            n_iterations=50,
            seed=5,
        )
        assert result.controller_name == "green"
