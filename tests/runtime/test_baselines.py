"""Tests for the Sec. 2 baseline controllers."""

import numpy as np
import pytest

from repro.runtime.baselines import (
    app_only_accuracy,
    max_system_only_savings,
    run_application_only,
    run_system_only,
    run_uncoordinated,
)


class TestAnalyticLines:
    def test_app_only_accuracy_decreases_with_factor(self, apps):
        app = apps["bodytrack"]
        accuracies = [
            app_only_accuracy(app, f) for f in (1.0, 1.5, 2.5, 4.0)
        ]
        assert accuracies == sorted(accuracies, reverse=True)

    def test_app_only_infeasible_beyond_max_speedup(self, apps):
        assert app_only_accuracy(apps["swish"], 2.0) is None

    def test_app_only_trivial_factor_full_accuracy(self, apps):
        assert app_only_accuracy(apps["x264"], 1.0) == 1.0

    def test_max_system_only_savings_above_one(self, machines, apps):
        for machine in machines.values():
            for app in apps.values():
                if app.runs_on(machine.name):
                    assert max_system_only_savings(machine, app) >= 1.0

    def test_factor_below_one_rejected(self, apps):
        with pytest.raises(ValueError):
            app_only_accuracy(apps["x264"], 0.5)


class TestSystemOnly:
    def test_full_accuracy_always(self, server, apps):
        result = run_system_only(
            server, apps["swish"], factor=1.5, n_iterations=100, seed=0
        )
        assert result.mean_accuracy == 1.0

    def test_meets_goal_within_system_savings(self, server, apps):
        app = apps["x264"]
        modest = max_system_only_savings(server, app) * 0.9
        result = run_system_only(
            server, app, factor=modest, n_iterations=150, seed=0
        )
        assert result.relative_error_pct < 5.0

    def test_misses_goal_beyond_system_savings(self, server, apps):
        # The Sec. 2.1 outcome: the system alone cannot deliver f=1.5
        # for swish and lands ~15-20 % over.
        result = run_system_only(
            server, apps["swish"], factor=1.5, n_iterations=300, seed=0
        )
        assert result.relative_error_pct > 5.0


class TestApplicationOnly:
    def test_meets_goal_with_heavy_accuracy_loss(self, server, apps):
        # The Sec. 2.2 outcome for swish at f=1.5.
        result = run_application_only(
            server, apps["swish"], factor=1.5, n_iterations=400, seed=0
        )
        assert result.relative_error_pct < 3.0
        assert result.mean_accuracy < 0.5

    def test_loses_less_on_generous_goals(self, server, apps):
        gentle = run_application_only(
            server, apps["bodytrack"], factor=1.2, n_iterations=200, seed=0
        )
        harsh = run_application_only(
            server, apps["bodytrack"], factor=3.0, n_iterations=200, seed=0
        )
        assert gentle.mean_accuracy > harsh.mean_accuracy


class TestUncoordinated:
    def test_oscillates_more_than_coordinated(self, server, apps):
        # Sec. 2.3 / Fig. 1: uncoordinated composition shows oscillatory
        # energy behaviour.
        from repro.runtime.harness import run_jouleguard

        app = apps["swish"]
        unco = run_uncoordinated(
            server, app, factor=1.5, n_iterations=500, seed=1
        )
        system_only = run_system_only(
            server, app, factor=1.5, n_iterations=500, seed=1
        )

        def late_cv(result):
            epw = result.trace.energy_per_work()[200:]
            return np.std(epw) / np.mean(epw)

        assert late_cv(unco) > 2.0 * late_cv(system_only)

    def test_worse_accuracy_than_jouleguard(self, server, apps):
        from repro.runtime.harness import run_jouleguard

        app = apps["swish"]
        unco = run_uncoordinated(
            server, app, factor=1.5, n_iterations=500, seed=1
        )
        guarded = run_jouleguard(
            server, app, factor=1.5, n_iterations=500, seed=1
        )
        assert guarded.mean_accuracy > unco.mean_accuracy

    def test_controller_name_recorded(self, server, apps):
        result = run_uncoordinated(
            server, apps["x264"], factor=1.2, n_iterations=30, seed=0
        )
        assert result.controller_name == "uncoordinated"
