"""Tests for the callback-driven system adapter."""

import pytest

from repro.apps.base import AppConfig, ConfigTable
from repro.core.budget import EnergyGoal
from repro.runtime.adapters import CallbackSystem, run_with_callbacks


def make_table():
    return ConfigTable(
        [
            AppConfig(index=0, speedup=1.0, accuracy=1.0),
            AppConfig(index=1, speedup=2.0, accuracy=0.8),
            AppConfig(index=2, speedup=4.0, accuracy=0.5),
        ]
    )


class FakeSystem:
    """A tiny 'real system': two configs with different speed/power."""

    RATES = (10.0, 25.0)
    POWERS = (50.0, 90.0)

    def __init__(self):
        self.config = 0
        self.app_speedup = 1.0
        self.clock = 0.0
        self.applied_system = []
        self.applied_app = []

    def apply_system(self, index):
        self.config = index
        self.applied_system.append(index)

    def apply_app(self, app_config):
        self.app_speedup = app_config.speedup
        self.applied_app.append(app_config.index)

    def read_power(self):
        return self.POWERS[self.config]

    def do_iteration(self):
        self.clock += 1.0 / (self.RATES[self.config] * self.app_speedup)
        return 1.0

    def now(self):
        return self.clock


@pytest.fixture
def system_and_adapter():
    fake = FakeSystem()
    adapter = CallbackSystem(
        n_configs=2,
        apply_system_config=fake.apply_system,
        apply_app_config=fake.apply_app,
        read_power_w=fake.read_power,
        prior_rate_shape=[1.0, 2.0],
        prior_power_shape=[1.0, 1.5],
    )
    return fake, adapter


class TestCallbackSystem:
    def test_default_flat_priors(self):
        adapter = CallbackSystem(
            n_configs=3,
            apply_system_config=lambda i: None,
            apply_app_config=lambda c: None,
            read_power_w=lambda: 1.0,
        )
        assert list(adapter.prior_rate_shape) == [1.0, 1.0, 1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            CallbackSystem(
                n_configs=0,
                apply_system_config=lambda i: None,
                apply_app_config=lambda c: None,
                read_power_w=lambda: 1.0,
            )
        with pytest.raises(ValueError):
            CallbackSystem(
                n_configs=2,
                apply_system_config=lambda i: None,
                apply_app_config=lambda c: None,
                read_power_w=lambda: 1.0,
                prior_rate_shape=[1.0],
            )


class TestRunWithCallbacks:
    def test_completes_requested_work(self, system_and_adapter):
        fake, adapter = system_and_adapter
        goal = EnergyGoal(total_work=50.0, budget_j=200.0)
        reports = run_with_callbacks(
            adapter, make_table(), goal, fake.do_iteration, clock=fake.now
        )
        assert sum(r.work for r in reports) == pytest.approx(50.0)

    def test_configs_actually_applied(self, system_and_adapter):
        fake, adapter = system_and_adapter
        goal = EnergyGoal(total_work=30.0, budget_j=150.0)
        run_with_callbacks(
            adapter, make_table(), goal, fake.do_iteration, clock=fake.now
        )
        assert len(fake.applied_system) == 30
        assert len(fake.applied_app) == 30

    def test_energy_meets_feasible_budget(self, system_and_adapter):
        fake, adapter = system_and_adapter
        # Default (config 0, full accuracy) costs 5 J/work; budget 3 J/work
        # is reachable: config 1 is 3.6 J/work, plus app speedup covers it.
        goal = EnergyGoal(total_work=200.0, budget_j=600.0)
        reports = run_with_callbacks(
            adapter, make_table(), goal, fake.do_iteration, clock=fake.now
        )
        assert sum(r.energy_j for r in reports) <= 600.0 * 1.05

    def test_max_iterations_bounds_run(self, system_and_adapter):
        fake, adapter = system_and_adapter
        goal = EnergyGoal(total_work=1000.0, budget_j=5000.0)
        reports = run_with_callbacks(
            adapter,
            make_table(),
            goal,
            fake.do_iteration,
            clock=fake.now,
            max_iterations=17,
        )
        assert len(reports) == 17

    def test_nonpositive_work_rejected(self, system_and_adapter):
        fake, adapter = system_and_adapter
        goal = EnergyGoal(total_work=10.0, budget_j=100.0)
        with pytest.raises(ValueError):
            run_with_callbacks(
                adapter, make_table(), goal, lambda: 0.0, clock=fake.now
            )
