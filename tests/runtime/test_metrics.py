"""Tests for the evaluation metrics (Eqns. 12–13)."""

import pytest

from repro.runtime.metrics import effective_accuracy, relative_error


class TestRelativeError:
    def test_under_budget_is_zero(self):
        # Eqn. 12: only overshoot counts.
        assert relative_error(90.0, 100.0) == 0.0

    def test_exactly_on_budget_is_zero(self):
        assert relative_error(100.0, 100.0) == 0.0

    def test_overshoot_is_percentage(self):
        assert relative_error(110.0, 100.0) == pytest.approx(10.0)

    def test_scale_invariant(self):
        assert relative_error(1.1, 1.0) == pytest.approx(
            relative_error(1100.0, 1000.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)
        with pytest.raises(ValueError):
            relative_error(-1.0, 1.0)


class TestEffectiveAccuracy:
    def test_matching_oracle_is_one(self):
        assert effective_accuracy(0.9, 0.9) == 1.0

    def test_fraction_of_oracle(self):
        assert effective_accuracy(0.8, 1.0) == pytest.approx(0.8)

    def test_can_exceed_one(self):
        # The paper plots the raw ratio (noise can favour the runtime).
        assert effective_accuracy(1.0, 0.95) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_accuracy(0.5, 0.0)
        with pytest.raises(ValueError):
            effective_accuracy(-0.1, 1.0)
