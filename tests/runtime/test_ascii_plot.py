"""Tests for terminal trace plots."""

import pytest

from repro.runtime.ascii_plot import _resample, chart, hbar, sparkline


class TestResample:
    def test_short_series_unchanged(self):
        assert _resample([1.0, 2.0], 10) == [1.0, 2.0]

    def test_long_series_bucketed_to_width(self):
        values = list(range(100))
        resampled = _resample(values, 10)
        assert len(resampled) == 10
        # Bucket means ascend for an ascending series.
        assert resampled == sorted(resampled)

    def test_mean_preserved_approximately(self):
        values = [float(v) for v in range(101)]
        resampled = _resample(values, 7)
        assert sum(resampled) / 7 == pytest.approx(50.0, abs=5.0)


class TestSparkline:
    def test_length_capped_at_width(self):
        assert len(sparkline(list(range(500)), width=40)) == 40

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8], width=9)
        levels = [" ▁▂▃▄▅▆▇█".index(c) for c in line]
        assert levels == sorted(levels)

    def test_constant_series_flat(self):
        line = sparkline([5.0] * 20, width=20)
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds_clamp(self):
        line = sparkline([100.0], width=1, lo=0.0, hi=1.0)
        assert line == "█"

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestChart:
    def test_contains_points_and_axis(self):
        text = chart([1.0, 2.0, 3.0, 2.0, 1.0], height=5, width=20)
        assert "*" in text
        assert "+" in text

    def test_target_line_drawn(self):
        text = chart([1.0, 2.0, 3.0], height=6, width=12, target=2.0)
        assert "-" in text

    def test_label_included(self):
        text = chart([1.0, 2.0], label="energy/frame")
        assert text.startswith("energy/frame")

    def test_empty_series(self):
        assert chart([]) == "(empty series)"

    def test_validation(self):
        with pytest.raises(ValueError):
            chart([1.0], height=1)

    def test_row_count(self):
        text = chart([1.0, 2.0], height=6, width=10)
        # 6 value rows + axis + footer.
        assert len(text.splitlines()) == 8


class TestHbar:
    def test_fixed_width(self):
        for fraction in (0.0, 0.33, 0.5, 1.0):
            assert len(hbar(fraction, 20)) == 20

    def test_empty_and_full(self):
        assert hbar(0.0, 10) == " " * 10
        assert hbar(1.0, 10) == "█" * 10

    def test_fraction_clamped(self):
        assert hbar(-0.5, 10) == hbar(0.0, 10)
        assert hbar(2.0, 10) == hbar(1.0, 10)

    def test_partial_cell_uses_glyph_ramp(self):
        # Half a cell past two full cells: a mid-ramp glyph, not a
        # jump straight to the next full block.
        bar = hbar(0.25, 10)
        assert bar.startswith("██")
        assert bar[2] not in (" ", "█")

    def test_more_fill_never_shorter(self):
        fills = [hbar(i / 20, 10).rstrip() for i in range(21)]
        lengths = [len(f) for f in fills]
        assert lengths == sorted(lengths)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            hbar(0.5, 0)
