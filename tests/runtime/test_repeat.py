"""Tests for seed replication and summary statistics."""

import pytest

from repro.hw import get_machine
from repro.runtime.harness import run_jouleguard
from repro.runtime.repeat import MetricSummary, _summarize, replicate


class TestMetricSummary:
    def test_summarize_basic_stats(self):
        summary = _summarize("m", [1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.std == pytest.approx(1.0)
        assert summary.n == 3

    def test_single_value_zero_std(self):
        summary = _summarize("m", [5.0])
        assert summary.std == 0.0
        assert summary.confidence_interval() == (5.0, 5.0)

    def test_confidence_interval_shrinks_with_n(self):
        narrow = _summarize("m", [1.0, 2.0] * 50)
        wide = _summarize("m", [1.0, 2.0])
        lo_n, hi_n = narrow.confidence_interval()
        lo_w, hi_w = wide.confidence_interval()
        assert (hi_n - lo_n) < (hi_w - lo_w)

    def test_interval_contains_mean(self):
        summary = _summarize("m", [1.0, 4.0, 2.0, 3.0])
        lo, hi = summary.confidence_interval()
        assert lo <= summary.mean <= hi


class TestReplicate:
    @pytest.fixture(scope="class")
    def summary(self, apps):
        return replicate(
            run_jouleguard,
            seeds=(1, 2, 3),
            machine=get_machine("tablet"),
            app=apps["x264"],
            factor=1.5,
            n_iterations=60,
        )

    def test_one_result_per_seed(self, summary):
        assert len(summary.results) == 3

    def test_expected_metrics_present(self, summary):
        for name in (
            "relative_error_pct",
            "mean_accuracy",
            "energy_savings",
            "effective_acc",
        ):
            assert name in summary.metrics

    def test_getitem(self, summary):
        assert isinstance(summary["mean_accuracy"], MetricSummary)

    def test_aggregates_match_results(self, summary):
        accuracies = [r.mean_accuracy for r in summary.results]
        assert summary["mean_accuracy"].mean == pytest.approx(
            sum(accuracies) / len(accuracies)
        )

    def test_effective_accuracy_skippable(self, apps):
        summary = replicate(
            run_jouleguard,
            seeds=(1, 2),
            machine=get_machine("tablet"),
            app=apps["x264"],
            factor=1.5,
            n_iterations=30,
            compute_oracle=False,
        )
        assert "effective_acc" not in summary.metrics

    def test_requires_seeds(self, apps):
        with pytest.raises(ValueError):
            replicate(
                run_jouleguard,
                seeds=(),
                machine=get_machine("tablet"),
                app=apps["x264"],
                factor=1.5,
            )

    def test_works_with_baselines(self, apps):
        from repro.runtime.baselines import run_system_only

        summary = replicate(
            run_system_only,
            seeds=(1, 2),
            machine=get_machine("server"),
            app=apps["swish"],
            factor=1.5,
            n_iterations=50,
        )
        assert summary["mean_accuracy"].mean == 1.0
