"""Tests for the sweep library."""

import pytest

from repro.hw import get_machine
from repro.runtime.sweep import (
    SweepCell,
    filter_cells,
    summarize,
    sweep_platform,
)


@pytest.fixture(scope="module")
def tablet_cells():
    return sweep_platform(
        get_machine("tablet"),
        factors=(1.1, 1.5, 2.0),
        n_iterations=80,
        seed=3,
    )


class TestSweepPlatform:
    def test_cells_cover_feasible_combinations(self, tablet_cells):
        apps = {c.app for c in tablet_cells}
        assert "x264" in apps
        assert "swish" in apps  # 1.1 and maybe 1.5 feasible on tablet
        # ferret maxes at 1.24: only the 1.1 goal survives the margin.
        ferret = [c for c in tablet_cells if c.app == "ferret"]
        assert {c.factor for c in ferret} == {1.1}

    def test_cells_have_oracle_accuracy(self, tablet_cells):
        assert all(c.oracle_accuracy > 0 for c in tablet_cells)

    def test_machine_labelled(self, tablet_cells):
        assert all(c.machine == "tablet" for c in tablet_cells)

    def test_deterministic(self):
        a = sweep_platform(
            get_machine("tablet"), factors=(1.5,), n_iterations=40, seed=9
        )
        b = sweep_platform(
            get_machine("tablet"), factors=(1.5,), n_iterations=40, seed=9
        )
        assert [c.relative_error_pct for c in a] == [
            c.relative_error_pct for c in b
        ]


class TestSummarize:
    def test_headline_numbers(self, tablet_cells):
        summary = summarize(tablet_cells)
        assert summary.n_runs == len(tablet_cells)
        assert 0.0 <= summary.median_error_pct <= summary.max_error_pct
        assert (
            summary.min_effective_accuracy
            <= summary.mean_effective_accuracy
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestFilterCells:
    def make(self, machine, app, factor):
        return SweepCell(
            machine=machine,
            app=app,
            factor=factor,
            relative_error_pct=0.0,
            effective_accuracy=1.0,
            mean_accuracy=1.0,
            oracle_accuracy=1.0,
        )

    def test_filters_compose(self):
        cells = [
            self.make("tablet", "x264", 1.5),
            self.make("tablet", "radar", 1.5),
            self.make("server", "x264", 1.5),
            self.make("tablet", "x264", 2.0),
        ]
        assert len(filter_cells(cells, machine="tablet")) == 3
        assert len(filter_cells(cells, app="x264")) == 3
        assert (
            len(filter_cells(cells, machine="tablet", app="x264", factor=1.5))
            == 1
        )
