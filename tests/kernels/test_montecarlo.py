"""Tests for Monte-Carlo swaption pricing (swaptions substrate)."""

import numpy as np
import pytest

from repro.kernels.montecarlo import (
    MarketModel,
    Swaption,
    price_swaption,
    pricing_accuracy,
)


class TestValidation:
    def test_swaption_parameters_positive(self):
        with pytest.raises(ValueError):
            Swaption(strike=0.0)
        with pytest.raises(ValueError):
            Swaption(maturity_years=-1.0)

    def test_market_parameters_positive(self):
        with pytest.raises(ValueError):
            MarketModel(initial_rate=0.0)
        with pytest.raises(ValueError):
            MarketModel(volatility=-0.1)

    def test_trials_positive(self):
        with pytest.raises(ValueError):
            price_swaption(Swaption(), MarketModel(), 0)


class TestPricing:
    def test_price_is_positive(self):
        price = price_swaption(Swaption(), MarketModel(), 5000, seed=0)
        assert price > 0

    def test_price_bounded_by_discounted_annuity(self):
        swaption = Swaption()
        market = MarketModel()
        price = price_swaption(swaption, market, 5000, seed=1)
        # Crude upper bound: annuity can't exceed the tenor, rates stay
        # in a plausible range for these parameters.
        assert price < swaption.tenor_years

    def test_deterministic_given_seed(self):
        a = price_swaption(Swaption(), MarketModel(), 1000, seed=2)
        b = price_swaption(Swaption(), MarketModel(), 1000, seed=2)
        assert a == b

    def test_higher_volatility_raises_option_value(self):
        swaption = Swaption()
        low = price_swaption(
            swaption, MarketModel(volatility=0.1), 40000, seed=3
        )
        high = price_swaption(
            swaption, MarketModel(volatility=0.4), 40000, seed=3
        )
        assert high > low

    def test_deep_out_of_the_money_is_cheap(self):
        market = MarketModel(initial_rate=0.02)
        cheap = price_swaption(Swaption(strike=0.10), market, 20000, seed=4)
        fair = price_swaption(Swaption(strike=0.02), market, 20000, seed=4)
        assert cheap < fair * 0.2

    def test_monte_carlo_error_shrinks_with_trials(self):
        swaption, market = Swaption(), MarketModel()
        reference = price_swaption(swaption, market, 200_000, seed=5)
        errors = {}
        for trials in (100, 10_000):
            prices = [
                price_swaption(swaption, market, trials, seed=100 + s)
                for s in range(10)
            ]
            errors[trials] = np.std([p - reference for p in prices])
        assert errors[10_000] < errors[100]


class TestAccuracyMetric:
    def test_exact_price_is_one(self):
        assert pricing_accuracy(1.0, 1.0) == 1.0

    def test_relative_error_subtracted(self):
        assert pricing_accuracy(0.9, 1.0) == pytest.approx(0.9)
        assert pricing_accuracy(1.1, 1.0) == pytest.approx(0.9)

    def test_floored_at_zero(self):
        assert pricing_accuracy(5.0, 1.0) == 0.0

    def test_invalid_reference_rejected(self):
        with pytest.raises(ValueError):
            pricing_accuracy(1.0, 0.0)
