"""Tests for the synthetic corpus and query generation."""

from collections import Counter

import numpy as np
import pytest

from repro.kernels.corpus import (
    STOP_WORD_COUNT,
    QueryGenerator,
    SyntheticCorpus,
)


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(n_docs=100, vocabulary_size=800, seed=5)


class TestSyntheticCorpus:
    def test_document_count(self, corpus):
        assert len(corpus.documents) == 100

    def test_deterministic_given_seed(self):
        a = SyntheticCorpus(n_docs=20, vocabulary_size=300, seed=9)
        b = SyntheticCorpus(n_docs=20, vocabulary_size=300, seed=9)
        assert [d.tokens for d in a.documents] == [
            d.tokens for d in b.documents
        ]

    def test_different_seeds_differ(self):
        a = SyntheticCorpus(n_docs=20, vocabulary_size=300, seed=1)
        b = SyntheticCorpus(n_docs=20, vocabulary_size=300, seed=2)
        assert [d.tokens for d in a.documents] != [
            d.tokens for d in b.documents
        ]

    def test_tokens_within_vocabulary(self, corpus):
        vocabulary = set(corpus.vocabulary)
        for doc in corpus.documents[:10]:
            assert set(doc.tokens) <= vocabulary

    def test_word_frequency_is_skewed(self, corpus):
        # Zipf-like: the most common word should dominate the median one.
        counts = Counter(
            token for doc in corpus.documents for token in doc.tokens
        )
        frequencies = sorted(counts.values(), reverse=True)
        assert frequencies[0] > 10 * frequencies[len(frequencies) // 2]

    def test_topics_shape_content(self, corpus):
        # Two documents from the same topic should share more vocabulary
        # than documents from different topics, on average.
        by_topic = {}
        for doc in corpus.documents:
            by_topic.setdefault(doc.topic, []).append(set(doc.tokens))
        same, diff = [], []
        topics = [t for t, docs in by_topic.items() if len(docs) >= 2]
        for topic in topics[:4]:
            docs = by_topic[topic]
            same.append(len(docs[0] & docs[1]) / len(docs[0] | docs[1]))
            other = by_topic[
                next(t for t in topics if t != topic)
            ]
            diff.append(len(docs[0] & other[0]) / len(docs[0] | other[0]))
        assert np.mean(same) > np.mean(diff)

    def test_stop_words_are_most_frequent_ranks(self, corpus):
        assert len(corpus.stop_words) == STOP_WORD_COUNT

    def test_too_small_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(n_docs=10, vocabulary_size=STOP_WORD_COUNT)


class TestQueryGenerator:
    def test_queries_have_one_to_max_terms(self, corpus):
        generator = QueryGenerator(corpus, max_terms=3, seed=0)
        for query in generator.batch(200):
            assert 1 <= len(query) <= 3
            assert len(set(query)) == len(query)

    def test_queries_exclude_stop_words(self, corpus):
        generator = QueryGenerator(corpus, seed=0)
        stop = set(corpus.stop_words)
        for query in generator.batch(200):
            assert not (set(query) & stop)

    def test_power_law_repeats_popular_terms(self, corpus):
        generator = QueryGenerator(corpus, max_terms=1, seed=0)
        terms = Counter(q[0] for q in generator.batch(1000))
        top_share = sum(c for _, c in terms.most_common(10)) / 1000
        assert top_share > 0.3  # heavy head

    def test_deterministic_given_seed(self, corpus):
        a = QueryGenerator(corpus, seed=3).batch(20)
        b = QueryGenerator(corpus, seed=3).batch(20)
        assert a == b
