"""Tests for boolean and phrase search (positional index)."""

import pytest

from repro.kernels.corpus import Document, SyntheticCorpus
from repro.kernels.search import SearchEngine


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(n_docs=60, vocabulary_size=500, seed=31)


@pytest.fixture(scope="module")
def engine(corpus):
    return SearchEngine(corpus)


def make_tiny_engine(docs):
    """Engine over hand-written documents (bypasses the generator)."""
    corpus = SyntheticCorpus(n_docs=1, vocabulary_size=100, seed=0)
    corpus.documents = [
        Document(doc_id=i, topic=0, tokens=tuple(tokens))
        for i, tokens in enumerate(docs)
    ]
    return SearchEngine(corpus)


class TestPositionalIndex:
    def test_positions_recorded(self):
        engine = make_tiny_engine([("alpha", "beta", "alpha")])
        assert engine.index.positions("alpha", 0) == [0, 2]
        assert engine.index.positions("beta", 0) == [1]

    def test_positions_missing_term_empty(self):
        engine = make_tiny_engine([("alpha",)])
        assert engine.index.positions("gamma", 0) == []

    def test_documents_containing(self):
        engine = make_tiny_engine([("a", "b"), ("b", "c")])
        assert engine.index.documents_containing("b") == {0, 1}
        assert engine.index.documents_containing("a") == {0}


class TestBooleanSearch:
    def test_requires_all_terms(self):
        engine = make_tiny_engine([("a", "b"), ("a",), ("b",)])
        hits = {r.doc_id for r in engine.search_boolean(["a", "b"])}
        assert hits == {0}

    def test_excluded_terms_filter(self):
        engine = make_tiny_engine([("a", "b"), ("a", "c")])
        hits = {r.doc_id for r in engine.search_boolean(["a"], excluded=["b"])}
        assert hits == {1}

    def test_empty_required_returns_nothing(self, engine):
        assert engine.search_boolean([]) == []

    def test_no_matches(self):
        engine = make_tiny_engine([("a",), ("b",)])
        assert engine.search_boolean(["a", "b"]) == []

    def test_truncation_applies(self, engine, corpus):
        term = corpus.vocabulary[40]
        full = engine.search_boolean([term])
        if len(full) > 2:
            truncated = engine.search_boolean([term], max_results=2)
            assert truncated == full[:2]

    def test_boolean_is_subset_of_ranked(self, engine, corpus):
        terms = [corpus.vocabulary[60], corpus.vocabulary[61]]
        boolean_ids = {r.doc_id for r in engine.search_boolean(terms)}
        ranked_ids = {r.doc_id for r in engine.search(terms)}
        assert boolean_ids <= ranked_ids


class TestPhraseSearch:
    def test_consecutive_tokens_match(self):
        engine = make_tiny_engine(
            [("the", "quick", "fox"), ("quick", "the", "fox")]
        )
        hits = {r.doc_id for r in engine.search_phrase(["the", "quick"])}
        assert hits == {0}

    def test_all_terms_present_but_not_adjacent_no_match(self):
        engine = make_tiny_engine([("a", "x", "b")])
        assert engine.search_phrase(["a", "b"]) == []

    def test_repeated_phrase_scores_higher(self):
        engine = make_tiny_engine(
            [
                ("a", "b", "a", "b", "pad", "pad"),
                ("a", "b", "pad", "pad", "pad", "pad"),
            ]
        )
        results = engine.search_phrase(["a", "b"])
        assert [r.doc_id for r in results] == [0, 1]
        assert results[0].score > results[1].score

    def test_single_term_phrase_equals_containment(self):
        engine = make_tiny_engine([("a", "b"), ("c",)])
        hits = {r.doc_id for r in engine.search_phrase(["a"])}
        assert hits == {0}

    def test_empty_phrase(self, engine):
        assert engine.search_phrase([]) == []

    def test_phrase_on_synthetic_corpus(self, engine, corpus):
        # Take a real bigram from a document and find that document.
        doc = corpus.documents[5]
        bigram = [doc.tokens[10], doc.tokens[11]]
        hits = {r.doc_id for r in engine.search_phrase(bigram)}
        assert doc.doc_id in hits

    def test_truncation(self, engine, corpus):
        doc = corpus.documents[3]
        unigram = [doc.tokens[0]]
        full = engine.search_phrase(unigram)
        if len(full) > 1:
            assert engine.search_phrase(unigram, max_results=1) == full[:1]
