"""Tests for streaming k-median clustering (streamcluster substrate)."""

import numpy as np
import pytest

from repro.kernels.clustering import (
    KMedianLocalSearch,
    StreamCluster,
    clustering_cost,
    gaussian_mixture_stream,
)


class TestClusteringCost:
    def test_zero_when_points_are_centers(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert clustering_cost(points, points) == 0.0

    def test_uses_nearest_center(self):
        points = np.array([[0.0, 0.0]])
        centers = np.array([[3.0, 4.0], [0.0, 1.0]])
        assert clustering_cost(points, centers) == pytest.approx(1.0)

    def test_weights_scale_cost(self):
        points = np.array([[1.0, 0.0]])
        centers = np.array([[0.0, 0.0]])
        assert clustering_cost(
            points, centers, weights=np.array([3.0])
        ) == pytest.approx(3.0)

    def test_empty_centers_rejected(self):
        with pytest.raises(ValueError):
            clustering_cost(np.zeros((2, 2)), np.zeros((0, 2)))


class TestKMedianLocalSearch:
    def test_finds_obvious_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.05, size=(30, 2))
        b = rng.normal(5, 0.05, size=(30, 2)) + np.array([5.0, 0.0])
        points = np.vstack([a, b])
        centers = KMedianLocalSearch(k=2, seed=1).fit(points)
        # One center near each blob.
        dists_a = np.linalg.norm(centers - a.mean(axis=0), axis=1)
        dists_b = np.linalg.norm(centers - b.mean(axis=0), axis=1)
        assert dists_a.min() < 1.0
        assert dists_b.min() < 1.0

    def test_centers_are_input_points(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(40, 3))
        centers = KMedianLocalSearch(k=3, seed=3).fit(points)
        for center in centers:
            assert any(np.allclose(center, p) for p in points)

    def test_k_larger_than_n_is_capped(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        centers = KMedianLocalSearch(k=10, seed=0).fit(points)
        assert len(centers) <= 10

    def test_full_evaluation_at_least_as_good_as_heavy_perforation(self):
        chunks, _ = gaussian_mixture_stream(1, 150, k=6, seed=4)
        points = chunks[0]
        cost_full = clustering_cost(
            points, KMedianLocalSearch(k=6, seed=5).fit(points)
        )
        cost_perforated = clustering_cost(
            points,
            KMedianLocalSearch(
                k=6, evaluation_fraction=0.05, seed=5, max_rounds=2
            ).fit(points),
        )
        assert cost_full <= cost_perforated * 1.05

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            KMedianLocalSearch(k=0)
        with pytest.raises(ValueError):
            KMedianLocalSearch(k=2, evaluation_fraction=0.0)
        with pytest.raises(ValueError):
            KMedianLocalSearch(k=2).fit(np.zeros((0, 2)))


class TestStreamCluster:
    def test_returns_k_centers(self):
        chunks, _ = gaussian_mixture_stream(4, 50, k=5, seed=6)
        centers = StreamCluster(k=5, seed=7).cluster(chunks)
        assert centers.shape[0] <= 5
        assert centers.shape[1] == chunks[0].shape[1]

    def test_recovers_ground_truth_approximately(self):
        chunks, truth = gaussian_mixture_stream(
            5, 80, k=4, spread=0.1, seed=8
        )
        centers = StreamCluster(k=4, seed=9).cluster(chunks)
        for true_center in truth:
            nearest = np.linalg.norm(centers - true_center, axis=1).min()
            assert nearest < 0.5

    def test_perforation_degrades_gracefully(self):
        chunks, _ = gaussian_mixture_stream(4, 60, k=5, seed=10)
        points = np.vstack(chunks)
        cost_full = clustering_cost(
            points, StreamCluster(k=5, seed=11).cluster(chunks)
        )
        cost_perf = clustering_cost(
            points,
            StreamCluster(
                k=5, evaluation_fraction=0.15, seed=11
            ).cluster(chunks),
        )
        # Perforation costs at most a modest quality loss (streamcluster
        # is the benchmark where perforation is nearly free, Table 2).
        assert cost_perf <= cost_full * 1.5

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            StreamCluster(k=3).cluster([])

    def test_skips_empty_chunks(self):
        chunks, _ = gaussian_mixture_stream(2, 40, k=3, seed=12)
        centers = StreamCluster(k=3, seed=13).cluster(
            [np.zeros((0, 4))] + chunks
        )
        assert len(centers) <= 3
