"""Tests for simulated-annealing place-and-route (canneal substrate)."""

import numpy as np
import pytest

from repro.kernels.annealing import Annealer, Netlist, Placement, route_quality


@pytest.fixture(scope="module")
def netlist():
    return Netlist(n_elements=36, seed=1)


class TestNetlist:
    def test_nets_reference_valid_elements(self, netlist):
        for a, b in netlist.nets:
            assert 0 <= a < 36
            assert 0 <= b < 36
            assert a != b

    def test_locality_bias(self, netlist):
        offsets = [
            min(abs(a - b), 36 - abs(a - b)) for a, b in netlist.nets
        ]
        assert np.median(offsets) <= netlist.locality

    def test_deterministic(self):
        assert Netlist(n_elements=20, seed=3).nets == Netlist(
            n_elements=20, seed=3
        ).nets

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Netlist(n_elements=2)


class TestPlacement:
    def test_positions_distinct_cells(self, netlist):
        placement = Placement(netlist, seed=2)
        cells = {tuple(p) for p in placement.positions}
        assert len(cells) == netlist.n_elements

    def test_wire_length_positive(self, netlist):
        assert Placement(netlist, seed=2).wire_length() > 0

    def test_swap_is_involution(self, netlist):
        placement = Placement(netlist, seed=2)
        before = placement.positions.copy()
        placement.swap(0, 5)
        placement.swap(0, 5)
        assert np.array_equal(placement.positions, before)

    def test_swap_delta_matches_full_recompute(self, netlist):
        placement = Placement(netlist, seed=2)
        before = placement.wire_length()
        delta = placement.swap_delta(3, 17)
        placement.swap(3, 17)
        after = placement.wire_length()
        assert after - before == pytest.approx(delta)


class TestAnnealer:
    def test_annealing_reduces_wire_length(self, netlist):
        placement = Placement(netlist, seed=4)
        initial = placement.wire_length()
        final = Annealer(moves_per_temp=100, seed=5).anneal(placement)
        assert final < initial

    def test_perforated_run_does_less_well_on_average(self, netlist):
        finals_full, finals_perf = [], []
        for seed in range(4):
            p1 = Placement(netlist, seed=seed)
            p2 = Placement(netlist, seed=seed)
            finals_full.append(
                Annealer(moves_per_temp=100, seed=seed + 50).anneal(p1)
            )
            finals_perf.append(
                Annealer(
                    moves_per_temp=100, moves_fraction=0.1, seed=seed + 50
                ).anneal(p2)
            )
        assert np.mean(finals_full) < np.mean(finals_perf)

    def test_deterministic_given_seed(self, netlist):
        p1, p2 = Placement(netlist, seed=6), Placement(netlist, seed=6)
        a = Annealer(moves_per_temp=60, seed=7).anneal(p1)
        b = Annealer(moves_per_temp=60, seed=7).anneal(p2)
        assert a == b

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Annealer(moves_fraction=0.0)
        with pytest.raises(ValueError):
            Annealer(cooling=1.0)


class TestRouteQuality:
    def test_equal_lengths_give_unity(self):
        assert route_quality(100.0, 100.0) == 1.0

    def test_longer_wire_is_lower_quality(self):
        assert route_quality(110.0, 100.0) == pytest.approx(100.0 / 110.0)

    def test_capped_at_one(self):
        assert route_quality(90.0, 100.0) == 1.0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            route_quality(0.0, 100.0)
