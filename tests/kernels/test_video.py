"""Tests for the block video encoder (x264 substrate)."""

import numpy as np
import pytest

from repro.kernels.video import (
    EncoderConfig,
    SyntheticVideo,
    encode_frame,
    encode_sequence,
    motion_estimate,
    psnr,
)


@pytest.fixture(scope="module")
def frames():
    video = SyntheticVideo(width=32, height=32, complexity=0.5, seed=3)
    return list(video.frames(5))


class TestSyntheticVideo:
    def test_frame_shape_and_range(self, frames):
        for frame in frames:
            assert frame.shape == (32, 32)
            assert frame.min() >= 0.0
            assert frame.max() <= 255.0

    def test_deterministic(self):
        a = list(SyntheticVideo(32, 32, 0.4, seed=5).frames(3))
        b = list(SyntheticVideo(32, 32, 0.4, seed=5).frames(3))
        for fa, fb in zip(a, b):
            assert np.array_equal(fa, fb)

    def test_complexity_increases_frame_difference(self):
        def mean_delta(complexity):
            video = SyntheticVideo(32, 32, complexity, seed=6)
            fs = list(video.frames(6))
            return np.mean(
                [np.abs(b - a).mean() for a, b in zip(fs, fs[1:])]
            )

        assert mean_delta(0.9) > mean_delta(0.1)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            SyntheticVideo(width=30, height=32)


class TestMotionEstimation:
    def test_zero_radius_does_no_work(self, frames):
        vectors, evaluations = motion_estimate(frames[1], frames[0], 0)
        assert evaluations == 0
        assert np.all(vectors == 0)

    def test_larger_radius_does_more_work(self, frames):
        _, small = motion_estimate(frames[1], frames[0], 1)
        _, large = motion_estimate(frames[1], frames[0], 4)
        assert large > small > 0

    def test_recovers_known_shift(self):
        rng = np.random.default_rng(7)
        reference = rng.uniform(0, 255, size=(32, 32))
        current = np.roll(reference, shift=(0, 2), axis=(0, 1))
        vectors, _ = motion_estimate(current, reference, radius=3)
        interior = vectors[1:-1, 1:-1]
        # Most interior blocks should find the (0, -2)... roll by +2 means
        # content moved right, so the match in the reference is 2 left.
        dy = interior[:, :, 0].flatten()
        dx = interior[:, :, 1].flatten()
        assert np.median(dy) == 0
        assert abs(np.median(dx)) == 2


class TestEncoding:
    def test_reconstruction_quality_improves_with_effort(self, frames):
        good, _ = encode_frame(
            frames[1], frames[0], EncoderConfig(search_radius=4, quant_step=1.0)
        )
        bad, _ = encode_frame(
            frames[1], frames[0], EncoderConfig(search_radius=0, quant_step=24.0)
        )
        assert psnr(frames[1], good) > psnr(frames[1], bad)

    def test_work_decreases_with_cheaper_config(self, frames):
        _, expensive = encode_frame(
            frames[1], frames[0], EncoderConfig(search_radius=4)
        )
        _, cheap = encode_frame(
            frames[1], frames[0], EncoderConfig(search_radius=1)
        )
        assert cheap < expensive

    def test_fine_quantization_near_lossless(self, frames):
        reconstruction, _ = encode_frame(
            frames[1],
            frames[0],
            EncoderConfig(search_radius=2, quant_step=0.01),
        )
        assert psnr(frames[1], reconstruction) > 60.0

    def test_encode_sequence_aggregates(self, frames):
        quality, work = encode_sequence(frames, EncoderConfig())
        assert quality > 20.0
        assert work > 0

    def test_sequence_needs_two_frames(self, frames):
        with pytest.raises(ValueError):
            encode_sequence(frames[:1], EncoderConfig())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EncoderConfig(search_radius=-1)
        with pytest.raises(ValueError):
            EncoderConfig(quant_step=0.0)


class TestPsnr:
    def test_identical_frames_infinite(self):
        frame = np.full((8, 8), 128.0)
        assert psnr(frame, frame) == float("inf")

    def test_known_mse(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 255.0)
        assert psnr(a, b) == pytest.approx(0.0)
