"""Tests for CFAR detection and phased-array beamforming."""

import numpy as np
import pytest

from repro.kernels.signal import (
    PhasedArrayScene,
    beamform,
    cfar_detect,
    detect_targets,
    detection_quality,
    matched_filter,
    steering_vector,
)


class TestCfar:
    def test_detects_spike_in_uniform_noise(self):
        rng = np.random.default_rng(1)
        signal = rng.uniform(0.9, 1.1, size=256)
        signal[100] = 20.0
        peaks = cfar_detect(signal)
        assert 100 in peaks

    def test_no_false_alarms_in_flat_noise(self):
        rng = np.random.default_rng(2)
        signal = rng.uniform(0.9, 1.1, size=256)
        assert cfar_detect(signal, threshold_factor=4.0) == []

    def test_adapts_to_clutter_ramp(self):
        # A global threshold on this ramp would either miss the low-end
        # target or flood the high end with false alarms; CFAR finds
        # both targets and nothing else.
        rng = np.random.default_rng(3)
        ramp = np.linspace(1.0, 20.0, 512)
        signal = ramp * rng.uniform(0.95, 1.05, size=512)
        signal[80] = ramp[80] * 8.0
        signal[450] = ramp[450] * 8.0
        peaks = cfar_detect(signal, threshold_factor=4.0)
        assert 80 in peaks
        assert 450 in peaks
        assert len(peaks) <= 4

    def test_guard_cells_protect_wide_peaks(self):
        signal = np.ones(128)
        signal[63:66] = (8.0, 10.0, 8.0)  # 3-cell-wide target
        with_guard = cfar_detect(signal, guard_cells=3, training_cells=12)
        assert 64 in with_guard

    def test_validation(self):
        with pytest.raises(ValueError):
            cfar_detect(np.ones(10), training_cells=0)
        with pytest.raises(ValueError):
            cfar_detect(np.ones(10), threshold_factor=0.0)


class TestSteeringVector:
    def test_unit_magnitude(self):
        vector = steering_vector(8, 30.0)
        assert np.allclose(np.abs(vector), 1.0)

    def test_broadside_is_uniform_phase(self):
        vector = steering_vector(8, 0.0)
        assert np.allclose(vector, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            steering_vector(0, 10.0)


class TestBeamforming:
    @pytest.fixture(scope="class")
    def scene(self):
        return PhasedArrayScene(seed=5)

    @pytest.fixture(scope="class")
    def cube(self, scene):
        return scene.generate()

    def test_cube_shape(self, scene, cube):
        returns, chirp = cube
        assert returns.shape == (
            scene.n_elements,
            scene.n_pulses,
            scene.samples_per_pulse,
        )

    def test_array_gain_at_target_bearing(self, scene, cube):
        returns, chirp = cube
        target_range, bearing = scene.targets[0]
        steered = beamform(returns, bearing)
        away = beamform(returns, bearing + 60.0)
        compressed_on = np.abs(matched_filter(steered, chirp).mean(axis=0))
        compressed_off = np.abs(matched_filter(away, chirp).mean(axis=0))
        assert (
            compressed_on[target_range]
            > 2.0 * compressed_off[target_range]
        )

    def test_beamformed_detection_finds_target_single_element_misses(
        self, scene, cube
    ):
        # The per-target SNR is low enough that one element alone cannot
        # reliably detect; the 8-element beamformed return can.
        returns, chirp = cube
        target_range, bearing = scene.targets[0]
        steered = beamform(returns, bearing)
        peaks, _ = detect_targets(steered, chirp)
        assert detection_quality(peaks, (target_range,), tolerance=4) > 0.0

    def test_each_target_visible_at_its_own_bearing(self, scene, cube):
        returns, chirp = cube
        for target_range, bearing in scene.targets:
            steered = beamform(returns, bearing)
            compressed = np.abs(
                matched_filter(steered, chirp).mean(axis=0)
            )
            floor = np.median(compressed)
            assert compressed[target_range] > 4.0 * floor

    def test_beamform_validates_shape(self):
        with pytest.raises(ValueError):
            beamform(np.zeros((4, 16)), 0.0)

    def test_scene_target_out_of_window_rejected(self):
        with pytest.raises(ValueError):
            PhasedArrayScene(
                samples_per_pulse=64, targets=((60, 0.0),)
            ).generate()
