"""Tests for DCT transform coding in the video encoder."""

import numpy as np
import pytest

from repro.kernels.video import (
    EncoderConfig,
    SyntheticVideo,
    encode_frame,
    encode_sequence,
    psnr,
)


@pytest.fixture(scope="module")
def frames():
    video = SyntheticVideo(width=32, height=32, complexity=0.3, seed=11)
    return list(video.frames(4))


class TestConfig:
    def test_transform_validated(self):
        with pytest.raises(ValueError):
            EncoderConfig(transform="wavelet")

    def test_default_is_spatial(self):
        assert EncoderConfig().transform == "spatial"


class TestDctCoding:
    def test_dct_reconstruction_valid(self, frames):
        reconstruction, work = encode_frame(
            frames[1], frames[0], EncoderConfig(transform="dct")
        )
        assert reconstruction.shape == frames[1].shape
        assert np.isfinite(reconstruction).all()
        assert work > 0

    def test_dct_costs_more_work(self, frames):
        _, spatial_work = encode_frame(
            frames[1], frames[0], EncoderConfig(transform="spatial")
        )
        _, dct_work = encode_frame(
            frames[1], frames[0], EncoderConfig(transform="dct")
        )
        assert dct_work > spatial_work

    def test_dct_beats_spatial_on_smooth_content_at_coarse_step(self):
        # Smooth gradients concentrate energy in low DCT frequencies, so
        # coarse quantization hurts far less in the DCT domain.
        video = SyntheticVideo(width=32, height=32, complexity=0.0, seed=12)
        smooth = list(video.frames(3))
        config_kwargs = dict(search_radius=2, quant_step=16.0)
        spatial_psnr, _ = encode_sequence(
            smooth, EncoderConfig(transform="spatial", **config_kwargs)
        )
        dct_psnr, _ = encode_sequence(
            smooth, EncoderConfig(transform="dct", **config_kwargs)
        )
        assert dct_psnr > spatial_psnr

    def test_fine_step_near_lossless_in_both_domains(self, frames):
        for transform in ("spatial", "dct"):
            reconstruction, _ = encode_frame(
                frames[1],
                frames[0],
                EncoderConfig(
                    search_radius=2, quant_step=0.01, transform=transform
                ),
            )
            assert psnr(frames[1], reconstruction) > 50.0

    def test_psnr_monotone_in_quant_step_for_dct(self, frames):
        psnrs = []
        for step in (1.0, 4.0, 16.0, 64.0):
            reconstruction, _ = encode_frame(
                frames[1],
                frames[0],
                EncoderConfig(search_radius=2, quant_step=step, transform="dct"),
            )
            psnrs.append(psnr(frames[1], reconstruction))
        assert psnrs == sorted(psnrs, reverse=True)
