"""Tests for probe-and-rank similarity search (ferret substrate)."""

import numpy as np
import pytest

from repro.kernels.similarity import (
    FeatureDatabase,
    SimilaritySearch,
    cosine_similarity,
    exhaustive_top_k,
    result_similarity,
)


@pytest.fixture(scope="module")
def database():
    return FeatureDatabase(n_items=500, n_clusters=10, seed=1)


@pytest.fixture(scope="module")
def query(database):
    return database.sample_query(np.random.default_rng(2))


class TestDatabase:
    def test_shapes(self, database):
        assert database.vectors.shape == (500, 16)
        assert database.centroids.shape == (10, 16)
        assert database.assignments.shape == (500,)

    def test_items_near_their_centroid(self, database):
        distances = np.linalg.norm(
            database.vectors - database.centroids[database.assignments],
            axis=1,
        )
        cross = np.linalg.norm(
            database.vectors - database.centroids[(database.assignments + 1) % 10],
            axis=1,
        )
        assert distances.mean() < cross.mean()

    def test_deterministic(self):
        a = FeatureDatabase(n_items=50, seed=3)
        b = FeatureDatabase(n_items=50, seed=3)
        assert np.array_equal(a.vectors, b.vectors)

    def test_too_few_items_rejected(self):
        with pytest.raises(ValueError):
            FeatureDatabase(n_items=5, n_clusters=10)


class TestCosineSimilarity:
    def test_self_similarity_is_one(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v[None, :])[0] == pytest.approx(1.0)

    def test_orthogonal_is_zero(self):
        a = np.array([1.0, 0.0])
        b = np.array([[0.0, 1.0]])
        assert cosine_similarity(a, b)[0] == pytest.approx(0.0)


class TestSearch:
    def test_full_ranking_matches_exhaustive_on_probed_clusters(
        self, database, query
    ):
        search = SimilaritySearch(
            database, n_probes=database.n_clusters, rank_fraction=1.0
        )
        returned, _ = search.query(query)
        assert returned == exhaustive_top_k(database, query, search.top_k)

    def test_perforation_does_less_work(self, database, query):
        _, full_work = SimilaritySearch(database, rank_fraction=1.0).query(
            query
        )
        _, perf_work = SimilaritySearch(database, rank_fraction=0.25).query(
            query
        )
        assert perf_work < full_work

    def test_perforation_degrades_result_similarity(self, database):
        rng = np.random.default_rng(4)
        queries = [database.sample_query(rng) for _ in range(25)]
        scores = {}
        for fraction in (1.0, 0.1):
            search = SimilaritySearch(database, rank_fraction=fraction)
            sims = []
            for q in queries:
                returned, _ = search.query(q)
                reference = exhaustive_top_k(database, q, search.top_k)
                sims.append(
                    result_similarity(database, q, returned, reference)
                )
            scores[fraction] = np.mean(sims)
        assert scores[0.1] < scores[1.0]
        assert scores[1.0] > 0.9

    def test_invalid_parameters(self, database):
        with pytest.raises(ValueError):
            SimilaritySearch(database, rank_fraction=0.0)
        with pytest.raises(ValueError):
            SimilaritySearch(database, n_probes=0)


class TestResultSimilarity:
    def test_identical_sets_are_one(self, database, query):
        reference = exhaustive_top_k(database, query, 5)
        assert result_similarity(database, query, reference, reference) == 1.0

    def test_empty_returned_is_zero(self, database, query):
        reference = exhaustive_top_k(database, query, 5)
        assert result_similarity(database, query, [], reference) == 0.0

    def test_empty_reference_is_one(self, database, query):
        assert result_similarity(database, query, [1, 2], []) == 1.0

    def test_worse_neighbours_score_below_one(self, database, query):
        reference = exhaustive_top_k(database, query, 5)
        worst = exhaustive_top_k(database, query, len(database.vectors))[-5:]
        score = result_similarity(database, query, worst, reference)
        assert score < 1.0
