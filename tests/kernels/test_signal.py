"""Tests for radar target detection (radar substrate)."""

import numpy as np
import pytest

from repro.kernels.signal import (
    RadarScene,
    detect_targets,
    detection_quality,
    matched_filter,
)


@pytest.fixture(scope="module")
def scene():
    return RadarScene(seed=1)


@pytest.fixture(scope="module")
def returns_and_chirp(scene):
    return scene.generate()


class TestScene:
    def test_shape(self, scene, returns_and_chirp):
        returns, chirp = returns_and_chirp
        assert returns.shape == (scene.n_pulses, scene.samples_per_pulse)
        assert len(chirp) == 32

    def test_deterministic(self):
        a, _ = RadarScene(seed=2).generate()
        b, _ = RadarScene(seed=2).generate()
        assert np.array_equal(a, b)

    def test_target_out_of_window_rejected(self):
        with pytest.raises(ValueError):
            RadarScene(
                samples_per_pulse=64, target_ranges=(60,), seed=0
            ).generate()


class TestMatchedFilter:
    def test_peak_at_target_range(self, returns_and_chirp, scene):
        returns, chirp = returns_and_chirp
        compressed = np.abs(matched_filter(returns, chirp).mean(axis=0))
        for target in scene.target_ranges:
            window = compressed[target - 3 : target + 4]
            # Local peak well above the median floor.
            assert window.max() > 3 * np.median(compressed)

    def test_pure_noise_has_no_dominant_peak(self):
        rng = np.random.default_rng(3)
        noise = (
            rng.normal(size=(8, 256)) + 1j * rng.normal(size=(8, 256))
        ) / np.sqrt(2)
        chirp = np.exp(1j * np.pi * np.arange(32) ** 2 / 32)
        compressed = np.abs(matched_filter(noise, chirp).mean(axis=0))
        assert compressed.max() < 6 * np.median(compressed)


class TestDetection:
    def test_full_configuration_finds_all_targets(self, returns_and_chirp, scene):
        returns, chirp = returns_and_chirp
        peaks, snr_db = detect_targets(returns, chirp)
        assert detection_quality(peaks, scene.target_ranges) == 1.0
        assert snr_db > 10.0

    def test_decimation_lowers_snr(self, returns_and_chirp):
        returns, chirp = returns_and_chirp
        _, full_snr = detect_targets(returns, chirp)
        _, decimated_snr = detect_targets(returns, chirp, decimation=4)
        assert decimated_snr < full_snr

    def test_fewer_pulses_lower_snr(self, returns_and_chirp):
        returns, chirp = returns_and_chirp
        _, full_snr = detect_targets(returns, chirp)
        _, short_snr = detect_targets(returns, chirp, integration_pulses=2)
        assert short_snr < full_snr

    def test_decimated_peaks_map_to_original_ranges(self, returns_and_chirp, scene):
        returns, chirp = returns_and_chirp
        peaks, _ = detect_targets(returns, chirp, decimation=2)
        quality = detection_quality(peaks, scene.target_ranges, tolerance=4)
        assert quality > 0.5

    def test_invalid_decimation_rejected(self, returns_and_chirp):
        returns, chirp = returns_and_chirp
        with pytest.raises(ValueError):
            detect_targets(returns, chirp, decimation=0)


class TestDetectionQuality:
    def test_perfect(self):
        assert detection_quality([100, 200], (100, 200)) == 1.0

    def test_tolerance_window(self):
        assert detection_quality([103], (100,), tolerance=4) == 1.0
        assert detection_quality([106], (100,), tolerance=4) == 0.0

    def test_false_positives_reduce_precision(self):
        quality = detection_quality([100, 300, 400], (100,))
        assert 0 < quality < 1

    def test_each_truth_matched_once(self):
        # Two peaks near one target: only one counts as a true positive.
        quality = detection_quality([100, 101], (100,))
        assert quality == pytest.approx(2 / 3)

    def test_empty_cases(self):
        assert detection_quality([], ()) == 1.0
        assert detection_quality([5], ()) == 0.0
        assert detection_quality([], (100,)) == 0.0
