"""Tests for postings compression."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernels.compression import (
    CompressedIndex,
    decode_postings,
    encode_postings,
    varint_decode,
    varint_encode,
)
from repro.kernels.corpus import SyntheticCorpus
from repro.kernels.search import InvertedIndex


class TestVarint:
    @pytest.mark.parametrize(
        "value,expected_len",
        [(0, 1), (127, 1), (128, 2), (16383, 2), (16384, 3)],
    )
    def test_length_boundaries(self, value, expected_len):
        assert len(varint_encode(value)) == expected_len

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip(self, value):
        data = varint_encode(value)
        decoded, offset = varint_decode(data)
        assert decoded == value
        assert offset == len(data)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            varint_encode(-1)

    def test_truncated_rejected(self):
        data = varint_encode(300)[:-1]
        with pytest.raises(ValueError, match="truncated"):
            varint_decode(data)

    def test_stream_decoding(self):
        data = varint_encode(5) + varint_encode(1000) + varint_encode(0)
        a, offset = varint_decode(data, 0)
        b, offset = varint_decode(data, offset)
        c, offset = varint_decode(data, offset)
        assert (a, b, c) == (5, 1000, 0)
        assert offset == len(data)


class TestPostings:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=10**6),
            unique=True,
            max_size=200,
        ).map(sorted)
    )
    def test_roundtrip(self, doc_ids):
        assert decode_postings(encode_postings(doc_ids)) == doc_ids

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            encode_postings([3, 1])
        with pytest.raises(ValueError):
            encode_postings([1, 1])

    def test_dense_lists_compress_to_one_byte_per_id(self):
        dense = list(range(1000))
        assert len(encode_postings(dense)) == 1000

    def test_sparse_lists_cost_more_per_id(self):
        sparse = [i * 100_000 for i in range(100)]
        assert len(encode_postings(sparse)) > 100


class TestCompressedIndex:
    @pytest.fixture(scope="class")
    def index(self):
        corpus = SyntheticCorpus(n_docs=150, vocabulary_size=1000, seed=7)
        return InvertedIndex(corpus)

    def test_document_sets_preserved(self, index):
        compressed = CompressedIndex.from_index(index)
        for term in list(index._postings)[:50]:
            assert set(compressed.documents_containing(term)) == (
                index.documents_containing(term)
            )

    def test_missing_term_empty(self, index):
        compressed = CompressedIndex.from_index(index)
        assert compressed.documents_containing("zzznotaword") == []

    def test_real_corpus_compresses_well(self, index):
        # Zipf postings are dominated by frequent terms with dense,
        # small-gap lists: well over 2x vs. 4-byte ids.
        compressed = CompressedIndex.from_index(index)
        assert compressed.compression_ratio() > 2.0

    def test_sizes_consistent(self, index):
        compressed = CompressedIndex.from_index(index)
        assert compressed.compressed_bytes() > 0
        assert (
            compressed.uncompressed_bytes()
            >= compressed.compressed_bytes()
        )
