"""Tests for the annealed particle filter (bodytrack substrate)."""

import numpy as np
import pytest

from repro.kernels.tracking import (
    AnnealedParticleFilter,
    BodyScene,
    track_quality,
)


@pytest.fixture(scope="module")
def scene_data():
    scene = BodyScene(n_frames=50, seed=2)
    truth, observations = scene.generate()
    return truth, observations


class TestBodyScene:
    def test_shapes(self, scene_data):
        truth, observations = scene_data
        assert truth.shape == (50, 2)
        assert observations.shape == (50, 2)

    def test_deterministic(self):
        a = BodyScene(n_frames=20, seed=3).generate()
        b = BodyScene(n_frames=20, seed=3).generate()
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_observations_near_truth(self, scene_data):
        truth, observations = scene_data
        errors = np.linalg.norm(observations - truth, axis=1)
        assert errors.mean() < 1.0

    def test_trajectory_is_smooth(self, scene_data):
        truth, _ = scene_data
        steps = np.linalg.norm(np.diff(truth, axis=0), axis=1)
        assert steps.max() < 1.5  # velocity clipped


class TestFilter:
    def test_tracks_better_than_raw_observations_smoothing(self, scene_data):
        truth, observations = scene_data
        tracker = AnnealedParticleFilter(
            n_particles=300, n_layers=3, seed=4
        )
        estimates, _ = tracker.track(observations)
        assert track_quality(estimates, truth) > 0.5

    def test_more_particles_track_better(self, scene_data):
        truth, observations = scene_data
        qualities = []
        for particles in (8, 400):
            scores = []
            for seed in range(4):
                tracker = AnnealedParticleFilter(
                    n_particles=particles, n_layers=2, seed=seed
                )
                estimates, _ = tracker.track(observations)
                scores.append(track_quality(estimates, truth))
            qualities.append(np.mean(scores))
        assert qualities[1] > qualities[0]

    def test_evaluations_scale_with_particles_and_layers(self, scene_data):
        _, observations = scene_data
        _, small = AnnealedParticleFilter(
            n_particles=10, n_layers=1, seed=0
        ).track(observations)
        _, large = AnnealedParticleFilter(
            n_particles=100, n_layers=3, seed=0
        ).track(observations)
        assert large == 30 * small

    def test_deterministic_given_seed(self, scene_data):
        _, observations = scene_data
        a, _ = AnnealedParticleFilter(seed=5).track(observations)
        b, _ = AnnealedParticleFilter(seed=5).track(observations)
        assert np.array_equal(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AnnealedParticleFilter(n_particles=0)
        with pytest.raises(ValueError):
            AnnealedParticleFilter(n_layers=0)


class TestTrackQuality:
    def test_perfect_track_is_one(self):
        track = np.zeros((10, 2))
        assert track_quality(track, track) == 1.0

    def test_quality_decreases_with_error(self):
        truth = np.zeros((10, 2))
        near = truth + 0.1
        far = truth + 2.0
        assert track_quality(near, truth) > track_quality(far, truth)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            track_quality(np.zeros((5, 2)), np.zeros((6, 2)))
