"""Tests for the inverted-index search engine (swish++ substrate)."""

import pytest

from repro.kernels.corpus import QueryGenerator, SyntheticCorpus
from repro.kernels.search import (
    SearchEngine,
    SearchResult,
    f1_score,
    precision_recall,
)


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(n_docs=80, vocabulary_size=600, seed=21)


@pytest.fixture(scope="module")
def engine(corpus):
    return SearchEngine(corpus)


class TestIndex:
    def test_every_document_term_is_indexed(self, corpus, engine):
        doc = corpus.documents[0]
        for term in set(doc.tokens):
            postings = engine.index.postings(term)
            assert any(d == doc.doc_id for d, _ in postings)

    def test_unknown_term_has_empty_postings(self, engine):
        assert engine.index.postings("zzznotaword") == []

    def test_idf_decreases_with_document_frequency(self, corpus, engine):
        by_df = sorted(
            ((len(engine.index.postings(t)), t) for t in corpus.vocabulary[:50]
             if engine.index.postings(t)),
        )
        rare_df, rare = by_df[0]
        common_df, common = by_df[-1]
        if rare_df < common_df:
            assert engine.index.idf(rare) > engine.index.idf(common)


class TestSearch:
    def test_results_sorted_by_score(self, engine, corpus):
        query = [corpus.vocabulary[100]]
        results = engine.search(query)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_truncation_returns_prefix(self, engine, corpus):
        query = [corpus.vocabulary[60], corpus.vocabulary[200]]
        full = engine.search(query)
        truncated = engine.search(query, max_results=3)
        assert truncated == full[:3]

    def test_unlimited_when_max_results_nonpositive(self, engine, corpus):
        query = [corpus.vocabulary[60]]
        assert engine.search(query, 0) == engine.search(query)

    def test_empty_query_returns_nothing(self, engine):
        assert engine.search([]) == []

    def test_unknown_terms_return_nothing(self, engine):
        assert engine.search(["zzznotaword"]) == []

    def test_multi_term_scores_accumulate(self, engine, corpus):
        t1, t2 = corpus.vocabulary[50], corpus.vocabulary[51]
        single = {r.doc_id: r.score for r in engine.search([t1])}
        both = {r.doc_id: r.score for r in engine.search([t1, t2])}
        for doc_id, score in both.items():
            assert score >= single.get(doc_id, 0.0) - 1e-12


class TestMetrics:
    def test_perfect_match(self):
        ref = [SearchResult(1, 1.0), SearchResult(2, 0.5)]
        assert precision_recall(ref, ref) == (1.0, 1.0)
        assert f1_score(ref, ref) == 1.0

    def test_truncation_keeps_precision_loses_recall(self):
        ref = [SearchResult(i, 1.0 / (i + 1)) for i in range(10)]
        truncated = ref[:5]
        precision, recall = precision_recall(truncated, ref)
        assert precision == 1.0
        assert recall == 0.5

    def test_empty_returned_is_zero(self):
        ref = [SearchResult(1, 1.0)]
        assert precision_recall([], ref) == (0.0, 0.0)
        assert f1_score([], ref) == 0.0

    def test_empty_reference_with_empty_returned_is_perfect(self):
        assert precision_recall([], []) == (1.0, 1.0)

    def test_f1_monotone_in_truncation(self, engine, corpus):
        queries = QueryGenerator(corpus, seed=2).batch(30)
        mean_f1 = []
        for limit in (0, 20, 5, 2):
            scores = []
            for query in queries:
                full = engine.search(query)
                got = full if limit == 0 else engine.search(query, limit)
                scores.append(f1_score(got, full))
            mean_f1.append(sum(scores) / len(scores))
        assert mean_f1 == sorted(mean_f1, reverse=True)
        assert mean_f1[0] == 1.0
