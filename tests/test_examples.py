"""Smoke tests: every shipped example runs end-to-end and produces the
output its narrative promises."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor; we ship more


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "relative error" in out
    assert "effective acc." in out


def test_mobile_video_battery(capsys):
    out = run_example("mobile_video_battery", capsys)
    assert "battery died at frame" in out
    assert "jouleguard" in out


def test_server_search_energy(capsys):
    out = run_example("server_search_energy", capsys)
    assert "system-only" in out
    assert "uncoordinated" in out
    assert "mean F1" in out


def test_phase_adaptive_tracking(capsys):
    out = run_example("phase_adaptive_tracking", capsys)
    assert "easy" in out
    assert "relative error" in out


def test_custom_application(capsys):
    out = run_example("custom_application", capsys)
    assert "thumbnailer" in out
    assert "ordinal-accuracy mode" in out


def test_approximate_hardware(capsys):
    out = run_example("approximate_hardware", capsys)
    assert "power budget" in out
    assert "infeasible" in out


def test_kernel_profiling(capsys):
    out = run_example("kernel_profiling", capsys)
    assert "profiled table" in out


def test_multi_app_battery(capsys):
    out = run_example("multi_app_battery", capsys)
    assert "transferred" in out
    assert "within the global budget" in out


def test_custom_platform(capsys):
    out = run_example("custom_platform", capsys)
    assert "pi4" in out
    assert "over-budget" in out


def test_bursty_workload(capsys):
    out = run_example("bursty_workload", capsys)
    assert "regime segments" in out
    assert "budget adherence" in out


def test_race_vs_pace(capsys):
    out = run_example("race_vs_pace", capsys)
    for machine in ("mobile", "tablet", "server"):
        assert machine in out
    assert "winner" in out
