"""Tests for the per-iteration difficulty generator."""

import numpy as np
import pytest

from repro.workloads.generator import WorkGenerator
from repro.workloads.phases import steady, three_scene_video


class TestWorkGenerator:
    def test_no_jitter_reproduces_phase_multipliers(self):
        generator = WorkGenerator(three_scene_video(10), jitter=0.0)
        assert generator.materialize() == list(
            three_scene_video(10).iteration_difficulty()
        )

    def test_jitter_has_unit_mean(self):
        generator = WorkGenerator(steady(20000), jitter=0.2, seed=3)
        difficulties = np.array(generator.materialize())
        assert difficulties.mean() == pytest.approx(1.0, rel=0.01)

    def test_deterministic_given_seed(self):
        a = WorkGenerator(steady(50), jitter=0.1, seed=4).materialize()
        b = WorkGenerator(steady(50), jitter=0.1, seed=4).materialize()
        assert a == b

    def test_difficulties_positive(self):
        generator = WorkGenerator(steady(1000), jitter=0.5, seed=5)
        assert all(d > 0 for d in generator)

    def test_n_iterations(self):
        assert WorkGenerator(steady(7)).n_iterations == 7

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            WorkGenerator(steady(5), jitter=-0.1)

    def test_phase_structure_survives_jitter(self):
        generator = WorkGenerator(
            three_scene_video(100), jitter=0.05, seed=6
        )
        difficulties = np.array(generator.materialize())
        assert difficulties[100:200].mean() < difficulties[:100].mean()
