"""Tests for Markov and recorded workload traces."""

import numpy as np
import pytest

from repro.workloads.phases import steady, three_scene_video
from repro.workloads.traces import (
    MarkovWorkload,
    RecordedTrace,
    Regime,
    record_trace,
)

REGIMES = (
    Regime("easy", 0.7, mean_dwell=30.0),
    Regime("normal", 1.0, mean_dwell=50.0),
    Regime("hard", 1.4, mean_dwell=20.0),
)


class TestRegime:
    def test_validation(self):
        with pytest.raises(ValueError):
            Regime("r", 0.0, 10.0)
        with pytest.raises(ValueError):
            Regime("r", 1.0, 0.5)


class TestMarkovWorkload:
    def test_length(self):
        workload = MarkovWorkload(REGIMES, n_iterations=200, seed=1)
        assert len(workload.realize()) == 200
        assert workload.total_work == 200.0

    def test_deterministic_given_seed(self):
        a = MarkovWorkload(REGIMES, 100, seed=2).realize()
        b = MarkovWorkload(REGIMES, 100, seed=2).realize()
        assert a == b

    def test_difficulties_drawn_from_regimes(self):
        workload = MarkovWorkload(REGIMES, 300, seed=3)
        levels = set(workload.iteration_difficulty())
        assert levels <= {r.difficulty for r in REGIMES}

    def test_dwell_times_reflect_mean(self):
        sticky = MarkovWorkload(
            (
                Regime("a", 1.0, mean_dwell=100.0),
                Regime("b", 2.0, mean_dwell=100.0),
            ),
            2000,
            seed=4,
        )
        names = [name for name, _ in sticky.realize()]
        switches = sum(1 for x, y in zip(names, names[1:]) if x != y)
        # Expected switches ≈ 2000/100 = 20; allow generous slack.
        assert 5 <= switches <= 50

    def test_single_regime_never_switches(self):
        workload = MarkovWorkload(
            (Regime("only", 1.0, mean_dwell=2.0),), 50, seed=5
        )
        assert {name for name, _ in workload.realize()} == {"only"}

    def test_to_phased_preserves_sequence(self):
        workload = MarkovWorkload(REGIMES, 150, seed=6)
        phased = workload.to_phased()
        assert phased.n_iterations == 150
        assert list(phased.iteration_difficulty()) == list(
            workload.iteration_difficulty()
        )

    def test_runs_through_harness(self, apps):
        from repro.hw import get_machine
        from repro.runtime.harness import run_jouleguard

        workload = MarkovWorkload(REGIMES, 200, seed=7).to_phased()
        result = run_jouleguard(
            get_machine("tablet"),
            apps["x264"],
            factor=1.5,
            workload=workload,
            seed=8,
        )
        assert result.relative_error_pct < 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovWorkload((), 10)
        with pytest.raises(ValueError):
            MarkovWorkload(REGIMES, 0)


class TestRecordedTrace:
    def test_replay_exact(self):
        trace = RecordedTrace((1.0, 0.5, 2.0))
        assert list(trace.iteration_difficulty()) == [1.0, 0.5, 2.0]
        assert trace.n_iterations == 3

    def test_to_phased_roundtrip(self):
        trace = RecordedTrace((1.0, 0.5, 2.0), base_work=2.0)
        phased = trace.to_phased()
        assert list(phased.iteration_difficulty()) == [1.0, 0.5, 2.0]
        assert phased.total_work == 6.0

    def test_save_load_roundtrip(self, tmp_path):
        trace = RecordedTrace((1.0, 1.25, 0.8), name="demo")
        path = trace.save(tmp_path / "trace.json")
        loaded = RecordedTrace.load(path)
        assert loaded.difficulties == trace.difficulties
        assert loaded.name == "demo"

    def test_validation(self):
        with pytest.raises(ValueError):
            RecordedTrace(())
        with pytest.raises(ValueError):
            RecordedTrace((1.0, -1.0))


class TestRecordTrace:
    def test_captures_phases(self):
        trace = record_trace(three_scene_video(10))
        assert trace.n_iterations == 30
        assert trace.difficulties[15] == pytest.approx(1 / 1.4)

    def test_captures_jitter_deterministically(self):
        a = record_trace(steady(50), jitter=0.1, seed=9)
        b = record_trace(steady(50), jitter=0.1, seed=9)
        assert a.difficulties == b.difficulties
        assert np.std(a.difficulties) > 0
