"""Arrival traces: shapes, edge cases, and seed-replication properties.

Covers the degenerate inputs the fleet simulator can hand the
generators — zero-length phase lists, single-epoch traces — plus
hypothesis properties that the diurnal/bursty generators replicate
exactly under a fixed seed (the fleet determinism guarantee rests on
this).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    ArrivalTrace,
    MarkovWorkload,
    PhasedWorkload,
    Regime,
    WorkloadPhase,
    arrivals_from_workload,
    bursty_arrivals,
    diurnal_arrivals,
    steady_arrivals,
)


class TestEdgeCases:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            ArrivalTrace(name="empty", expected=())

    def test_zero_length_phase_list_rejected(self):
        with pytest.raises(ValueError):
            PhasedWorkload(phases=())

    def test_zero_iteration_phase_rejected(self):
        with pytest.raises(ValueError):
            WorkloadPhase("null", 0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ArrivalTrace(name="neg", expected=(1.0, -1.0))
        with pytest.raises(ValueError):
            steady_arrivals(4, rate=-1.0)

    def test_non_finite_rate_rejected(self):
        with pytest.raises(ValueError):
            ArrivalTrace(name="inf", expected=(math.inf,))

    def test_single_epoch_traces(self):
        for trace in (
            steady_arrivals(1, rate=5.0),
            bursty_arrivals(1, mean_rate=5.0),
            diurnal_arrivals(1, mean_rate=5.0),
        ):
            assert trace.n_epochs == 1
            counts = trace.sample()
            assert counts.shape == (1,)
            assert counts.dtype == np.int64
            assert int(counts[0]) >= 0

    def test_diurnal_period_validation(self):
        with pytest.raises(ValueError):
            diurnal_arrivals(8, mean_rate=1.0, period=1)
        with pytest.raises(ValueError):
            diurnal_arrivals(8, mean_rate=1.0, peak_to_trough=0.5)

    def test_bursty_multiplier_validation(self):
        with pytest.raises(ValueError):
            bursty_arrivals(8, mean_rate=1.0, burst_multiplier=0.9)

    def test_scaling_edge_cases(self):
        trace = steady_arrivals(4, rate=2.0)
        scaled = trace.scaled_to_total(100.0)
        assert scaled.total_expected == pytest.approx(100.0)
        assert scaled.scaled_to_total(0.0).total_expected == 0.0
        with pytest.raises(ValueError):
            trace.scaled_to_total(-1.0)
        zero = ArrivalTrace(name="zero", expected=(0.0, 0.0))
        with pytest.raises(ValueError):
            zero.scaled_to_total(10.0)


class TestShapes:
    def test_steady_is_flat(self):
        trace = steady_arrivals(6, rate=3.0)
        assert all(
            rate == pytest.approx(3.0) for rate in trace.expected
        )

    def test_diurnal_peak_to_trough(self):
        trace = diurnal_arrivals(
            48, mean_rate=10.0, peak_to_trough=4.0, period=24
        )
        peak = max(trace.expected)
        trough = min(trace.expected)
        assert peak / trough == pytest.approx(4.0, rel=1e-6)

    def test_bursty_has_two_levels(self):
        trace = bursty_arrivals(
            200, mean_rate=10.0, burst_multiplier=6.0, seed=3
        )
        levels = sorted(set(round(rate, 9) for rate in trace.expected))
        assert len(levels) == 2
        assert levels[1] / levels[0] == pytest.approx(6.0, rel=1e-6)

    def test_workload_difficulty_shapes_arrivals(self):
        workload = PhasedWorkload(
            phases=(
                WorkloadPhase("calm", 2, work_multiplier=1.0),
                WorkloadPhase("spike", 2, work_multiplier=3.0),
            )
        )
        trace = arrivals_from_workload(workload, mean_rate=4.0)
        assert trace.n_epochs == 4
        assert trace.expected[3] / trace.expected[0] == pytest.approx(3.0)
        mean = trace.total_expected / trace.n_epochs
        assert mean == pytest.approx(4.0)


class TestSeedReplication:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_epochs=st.integers(min_value=1, max_value=96),
        mean_rate=st.floats(min_value=0.0, max_value=500.0),
    )
    def test_diurnal_replicates(self, seed, n_epochs, mean_rate):
        first = diurnal_arrivals(n_epochs, mean_rate, seed=seed)
        second = diurnal_arrivals(n_epochs, mean_rate, seed=seed)
        assert first == second
        np.testing.assert_array_equal(first.sample(), second.sample())

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_epochs=st.integers(min_value=1, max_value=96),
        mean_rate=st.floats(min_value=0.0, max_value=500.0),
    )
    def test_bursty_replicates(self, seed, n_epochs, mean_rate):
        first = bursty_arrivals(n_epochs, mean_rate, seed=seed)
        second = bursty_arrivals(n_epochs, mean_rate, seed=seed)
        assert first == second
        np.testing.assert_array_equal(first.sample(), second.sample())

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_sample_is_pure(self, seed):
        """Sampling twice from one trace gives the same counts."""
        trace = bursty_arrivals(32, mean_rate=20.0, seed=seed)
        np.testing.assert_array_equal(trace.sample(), trace.sample())

    def test_different_seeds_differ(self):
        a = bursty_arrivals(64, mean_rate=20.0, seed=0).sample()
        b = bursty_arrivals(64, mean_rate=20.0, seed=1).sample()
        assert not np.array_equal(a, b)
