"""Tests for phased workloads."""

import pytest

from repro.workloads.phases import (
    PhasedWorkload,
    WorkloadPhase,
    steady,
    three_scene_video,
)


class TestWorkloadPhase:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadPhase("p", 0)
        with pytest.raises(ValueError):
            WorkloadPhase("p", 10, work_multiplier=0.0)


class TestPhasedWorkload:
    def test_iteration_count(self):
        workload = PhasedWorkload(
            (WorkloadPhase("a", 5), WorkloadPhase("b", 3))
        )
        assert workload.n_iterations == 8

    def test_total_work_counts_progress_not_difficulty(self):
        workload = PhasedWorkload(
            (WorkloadPhase("a", 4, 1.0), WorkloadPhase("b", 4, 0.5)),
            base_work=2.0,
        )
        # A frame is a frame: 8 iterations x 2 work units.
        assert workload.total_work == pytest.approx(16.0)

    def test_iteration_difficulty_sequence(self):
        workload = PhasedWorkload(
            (WorkloadPhase("a", 2, 1.0), WorkloadPhase("b", 2, 0.5))
        )
        assert list(workload.iteration_difficulty()) == [1.0, 1.0, 0.5, 0.5]

    def test_phase_of(self):
        workload = PhasedWorkload(
            (WorkloadPhase("a", 2), WorkloadPhase("b", 3))
        )
        assert workload.phase_of(0).name == "a"
        assert workload.phase_of(1).name == "a"
        assert workload.phase_of(2).name == "b"
        assert workload.phase_of(4).name == "b"
        with pytest.raises(IndexError):
            workload.phase_of(5)
        with pytest.raises(IndexError):
            workload.phase_of(-1)

    def test_phase_boundaries(self):
        workload = three_scene_video(frames_per_scene=200)
        assert workload.phase_boundaries() == [200, 400]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PhasedWorkload(())


class TestFactories:
    def test_steady(self):
        workload = steady(100, base_work=2.0)
        assert workload.n_iterations == 100
        assert set(workload.iteration_difficulty()) == {1.0}
        assert workload.total_work == 200.0

    def test_three_scene_video_structure(self):
        workload = three_scene_video(frames_per_scene=50, easy_speedup=1.4)
        assert workload.n_iterations == 150
        difficulties = list(workload.iteration_difficulty())
        assert difficulties[0] == 1.0
        assert difficulties[75] == pytest.approx(1 / 1.4)
        assert difficulties[149] == 1.0

    def test_easy_scene_cannot_be_harder(self):
        with pytest.raises(ValueError):
            three_scene_video(easy_speedup=0.9)
