"""FlowEngine behaviour: parse errors, file pragmas, baselines."""

import json
from pathlib import Path

from repro.flow import Baseline, BaselineEntry, FlowEngine
from repro.flow.baseline import find_baseline

FIXTURES = Path(__file__).parent / "fixtures"

TRIGGER = FIXTURES / "jgf301" / "core" / "trigger.py"


def test_parse_error_becomes_jgf000(tmp_path):
    core = tmp_path / "core"
    core.mkdir()
    (core / "broken.py").write_text("def nope(:\n")
    findings = FlowEngine().run([tmp_path])
    assert [finding.rule_id for finding in findings] == ["JGF000"]


def test_file_pragma_silences_whole_file(tmp_path):
    core = tmp_path / "core"
    core.mkdir()
    source = TRIGGER.read_text()
    (core / "mod.py").write_text(
        "# jglint: disable-file=JGF301\n" + source
    )
    findings = FlowEngine().run([tmp_path])
    assert "JGF301" not in {finding.rule_id for finding in findings}


def test_findings_carry_symbols():
    findings = FlowEngine().run([TRIGGER])
    assert findings
    assert all(finding.symbol == "transfer" for finding in findings)


class TestBaseline:
    def entry(self):
        return BaselineEntry(
            rule="JGF301",
            path="core/trigger.py",
            symbol="transfer",
            justification="fixture",
        )

    def test_matching_entry_accepts_finding(self, tmp_path):
        core = tmp_path / "core"
        core.mkdir()
        (core / "trigger.py").write_text(TRIGGER.read_text())
        findings = FlowEngine().run([tmp_path])
        assert findings
        baseline = Baseline(root=tmp_path, entries=[self.entry()])
        new, stale = baseline.apply(findings)
        assert new == []
        assert stale == []

    def test_unmatched_entry_is_stale(self, tmp_path):
        baseline = Baseline(root=tmp_path, entries=[self.entry()])
        new, stale = baseline.apply([])
        assert new == []
        assert stale == [self.entry()]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "jgflow.baseline.json"
        baseline = Baseline(root=tmp_path, entries=[self.entry()])
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == [self.entry()]
        assert loaded.root == tmp_path.resolve()
        document = json.loads(path.read_text())
        assert document["findings"][0]["justification"] == "fixture"

    def test_from_findings_dedupes(self, tmp_path):
        core = tmp_path / "core"
        core.mkdir()
        (core / "trigger.py").write_text(TRIGGER.read_text())
        findings = FlowEngine().run([tmp_path])
        baseline = Baseline.from_findings(tmp_path, findings * 2)
        assert len(baseline.entries) == len(
            {
                (f.rule_id, f.symbol)
                for f in findings
            }
        )

    def test_find_baseline_walks_up(self, tmp_path):
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        target = tmp_path / "jgflow.baseline.json"
        Baseline(root=tmp_path, entries=[]).save(target)
        assert find_baseline(nested) == target
        assert find_baseline(tmp_path) == target


def test_repo_baseline_is_current():
    """The checked-in baseline matches the tree: no new findings, no
    stale entries.  This is the same gate CI applies."""
    repo_root = Path(__file__).resolve().parents[2]
    src = repo_root / "src" / "repro"
    findings = FlowEngine().run([src])
    baseline = Baseline.load(repo_root / "jgflow.baseline.json")
    new, stale = baseline.apply(findings)
    assert new == [], [finding.render() for finding in new]
    assert stale == []


def test_repo_baseline_entries_all_justified():
    repo_root = Path(__file__).resolve().parents[2]
    baseline = Baseline.load(repo_root / "jgflow.baseline.json")
    assert baseline.entries
    for entry in baseline.entries:
        assert len(entry.justification) > 20, entry
