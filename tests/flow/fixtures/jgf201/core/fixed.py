"""JGF201 fixed: the watts are integrated over time first (J = W·s)."""


def total_energy(energy_j: float, power_w: float, dt_s: float) -> float:
    return energy_j + power_w * dt_s
