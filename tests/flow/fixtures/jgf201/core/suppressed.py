"""JGF201 suppressed: the mixup is sanctioned with a line comment."""


def total_energy(energy_j: float, power_w: float) -> float:
    return energy_j + power_w  # jglint: disable=JGF201
