"""JGF201 trigger: joules plus watts — the paper's dimensional crime."""


def total_energy(energy_j: float, power_w: float) -> float:
    return energy_j + power_w
