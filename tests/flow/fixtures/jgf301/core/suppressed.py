"""JGF301 suppressed: the unbalanced path is sanctioned with a comment."""


def transfer(donor, needer, amount_j: float, allow: bool) -> None:
    donor.adjust_budget(-amount_j)  # jglint: disable=JGF301
    if allow:
        needer.adjust_budget(amount_j)
