"""JGF301 fixed: every path pairs the debit with an equal credit."""


def transfer(donor, needer, amount_j: float, allow: bool) -> None:
    if not allow:
        return
    donor.adjust_budget(-amount_j)
    needer.adjust_budget(amount_j)
