"""JGF301 trigger: one branch debits the donor without crediting."""


def transfer(donor, needer, amount_j: float, allow: bool) -> None:
    donor.adjust_budget(-amount_j)
    if allow:
        needer.adjust_budget(amount_j)
