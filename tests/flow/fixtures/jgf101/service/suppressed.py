"""JGF101 suppressed: the race is sanctioned with a line comment."""

import asyncio


class Pool:
    def __init__(self) -> None:
        self.balance_j = 100.0

    async def spend(self, amount_j: float) -> None:
        balance_j = self.balance_j
        await asyncio.sleep(0)
        self.balance_j = balance_j - amount_j  # jglint: disable=JGF101
