"""JGF101 fixed: the read-modify-write holds a lock across the await."""

import asyncio


class Pool:
    def __init__(self) -> None:
        self.balance_j = 100.0
        self._lock = asyncio.Lock()

    async def spend(self, amount_j: float) -> None:
        async with self._lock:
            balance_j = self.balance_j
            await asyncio.sleep(0)
            self.balance_j = balance_j - amount_j
