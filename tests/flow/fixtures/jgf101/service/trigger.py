"""JGF101 trigger: unlocked read-modify-write spanning an await."""

import asyncio


class Pool:
    def __init__(self) -> None:
        self.balance_j = 100.0
        self._lock = asyncio.Lock()

    async def spend(self, amount_j: float) -> None:
        balance_j = self.balance_j
        await asyncio.sleep(0)
        self.balance_j = balance_j - amount_j
