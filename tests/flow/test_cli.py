"""The jgflow CLI and its integration into ``python -m repro lint``."""

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.flow.cli import main as flow_main

FIXTURES = Path(__file__).parent / "fixtures"
TRIGGER = FIXTURES / "jgf301" / "core" / "trigger.py"


def test_list_rules_documents_all_three(capsys):
    assert flow_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("JGF101", "JGF201", "JGF301"):
        assert rule_id in out


def test_findings_exit_one(capsys):
    code = flow_main(["--no-baseline", str(TRIGGER)])
    out = capsys.readouterr().out
    assert code == 1
    assert "JGF301" in out


def test_clean_exit_zero(capsys):
    clean = FIXTURES / "jgf301" / "core" / "fixed.py"
    assert flow_main(["--no-baseline", str(clean)]) == 0


def test_unknown_rule_id_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        flow_main(["--select", "JGX999", str(TRIGGER)])
    assert excinfo.value.code == 2


def test_missing_path_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        flow_main(["does/not/exist.py"])
    assert excinfo.value.code == 2


def test_sarif_output_is_valid(capsys):
    code = flow_main(
        ["--no-baseline", "--format", "sarif", str(TRIGGER)]
    )
    out = capsys.readouterr().out
    assert code == 1
    log = json.loads(out)
    assert log["version"] == "2.1.0"
    results = log["runs"][0]["results"]
    assert results[0]["ruleId"] == "JGF301"
    location = results[0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("trigger.py")
    assert location["region"]["startLine"] >= 1


def test_write_then_pass_with_baseline(tmp_path, capsys):
    core = tmp_path / "core"
    core.mkdir()
    (core / "mod.py").write_text(TRIGGER.read_text())
    baseline = tmp_path / "jgflow.baseline.json"
    assert (
        flow_main(
            [str(tmp_path), "--write-baseline", str(baseline)]
        )
        == 0
    )
    assert baseline.is_file()
    capsys.readouterr()
    # Auto-discovery: the baseline sits at the project root.
    assert flow_main([str(tmp_path)]) == 0
    # Removing the trigger makes the entry stale: warn, still pass.
    (core / "mod.py").write_text("x = 1\n")
    assert flow_main([str(tmp_path)]) == 0
    assert "stale baseline entry" in capsys.readouterr().err


def test_repro_lint_forwards_flow(capsys):
    code = repro_main(["lint", "--flow", str(TRIGGER)])
    out = capsys.readouterr().out
    assert code == 1
    assert "JGF301" in out


def test_repro_lint_flow_lists_flow_rules(capsys):
    assert repro_main(["lint", "--flow", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "JG001" in out and "JGF301" in out
