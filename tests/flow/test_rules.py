"""Per-rule trigger / fixed / suppressed coverage over the fixtures."""

from pathlib import Path

import pytest

from repro.flow import FlowEngine

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id → fixture package (trigger.py / fixed.py / suppressed.py)
PACKAGES = {
    "JGF101": "jgf101/service",
    "JGF201": "jgf201/core",
    "JGF301": "jgf301/core",
}


def flow_ids(path: Path) -> set:
    return {finding.rule_id for finding in FlowEngine().run([path])}


@pytest.mark.parametrize("rule_id", sorted(PACKAGES))
def test_trigger_fixture_fires(rule_id):
    path = FIXTURES / PACKAGES[rule_id] / "trigger.py"
    assert rule_id in flow_ids(path)


@pytest.mark.parametrize("rule_id", sorted(PACKAGES))
def test_fixed_fixture_is_silent(rule_id):
    path = FIXTURES / PACKAGES[rule_id] / "fixed.py"
    assert rule_id not in flow_ids(path)


@pytest.mark.parametrize("rule_id", sorted(PACKAGES))
def test_suppression_comment_silences(rule_id):
    path = FIXTURES / PACKAGES[rule_id] / "suppressed.py"
    assert rule_id not in flow_ids(path)


def test_jgf101_names_the_chain_and_remedy():
    path = FIXTURES / "jgf101/service/trigger.py"
    findings = [
        finding
        for finding in FlowEngine().run([path])
        if finding.rule_id == "JGF101"
    ]
    assert len(findings) == 1
    assert "self.balance_j" in findings[0].message
    assert "lock" in findings[0].message
    assert findings[0].symbol == "Pool.spend"


def test_jgf201_names_both_dimensions():
    path = FIXTURES / "jgf201/core/trigger.py"
    findings = [
        finding
        for finding in FlowEngine().run([path])
        if finding.rule_id == "JGF201"
    ]
    assert findings
    message = findings[0].message
    assert "[J]" in message and "[W]" in message


def test_jgf301_reports_the_unpaired_amount():
    path = FIXTURES / "jgf301/core/trigger.py"
    findings = [
        finding
        for finding in FlowEngine().run([path])
        if finding.rule_id == "JGF301"
    ]
    assert len(findings) == 1
    assert "amount_j" in findings[0].message


def test_select_and_ignore_filter_rules():
    path = FIXTURES / "jgf301/core/trigger.py"
    only = FlowEngine(select=["JGF101"]).run([path])
    assert not only
    ignored = FlowEngine(ignore=["JGF301"]).run([path])
    assert "JGF301" not in {finding.rule_id for finding in ignored}
