"""Regression tests for the real defects jgflow surfaced.

Each test here demonstrates, on the *fixed* code, the accounting
property that the pre-fix code violated:

* ``SessionManager.close`` used to retire ``min(spent, granted)``
  instead of the full spend, so an overdrawn session's overdraft
  leaked back into the available pool (JGF301, clamped retirement);
* ``ServiceServer.aclose`` awaited between reading and clearing its
  task/listener handles, so two concurrent closes could cancel and
  close the same handles twice (JGF101, cross-await RMW);
* both ``rebalance`` implementations applied donor debits before
  needer credits with no rollback, so a contract rejection mid-plan
  left the pool unbalanced (JGF301, raising transfer in a loop).
"""

import asyncio

import pytest

from repro.core.contracts import ContractError
from repro.core.types import Measurement
from repro.service.server import ServiceServer
from repro.service.sessions import SessionManager


def manager(budget_j=1e6, **kwargs):
    return SessionManager(global_budget_j=budget_j, **kwargs)


def open_default(mgr, total_work=50.0, factor=1.5, seed=0, **kwargs):
    return mgr.open_session(
        "tablet", "x264", factor=factor, total_work=total_work,
        seed=seed, **kwargs,
    )


class TestOverdrawnCloseRetiresFullSpend:
    def overdraw_and_close(self):
        mgr = manager(rebalance_period=10_000)
        session = open_default(mgr)
        granted_j = session.granted_budget_j
        # Burn far more than the grant in one heartbeat: the
        # accountant records the spend even though it exceeds the
        # effective budget (hardware joules are facts).
        burned_j = granted_j + 1000.0
        mgr.step(
            session.session_id,
            Measurement(
                work=1.0, energy_j=burned_j, rate=30.0, power_w=18.0
            ),
        )
        accountant = session.runtime.accountant
        assert accountant.energy_used_j > accountant.effective_budget_j
        used_j = accountant.energy_used_j
        mgr.close(session.session_id)
        return mgr, used_j

    def test_pool_reflects_real_spend(self):
        mgr, used_j = self.overdraw_and_close()
        # Pre-fix: close() retired min(used, granted), so available
        # came out as global - granted, silently re-promising the
        # overdraft that was already burned.
        assert mgr.available_budget_j == pytest.approx(
            mgr.global_budget_j - used_j
        )

    def test_retired_joules_are_the_spend(self):
        mgr, used_j = self.overdraw_and_close()
        assert mgr._spent_closed_j == pytest.approx(used_j)


class TestConcurrentAclose:
    def test_two_acloses_race_cleanly(self):
        async def scenario():
            mgr = manager()
            server = ServiceServer(mgr, host="127.0.0.1", port=0)
            await server.start()
            assert server.port != 0
            await asyncio.gather(server.aclose(), server.aclose())
            assert server._tcp_server is None
            assert server._reaper is None

        asyncio.run(scenario())

    def test_aclose_after_aclose_is_noop(self):
        async def scenario():
            mgr = manager()
            server = ServiceServer(mgr, host="127.0.0.1", port=0)
            await server.start()
            await server.aclose()
            await server.aclose()

        asyncio.run(scenario())


class TestRebalanceRollback:
    def loaded_manager(self):
        """Two sessions: one forecast donor, one forecast needer."""
        mgr = manager(rebalance_period=10_000)
        donor = open_default(mgr, total_work=50.0, seed=0)
        needer = open_default(mgr, total_work=50.0, seed=1)
        epw = donor.granted_budget_j / 50.0
        # Donor spends at half its budgeted energy-per-work rate,
        # needer at four times it.
        mgr.step(
            donor.session_id,
            Measurement(
                work=1.0, energy_j=epw * 0.5, rate=30.0, power_w=18.0
            ),
        )
        mgr.step(
            needer.session_id,
            Measurement(
                work=1.0, energy_j=epw * 4.0, rate=30.0, power_w=18.0
            ),
        )
        return mgr, donor, needer

    def total_effective_j(self, mgr):
        return sum(
            session.runtime.accountant.effective_budget_j
            for session in mgr.live_sessions
        )

    def test_transfer_happens_normally(self):
        mgr, donor, needer = self.loaded_manager()
        before_j = self.total_effective_j(mgr)
        deltas = mgr.rebalance()
        assert deltas[donor.session_id] < 0
        assert deltas[needer.session_id] > 0
        assert self.total_effective_j(mgr) == pytest.approx(before_j)

    def test_midplan_rejection_rolls_back(self, monkeypatch):
        mgr, donor, needer = self.loaded_manager()
        before = {
            session.session_id:
                session.runtime.accountant.effective_budget_j
            for session in mgr.live_sessions
        }
        accountant = needer.runtime.accountant

        def reject(delta_j):
            raise ContractError("injected rejection")

        monkeypatch.setattr(accountant, "adjust_budget", reject)
        with pytest.raises(ContractError):
            mgr.rebalance()
        # The donor's already-applied debit was compensated: every
        # effective budget is exactly what it was before the plan.
        after = {
            session.session_id:
                session.runtime.accountant.effective_budget_j
            for session in mgr.live_sessions
        }
        assert after == pytest.approx(before)
