"""Lattice laws for the unit domain, checked property-style.

The soundness of JGF201's abstract interpretation rests on ``join``/
``meet`` forming a (flat) lattice: merging branch environments must
not depend on visit order (commutativity + associativity) and must be
stable under re-merging (idempotence).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.flow.units import (
    BOTTOM,
    ENERGY,
    EPW,
    FREQUENCY,
    POWER,
    RATE,
    RATIO,
    TIME,
    TOP,
    Unit,
    WORK,
    join,
    meet,
    unit_of_name,
)

CONCRETE = [ENERGY, TIME, POWER, FREQUENCY, WORK, RATE, EPW, RATIO]

units = st.one_of(
    st.sampled_from([BOTTOM, TOP, *CONCRETE]),
    st.builds(
        Unit,
        st.just("dim"),
        st.tuples(
            st.integers(-3, 3), st.integers(-3, 3), st.integers(-3, 3)
        ),
    ),
)


@given(units, units)
def test_join_commutative(a, b):
    assert join(a, b) == join(b, a)


@given(units, units)
def test_meet_commutative(a, b):
    assert meet(a, b) == meet(b, a)


@given(units, units, units)
def test_join_associative(a, b, c):
    assert join(join(a, b), c) == join(a, join(b, c))


@given(units, units, units)
def test_meet_associative(a, b, c):
    assert meet(meet(a, b), c) == meet(a, meet(b, c))


@given(units)
def test_join_meet_idempotent(a):
    assert join(a, a) == a
    assert meet(a, a) == a


@given(units)
def test_bounds(a):
    assert join(a, BOTTOM) == a
    assert join(a, TOP) == TOP
    assert meet(a, TOP) == a
    assert meet(a, BOTTOM) == BOTTOM


@given(units, units)
def test_absorption(a, b):
    assert join(a, meet(a, b)) == a
    assert meet(a, join(a, b)) == a


def test_dimensional_arithmetic():
    assert POWER.mul(TIME) == ENERGY
    assert ENERGY.div(TIME) == POWER
    assert ENERGY.div(WORK) == EPW
    assert EPW.mul(WORK) == ENERGY
    assert WORK.div(TIME) == RATE
    assert ENERGY.div(ENERGY) == RATIO
    assert TOP.mul(ENERGY) == TOP
    assert BOTTOM.mul(ENERGY) == BOTTOM


def test_unit_of_name_conventions():
    assert unit_of_name("budget_j") == ENERGY
    assert unit_of_name("power_w") == POWER
    assert unit_of_name("dt_s") == TIME
    assert unit_of_name("total_work") == WORK
    assert unit_of_name("default_epw") == EPW
    assert unit_of_name("transfer_fraction") == RATIO
    assert unit_of_name("factor") == RATIO
    assert unit_of_name("mystery") is None


def test_labels_are_readable():
    assert ENERGY.label() == "[J]"
    assert POWER.label() == "[W]"
    assert RATIO.label() == "[ratio]"
