"""Call resolution and the may-suspend fixpoint."""

import textwrap

from repro.flow import CallGraph, ProjectContext


def load(tmp_path, source):
    (tmp_path / "mod.py").write_text(textwrap.dedent(source))
    project = ProjectContext.load([tmp_path])
    return project, CallGraph(project)


def test_non_suspending_coroutine(tmp_path):
    project, graph = load(
        tmp_path,
        """
        async def compute():
            return 1 + 1
        """,
    )
    info = project.functions["mod.compute"]
    assert not graph.may_suspend(info)


def test_direct_suspension(tmp_path):
    project, graph = load(
        tmp_path,
        """
        import asyncio


        async def napper():
            await asyncio.sleep(1)
        """,
    )
    assert graph.may_suspend(project.functions["mod.napper"])


def test_suspension_propagates_through_calls(tmp_path):
    project, graph = load(
        tmp_path,
        """
        import asyncio


        async def leaf():
            await asyncio.sleep(1)


        async def middle():
            await leaf()


        async def quiet():
            return 0


        async def caller():
            await quiet()
        """,
    )
    assert graph.may_suspend(project.functions["mod.leaf"])
    assert graph.may_suspend(project.functions["mod.middle"])
    assert not graph.may_suspend(project.functions["mod.quiet"])
    assert not graph.may_suspend(project.functions["mod.caller"])


def test_self_method_resolution(tmp_path):
    project, graph = load(
        tmp_path,
        """
        class Service:
            async def helper(self):
                return 1

            async def entry(self):
                return await self.helper()
        """,
    )
    entry = project.functions["mod.Service.entry"]
    assert "mod.Service.helper" in graph.callees(entry)
    assert not graph.may_suspend(entry)


def test_async_with_counts_as_suspension(tmp_path):
    project, graph = load(
        tmp_path,
        """
        async def locked(lock):
            async with lock:
                return 1
        """,
    )
    assert graph.may_suspend(project.functions["mod.locked"])
