"""ProjectContext: module naming, function indexing, import graph."""

import textwrap

from repro.flow import ProjectContext


def write_project(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "alpha.py").write_text(
        textwrap.dedent(
            """
            from .beta import helper


            class Widget:
                def method(self):
                    return helper()

                async def amethod(self):
                    return None


            def top():
                return Widget()
            """
        )
    )
    (tmp_path / "pkg" / "beta.py").write_text(
        textwrap.dedent(
            """
            import math


            def helper():
                return math.pi
            """
        )
    )
    return ProjectContext.load([tmp_path])


def test_modules_and_functions_indexed(tmp_path):
    project = write_project(tmp_path)
    assert "pkg.alpha" in project.modules
    assert "pkg.beta" in project.modules
    names = set(project.functions)
    assert "pkg.alpha.Widget.method" in names
    assert "pkg.alpha.top" in names
    assert "pkg.beta.helper" in names


def test_function_info_properties(tmp_path):
    project = write_project(tmp_path)
    info = project.functions["pkg.alpha.Widget.amethod"]
    assert info.is_async
    assert info.name == "amethod"
    assert info.cls == "Widget"
    sync = project.functions["pkg.alpha.top"]
    assert not sync.is_async
    assert sync.cls is None


def test_relative_import_resolved(tmp_path):
    project = write_project(tmp_path)
    table = project.imports["pkg.alpha"]
    assert table["helper"] == "pkg.beta.helper"


def test_module_graph_edges(tmp_path):
    project = write_project(tmp_path)
    assert "pkg.beta" in project.module_graph["pkg.alpha"]
    assert project.module_graph["pkg.beta"] == set()


def test_parse_error_recorded(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    project = ProjectContext.load([tmp_path])
    assert any("bad.py" in error for error in project.errors)
