"""Tests that the benchmark suite matches the paper's Table 2."""

import pytest

from repro.apps import (
    PAPER_TABLE2,
    application_names,
    applications_for_platform,
    build_application,
    table2,
)


class TestRegistry:
    def test_eight_applications(self):
        assert len(application_names()) == 8

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            build_application("doom")

    def test_swish_and_canneal_not_on_mobile(self):
        mobile_apps = applications_for_platform("mobile")
        assert "swish" not in mobile_apps
        assert "canneal" not in mobile_apps
        assert len(mobile_apps) == 6

    def test_all_apps_on_tablet_and_server(self):
        assert len(applications_for_platform("tablet")) == 8
        assert len(applications_for_platform("server")) == 8


class TestTable2:
    """Config counts match exactly; speedup/loss within profiling jitter."""

    @pytest.mark.parametrize("name", list(PAPER_TABLE2))
    def test_config_count_exact(self, name):
        configs, _, _ = PAPER_TABLE2[name]
        assert len(build_application(name).table) == configs

    @pytest.mark.parametrize("name", list(PAPER_TABLE2))
    def test_max_speedup_within_five_percent(self, name):
        _, speedup, _ = PAPER_TABLE2[name]
        measured = build_application(name).table.max_speedup
        assert measured == pytest.approx(speedup, rel=0.05)

    @pytest.mark.parametrize("name", list(PAPER_TABLE2))
    def test_max_accuracy_loss_close_to_paper(self, name):
        _, _, loss_pct = PAPER_TABLE2[name]
        measured = 100.0 * build_application(name).table.max_accuracy_loss
        assert measured == pytest.approx(loss_pct, rel=0.15, abs=0.5)

    def test_table2_rows_carry_paper_values(self):
        rows = {r.application: r for r in table2()}
        assert rows["swish"].paper_max_speedup == 1.52
        assert rows["x264"].paper_configs == 560

    def test_frameworks_match_paper(self):
        powerdial = {"x264", "swaptions", "bodytrack", "swish", "radar"}
        perforated = {"canneal", "ferret", "streamcluster"}
        for name in powerdial:
            assert build_application(name).framework == "powerdial"
        for name in perforated:
            assert build_application(name).framework == "loop_perforation"

    def test_tables_deterministic(self):
        a = build_application("x264").table
        b = build_application("x264").table
        assert [c.speedup for c in a] == [c.speedup for c in b]
