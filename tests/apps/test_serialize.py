"""Tests for table/application serialization."""

import json

import pytest

from repro.apps import build_application
from repro.apps.serialize import (
    application_from_dict,
    application_to_dict,
    load_application,
    load_table,
    save_application,
    save_table,
    table_from_dict,
    table_to_dict,
)


class TestTableRoundtrip:
    def test_roundtrip_preserves_configs(self, apps):
        table = apps["radar"].table
        restored = table_from_dict(table_to_dict(table))
        assert len(restored) == len(table)
        for original, copy in zip(table, restored):
            assert copy.index == original.index
            assert copy.speedup == original.speedup
            assert copy.accuracy == original.accuracy
            assert copy.power_factor == original.power_factor
            assert copy.knob_settings == original.knob_settings

    def test_roundtrip_preserves_frontier(self, apps):
        table = apps["x264"].table
        restored = table_from_dict(table_to_dict(table))
        assert [c.index for c in restored.pareto_frontier] == [
            c.index for c in table.pareto_frontier
        ]

    def test_file_roundtrip(self, apps, tmp_path):
        table = apps["canneal"].table
        path = save_table(table, tmp_path / "table.json")
        restored = load_table(path)
        assert restored.max_speedup == table.max_speedup

    def test_schema_checked(self):
        with pytest.raises(ValueError, match="schema"):
            table_from_dict({"schema": 99, "configs": []})

    def test_output_is_valid_json(self, apps, tmp_path):
        path = save_table(apps["ferret"].table, tmp_path / "t.json")
        json.loads(path.read_text())


class TestApplicationRoundtrip:
    def test_roundtrip_preserves_metadata(self, apps):
        app = apps["swish"]
        restored = application_from_dict(application_to_dict(app))
        assert restored.name == app.name
        assert restored.framework == app.framework
        assert restored.platforms == app.platforms
        assert restored.accuracy_metric == app.accuracy_metric
        assert restored.resource_profile == app.resource_profile

    def test_file_roundtrip_runs_under_jouleguard(self, apps, tmp_path):
        from repro.hw import get_machine
        from repro.runtime.harness import run_jouleguard

        path = save_application(apps["x264"], tmp_path / "x264.json")
        restored = load_application(path)
        result = run_jouleguard(
            get_machine("tablet"), restored, factor=1.5,
            n_iterations=60, seed=0,
        )
        assert result.relative_error_pct < 5.0

    def test_restored_equals_fresh_build(self, tmp_path):
        app = build_application("streamcluster")
        restored = application_from_dict(application_to_dict(app))
        assert [c.speedup for c in restored.table] == [
            c.speedup for c in app.table
        ]

    def test_schema_checked(self):
        with pytest.raises(ValueError, match="schema"):
            application_from_dict({"schema": 0})
