"""Kernel-backed validation: the synthesized configuration tables claim
monotone speedup/accuracy trades; these tests run the *real* kernels at
matching knob points and confirm the trade is genuine for every
application (slow-ish: each test executes actual computation)."""

import numpy as np
import pytest

from repro.apps import bodytrack, canneal, ferret, radar, streamcluster
from repro.apps import swaptions, swishpp, x264


def assert_work_accuracy_tradeoff(points, accuracy_tolerance=0.0):
    """Speedups ascend and accuracy (whatever its scale) descends."""
    speedups = [p[0] for p in points]
    accuracies = [p[1] for p in points]
    assert speedups == sorted(speedups), "work savings should accumulate"
    assert accuracies[0] == max(accuracies), "full effort should be best"
    assert (
        min(accuracies) < accuracies[0] + accuracy_tolerance
    ), "approximation should eventually cost accuracy"


class TestX264Kernel:
    def test_tradeoff(self):
        points = x264.measure_kernel_tradeoff(n_frames=4, seed=1)
        assert_work_accuracy_tradeoff(points)
        # The cheapest configuration loses real PSNR.
        assert points[-1][1] < points[0][1] - 3.0


class TestSwaptionsKernel:
    def test_tradeoff(self):
        points = swaptions.measure_kernel_tradeoff(seed=1)
        speedups = [p[0] for p in points]
        assert speedups == sorted(speedups)
        assert points[0][1] == pytest.approx(1.0, abs=0.05)
        # Few-trial pricing is noticeably noisier than many-trial.
        assert min(p[1] for p in points[2:]) < 1.0


class TestBodytrackKernel:
    def test_tradeoff(self):
        points = bodytrack.measure_kernel_tradeoff(n_frames=30, seed=1)
        speedups = [p[0] for p in points]
        assert speedups == sorted(speedups)
        assert points[-1][1] < points[0][1]


class TestSwishKernel:
    def test_truncation_loses_recall(self):
        points = swishpp.measure_kernel_tradeoff(n_queries=30, seed=1)
        accuracies = [a for _, a in points]
        assert accuracies[0] == 1.0  # unlimited = reference
        assert accuracies == sorted(accuracies, reverse=True)
        # The harshest truncation loses most of the results, mirroring
        # Table 2's 83 % accuracy loss.
        assert accuracies[-1] < 0.5


class TestRadarKernel:
    def test_snr_degrades_with_perforation(self):
        points = radar.measure_kernel_tradeoff(seed=1)
        speedups = [p[0] for p in points]
        assert speedups == sorted(speedups)
        snrs = [p[1] for p in points]
        assert snrs[-1] < snrs[0]


class TestCannealKernel:
    def test_quality_degrades_with_perforation(self):
        points = canneal.measure_kernel_tradeoff(seed=1)
        fractions = [p[0] for p in points]
        qualities = [p[1] for p in points]
        assert fractions == sorted(fractions, reverse=True)
        assert qualities[0] == 1.0
        assert min(qualities) < 1.0


class TestFerretKernel:
    def test_similarity_degrades_with_perforation(self):
        points = ferret.measure_kernel_tradeoff(n_queries=15, seed=1)
        fractions = [p[0] for p in points]
        similarities = [p[1] for p in points]
        assert fractions == sorted(fractions, reverse=True)
        assert similarities[0] > 0.95
        assert similarities[-1] < similarities[0]


class TestStreamclusterKernel:
    def test_quality_insensitive_to_perforation(self):
        # streamcluster is the benchmark where perforation is nearly
        # free (0.55 % loss in Table 2): quality stays high even at the
        # most aggressive evaluation fraction.
        points = streamcluster.measure_kernel_tradeoff(seed=1)
        qualities = [p[1] for p in points]
        assert min(qualities) > 0.7
