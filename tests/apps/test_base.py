"""Tests for application configuration tables and Eqn. 6 selection."""

import pytest

from repro.apps.base import AppConfig, ApproximateApplication, ConfigTable
from repro.hw.profiles import GENERIC_PROFILE


def make_table(points):
    """Build a table from (speedup, accuracy) pairs; first must be default."""
    return ConfigTable(
        AppConfig(index=i, speedup=s, accuracy=a)
        for i, (s, a) in enumerate(points)
    )


@pytest.fixture
def table():
    return make_table(
        [
            (1.0, 1.0),
            (1.5, 0.95),
            (2.0, 0.90),
            (1.8, 0.80),  # dominated: slower AND less accurate than (2.0, 0.90)
            (3.0, 0.70),
        ]
    )


class TestConstruction:
    def test_requires_default(self):
        with pytest.raises(ValueError, match="default config"):
            make_table([(1.5, 0.9), (2.0, 0.8)])

    def test_rejects_duplicate_indices(self):
        with pytest.raises(ValueError, match="duplicate"):
            ConfigTable(
                [
                    AppConfig(index=0, speedup=1.0, accuracy=1.0),
                    AppConfig(index=0, speedup=2.0, accuracy=0.9),
                ]
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            ConfigTable([])

    def test_appconfig_validation(self):
        with pytest.raises(ValueError):
            AppConfig(index=0, speedup=0.0, accuracy=1.0)
        with pytest.raises(ValueError):
            AppConfig(index=0, speedup=1.0, accuracy=-0.1)
        with pytest.raises(ValueError):
            AppConfig(index=0, speedup=1.0, accuracy=1.0, power_factor=0.0)


class TestFrontier:
    def test_dominated_config_excluded(self, table):
        frontier = table.pareto_frontier
        assert all(
            not (c.speedup == 1.8 and c.accuracy == 0.80) for c in frontier
        )

    def test_frontier_speedups_strictly_increasing(self, table):
        speedups = [c.speedup for c in table.pareto_frontier]
        assert all(a < b for a, b in zip(speedups, speedups[1:]))

    def test_frontier_accuracy_strictly_decreasing(self, table):
        accuracies = [c.accuracy for c in table.pareto_frontier]
        assert all(a > b for a, b in zip(accuracies, accuracies[1:]))

    def test_default_on_frontier(self, table):
        assert table.pareto_frontier[0] is table.default

    def test_max_speedup(self, table):
        assert table.max_speedup == 3.0

    def test_max_accuracy_loss(self, table):
        assert table.max_accuracy_loss == pytest.approx(0.30)


class TestSelection:
    """Eqn. 6: most accurate config delivering the required speedup."""

    def test_zero_speedup_gives_default(self, table):
        assert table.best_accuracy_for_speedup(0.0) is table.default

    def test_exact_speedup_match(self, table):
        config = table.best_accuracy_for_speedup(1.5)
        assert config.speedup == 1.5
        assert config.accuracy == 0.95

    def test_between_configs_rounds_up(self, table):
        config = table.best_accuracy_for_speedup(1.6)
        assert config.speedup == 2.0

    def test_beyond_max_returns_fastest(self, table):
        config = table.best_accuracy_for_speedup(10.0)
        assert config.speedup == 3.0

    def test_never_selects_dominated_config(self, table):
        for s in (0.5, 1.1, 1.7, 1.9, 2.5, 3.0):
            config = table.best_accuracy_for_speedup(s)
            assert (config.speedup, config.accuracy) != (1.8, 0.80)

    def test_selection_is_weakly_decreasing_in_accuracy(self, table):
        accuracies = [
            table.best_accuracy_for_speedup(s).accuracy
            for s in (1.0, 1.4, 1.8, 2.2, 2.6, 3.0)
        ]
        assert accuracies == sorted(accuracies, reverse=True)


class TestAccuracyOrder:
    def test_ordering_by_descending_accuracy(self, table):
        order = table.accuracy_order()
        accuracies = [c.accuracy for c in order]
        assert accuracies == sorted(accuracies, reverse=True)
        assert len(order) == len(table)


class TestApproximateApplication:
    def test_platform_gating(self, table):
        app = ApproximateApplication(
            name="demo",
            framework="powerdial",
            accuracy_metric="demo metric",
            table=table,
            resource_profile=GENERIC_PROFILE,
            platforms=("server",),
        )
        assert app.runs_on("server")
        assert not app.runs_on("mobile")

    def test_unknown_framework_rejected(self, table):
        with pytest.raises(ValueError, match="framework"):
            ApproximateApplication(
                name="demo",
                framework="magic",
                accuracy_metric="m",
                table=table,
                resource_profile=GENERIC_PROFILE,
            )

    def test_default_config_exposed(self, table):
        app = ApproximateApplication(
            name="demo",
            framework="powerdial",
            accuracy_metric="m",
            table=table,
            resource_profile=GENERIC_PROFILE,
        )
        assert app.default_config.speedup == 1.0
