"""Tests for the PowerDial dynamic-knob framework."""

import pytest

from repro.apps.powerdial import (
    DynamicKnob,
    KnobSetting,
    build_table,
    calibrated_knob,
)


class TestKnobSetting:
    def test_validation(self):
        with pytest.raises(ValueError):
            KnobSetting(value=1, speedup=0.0, accuracy=1.0)
        with pytest.raises(ValueError):
            KnobSetting(value=1, speedup=1.0, accuracy=1.5)


class TestDynamicKnob:
    def test_first_setting_must_be_default(self):
        with pytest.raises(ValueError, match="default"):
            DynamicKnob(
                "k", (KnobSetting(value=1, speedup=2.0, accuracy=0.9),)
            )

    def test_empty_settings_rejected(self):
        with pytest.raises(ValueError, match="no settings"):
            DynamicKnob("k", ())


class TestCalibratedKnob:
    def test_spans_requested_ranges(self):
        knob = calibrated_knob("k", range(10), 4.0, 0.2)
        speedups = [s.speedup for s in knob.settings]
        accuracies = [s.accuracy for s in knob.settings]
        assert speedups[0] == 1.0
        assert speedups[-1] == pytest.approx(4.0)
        assert accuracies[0] == 1.0
        assert accuracies[-1] == pytest.approx(0.8)

    def test_monotone(self):
        knob = calibrated_knob("k", range(20), 10.0, 0.3)
        speedups = [s.speedup for s in knob.settings]
        accuracies = [s.accuracy for s in knob.settings]
        assert speedups == sorted(speedups)
        assert accuracies == sorted(accuracies, reverse=True)

    def test_convex_loss(self):
        # loss_exponent > 1: the first half of the range loses less than
        # half of the total accuracy loss.
        knob = calibrated_knob("k", range(11), 2.0, 0.2, loss_exponent=2.0)
        mid_loss = 1.0 - knob.settings[5].accuracy
        assert mid_loss < 0.1

    def test_linear_speedup_shape(self):
        knob = calibrated_knob(
            "k", range(5), 5.0, 0.1, speedup_shape="linear"
        )
        speedups = [s.speedup for s in knob.settings]
        assert speedups == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0])

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="speedup_shape"):
            calibrated_knob("k", range(3), 2.0, 0.1, speedup_shape="cubic")

    def test_single_value_knob(self):
        knob = calibrated_knob("k", [7], 3.0, 0.5)
        assert len(knob.settings) == 1
        assert knob.settings[0].speedup == 1.0


class TestBuildTable:
    def test_size_is_cross_product(self):
        a = calibrated_knob("a", range(4), 2.0, 0.1)
        b = calibrated_knob("b", range(5), 3.0, 0.05)
        assert len(build_table([a, b])) == 20

    def test_speedups_multiply(self):
        a = calibrated_knob("a", range(3), 2.0, 0.0)
        b = calibrated_knob("b", range(3), 3.0, 0.0)
        table = build_table([a, b], jitter=0.0)
        assert table.max_speedup == pytest.approx(6.0)

    def test_accuracies_compound(self):
        a = calibrated_knob("a", range(2), 1.0, 0.1)
        b = calibrated_knob("b", range(2), 1.0, 0.2)
        table = build_table([a, b], jitter=0.0)
        assert min(c.accuracy for c in table) == pytest.approx(0.9 * 0.8)

    def test_default_is_untouched_by_jitter(self):
        a = calibrated_knob("a", range(6), 2.0, 0.1)
        table = build_table([a], jitter=0.2, seed=5)
        assert table.default.speedup == 1.0
        assert table.default.accuracy == 1.0

    def test_jitter_is_deterministic(self):
        a = calibrated_knob("a", range(6), 2.0, 0.1)
        t1 = build_table([a], jitter=0.05, seed=9)
        t2 = build_table([a], jitter=0.05, seed=9)
        assert [c.speedup for c in t1] == [c.speedup for c in t2]

    def test_accuracy_never_exceeds_one(self):
        a = calibrated_knob("a", range(30), 2.0, 0.01)
        table = build_table([a], jitter=0.3, seed=11)
        assert all(c.accuracy <= 1.0 for c in table)

    def test_power_factor_decreases_with_speedup(self):
        a = calibrated_knob("a", range(5), 4.0, 0.1)
        table = build_table([a], jitter=0.0, power_coupling=0.1)
        by_speedup = sorted(table, key=lambda c: c.speedup)
        factors = [c.power_factor for c in by_speedup]
        assert factors == sorted(factors, reverse=True)
        assert all(0.9 <= f <= 1.0 for f in factors)

    def test_knob_settings_recorded(self):
        a = calibrated_knob("alpha", (10, 20), 2.0, 0.1)
        table = build_table([a], jitter=0.0)
        values = {c.knob_settings for c in table}
        assert (("alpha", 10),) in values
        assert (("alpha", 20),) in values

    def test_no_knobs_rejected(self):
        with pytest.raises(ValueError, match="at least one knob"):
            build_table([])
