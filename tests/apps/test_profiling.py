"""Tests for the measured-table profiling workflow."""

import pytest

from repro.apps.profiling import (
    ProfiledSetting,
    profile_application,
    profile_table,
    timed,
)
from repro.hw.profiles import GENERIC_PROFILE


def make_settings(costs, qualities):
    return [
        ProfiledSetting(
            knob_settings=(("level", float(i)),),
            run=lambda c=c, q=q: (c, q),
        )
        for i, (c, q) in enumerate(zip(costs, qualities))
    ]


class TestProfileTable:
    def test_default_is_first_setting(self):
        table = profile_table(
            make_settings([10.0, 5.0, 2.0], [1.0, 0.9, 0.7])
        )
        assert table.default.index == 0

    def test_speedups_from_cost_ratio(self):
        table = profile_table(
            make_settings([10.0, 5.0, 2.0], [1.0, 0.9, 0.7])
        )
        assert table[1].speedup == pytest.approx(2.0)
        assert table[2].speedup == pytest.approx(5.0)

    def test_accuracy_default_ratio(self):
        table = profile_table(
            make_settings([10.0, 5.0], [2.0, 1.5])
        )
        assert table[1].accuracy == pytest.approx(0.75)

    def test_custom_accuracy_mapping(self):
        # Lower-is-better quality (e.g. clustering cost).
        table = profile_table(
            make_settings([10.0, 5.0], [100.0, 125.0]),
            accuracy_from_quality=lambda q, ref: min(1.0, ref / q),
        )
        assert table[1].accuracy == pytest.approx(0.8)

    def test_accuracy_clipped_to_unit_interval(self):
        table = profile_table(
            make_settings([10.0, 5.0], [1.0, 1.5])  # "better" than default
        )
        assert table[1].accuracy == 1.0

    def test_repeats_average_noise(self):
        calls = {"n": 0}

        def noisy():
            calls["n"] += 1
            return (10.0 + (calls["n"] % 2), 1.0)

        settings = [
            ProfiledSetting((("level", 0.0),), run=lambda: (10.0, 1.0)),
            ProfiledSetting((("level", 1.0),), run=noisy),
        ]
        profile_table(settings, repeats=4)
        assert calls["n"] == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            profile_table([])
        with pytest.raises(ValueError):
            profile_table(make_settings([0.0], [1.0]))
        with pytest.raises(ValueError):
            profile_table(make_settings([1.0], [0.0]))
        with pytest.raises(ValueError):
            profile_table(make_settings([1.0], [1.0]), repeats=0)

    def test_power_factor_monotone(self):
        table = profile_table(
            make_settings([10.0, 5.0, 1.0], [1.0, 0.9, 0.5])
        )
        factors = [c.power_factor for c in sorted(table, key=lambda c: c.speedup)]
        assert factors == sorted(factors, reverse=True)


class TestProfileApplication:
    def test_wraps_into_application(self):
        app = profile_application(
            "demo",
            make_settings([10.0, 4.0], [1.0, 0.8]),
            resource_profile=GENERIC_PROFILE,
        )
        assert app.name == "demo"
        assert len(app.table) == 2

    def test_profiled_app_runs_under_jouleguard(self):
        from repro.hw import get_machine
        from repro.runtime.harness import run_jouleguard

        app = profile_application(
            "demo",
            make_settings([10.0, 5.0, 2.5, 1.0], [1.0, 0.95, 0.85, 0.6]),
            resource_profile=GENERIC_PROFILE,
        )
        result = run_jouleguard(
            get_machine("tablet"), app, factor=2.0, n_iterations=150, seed=1
        )
        assert result.relative_error_pct < 5.0


class TestTimed:
    def test_wall_clock_cost_positive(self):
        work = timed(lambda: 42.0)
        cost, quality = work()
        assert cost > 0
        assert quality == 42.0
