"""Tests for the loop-perforation framework."""

import pytest

from repro.apps.perforation import (
    PerforatableLoop,
    build_table,
    perforate,
    rates_for_speedups,
)


class TestPerforate:
    def test_zero_rate_keeps_everything(self):
        assert list(perforate(range(10), 0.0)) == list(range(10))

    def test_half_rate_keeps_every_other(self):
        assert list(perforate(range(10), 0.5)) == [0, 2, 4, 6, 8]

    def test_kept_fraction_matches_rate(self):
        for rate in (0.1, 0.25, 0.75, 0.9):
            kept = len(list(perforate(range(1000), rate)))
            assert kept == pytest.approx(1000 * (1 - rate), abs=2)

    def test_skipping_is_evenly_spread(self):
        kept = list(perforate(range(100), 0.75))
        gaps = [b - a for a, b in zip(kept, kept[1:])]
        assert max(gaps) - min(gaps) <= 1

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            list(perforate(range(5), 1.0))
        with pytest.raises(ValueError):
            list(perforate(range(5), -0.1))

    def test_works_on_any_iterable(self):
        assert list(perforate((c for c in "abcdef"), 0.5)) == ["a", "c", "e"]


class TestPerforatableLoop:
    @pytest.fixture
    def loop(self):
        return PerforatableLoop(
            name="demo", runtime_share=0.8, quality_sensitivity=0.2
        )

    def test_amdahl_speedup(self, loop):
        assert loop.speedup(0.0) == 1.0
        assert loop.speedup(0.5) == pytest.approx(1.0 / 0.6)

    def test_speedup_bounded_by_runtime_share(self, loop):
        assert loop.speedup(0.999) < 1.0 / (1.0 - loop.runtime_share)

    def test_accuracy_convex(self, loop):
        assert loop.accuracy(0.0) == 1.0
        assert 1.0 - loop.accuracy(0.5) < 0.5 * (1.0 - loop.accuracy(1.0 - 1e-9))

    def test_validation(self):
        with pytest.raises(ValueError):
            PerforatableLoop("l", runtime_share=1.0, quality_sensitivity=0.1)
        with pytest.raises(ValueError):
            PerforatableLoop("l", runtime_share=0.5, quality_sensitivity=1.0)
        with pytest.raises(ValueError):
            PerforatableLoop(
                "l", 0.5, 0.1, loss_exponent=0.0
            )

    def test_invalid_rate_rejected(self, loop):
        with pytest.raises(ValueError):
            loop.speedup(1.0)


class TestBuildTable:
    @pytest.fixture
    def loop(self):
        return PerforatableLoop("demo", 0.8, 0.2)

    def test_table_size(self, loop):
        table = build_table(loop, (0.0, 0.3, 0.6))
        assert len(table) == 3

    def test_first_rate_must_be_zero(self, loop):
        with pytest.raises(ValueError, match="first rate"):
            build_table(loop, (0.1, 0.5))

    def test_table_is_pareto_consistent(self, loop):
        table = build_table(loop, (0.0, 0.2, 0.4, 0.6, 0.8))
        assert len(table.pareto_frontier) == 5  # monotone loop: all on frontier

    def test_rates_recorded_as_knob_settings(self, loop):
        table = build_table(loop, (0.0, 0.4))
        rates = {c.knob_settings[0][1] for c in table}
        assert rates == {0.0, 0.4}

    def test_empty_rates_rejected(self, loop):
        with pytest.raises(ValueError):
            build_table(loop, ())


class TestRatesForSpeedups:
    def test_inverts_speedup(self):
        loop = PerforatableLoop("demo", 0.8, 0.2)
        rates = rates_for_speedups(loop, (1.0, 1.5, 1.93))
        for rate, target in zip(rates, (1.0, 1.5, 1.93)):
            assert loop.speedup(rate) == pytest.approx(target)

    def test_unreachable_speedup_rejected(self):
        loop = PerforatableLoop("demo", 0.5, 0.2)
        with pytest.raises(ValueError, match="unreachable"):
            rates_for_speedups(loop, (3.0,))

    def test_sub_one_speedup_rejected(self):
        loop = PerforatableLoop("demo", 0.5, 0.2)
        with pytest.raises(ValueError):
            rates_for_speedups(loop, (0.5,))
