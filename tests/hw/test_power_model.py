"""Unit tests of the power model."""

import pytest

from repro.hw import AppResourceProfile, GENERIC_PROFILE
from repro.hw.machines import build_mobile, build_server, build_tablet
from repro.hw.power_model import (
    cluster_power,
    package_power,
    powerup_over_minimal,
    stall_derating,
    system_power,
)


@pytest.fixture(scope="module")
def server():
    return build_server()


class TestComposition:
    def test_system_power_is_package_plus_external(self, server):
        config = server.default_config
        assert system_power(server, config, GENERIC_PROFILE) == pytest.approx(
            package_power(server, config, GENERIC_PROFILE) + server.external_w
        )

    def test_package_power_at_least_idle(self, server):
        for config in (server.space.minimal, server.default_config):
            assert (
                package_power(server, config, GENERIC_PROFILE)
                >= server.idle_w
            )

    def test_inactive_cluster_draws_nothing(self):
        mobile = build_mobile()
        config = mobile.space.minimal  # LITTLE only
        big = next(c for c in mobile.clusters if c.name == "big")
        assert cluster_power(mobile, big, config, GENERIC_PROFILE) == 0.0


class TestScaling:
    def test_power_monotone_in_clock(self, server):
        lo = server.default_config.replace(clock_ghz=0.8)
        hi = server.default_config.replace(clock_ghz=2.9)
        assert system_power(server, hi, GENERIC_PROFILE) > system_power(
            server, lo, GENERIC_PROFILE
        )

    def test_power_monotone_in_cores(self, server):
        few = server.default_config.replace(cores=2)
        many = server.default_config.replace(cores=16)
        assert system_power(server, many, GENERIC_PROFILE) > system_power(
            server, few, GENERIC_PROFILE
        )

    def test_cubic_clock_scaling_dominates_at_high_clock(self, server):
        # Doubling the clock should raise dynamic power by much more
        # than 2x (the paper's cubic initialization rationale).
        profile = GENERIC_PROFILE
        base = server.default_config.replace(cores=16, clock_ghz=1.08)
        double = server.default_config.replace(cores=16, clock_ghz=2.2)
        dyn_base = package_power(server, base, profile) - server.idle_w
        dyn_double = package_power(server, double, profile) - server.idle_w
        assert dyn_double > 2.0 * dyn_base

    def test_turbo_region_costs_extra(self, server):
        at_knee = server.default_config.replace(clock_ghz=2.34)
        in_turbo = server.default_config.replace(clock_ghz=2.9)
        # Beyond the cubic growth, the turbo adder makes the jump larger
        # than the cubic ratio alone would predict.
        cubic_ratio = (2.9 / 2.34) ** 3
        knee_dynamic = (
            package_power(server, at_knee, GENERIC_PROFILE)
            - server.idle_w
            - 16 * server.clusters[0].leak_w
        )
        turbo_dynamic = (
            package_power(server, in_turbo, GENERIC_PROFILE)
            - server.idle_w
            - 16 * server.clusters[0].leak_w
        )
        assert turbo_dynamic > cubic_ratio * knee_dynamic * 0.99

    def test_activity_factor_scales_dynamic_power(self, server):
        hot = AppResourceProfile("hot", 1.0, 0.9, 1.0, 0.0, 0.0, 1.2)
        cool = AppResourceProfile("cool", 1.0, 0.9, 1.0, 0.0, 0.0, 0.6)
        config = server.default_config
        assert system_power(server, config, hot) > system_power(
            server, config, cool
        )

    def test_powerup_is_one_at_minimal(self, server):
        assert powerup_over_minimal(
            server, server.space.minimal, GENERIC_PROFILE
        ) == pytest.approx(1.0)


class TestStallDerating:
    def test_no_derating_for_compute_bound(self, server):
        profile = AppResourceProfile("cb", 1.0, 0.9, 1.0, 0.0, 0.0, 1.0)
        assert (
            stall_derating(server, server.default_config, profile) == 1.0
        )

    def test_derating_in_unit_interval(self, server):
        profile = AppResourceProfile("mb", 1.0, 0.99, 1.0, 1.0, 0.5, 1.0)
        derate = stall_derating(server, server.default_config, profile)
        assert 0.55 <= derate < 1.0

    def test_starved_config_draws_less_power(self, server):
        memory_bound = AppResourceProfile(
            "mb", 1.0, 0.99, 1.0, 0.95, 0.0, 1.0
        )
        compute_bound = AppResourceProfile(
            "cb", 1.0, 0.99, 1.0, 0.0, 0.0, 1.0
        )
        config = server.default_config.replace(mem_ctrls=1)
        # Same configuration, but the stalling app burns less power
        # (ignoring its own activity factor, held equal here).
        assert system_power(server, config, memory_bound) < system_power(
            server, config, compute_bound
        )


class TestTabletQuirk:
    def test_snapped_clocks_draw_identical_power(self):
        tablet = build_tablet()
        a = tablet.default_config.replace(clock_ghz=1.2)
        b = tablet.default_config.replace(clock_ghz=1.5)  # snaps to 1.2
        assert system_power(tablet, a, GENERIC_PROFILE) == pytest.approx(
            system_power(tablet, b, GENERIC_PROFILE)
        )
