"""Tests for machine serialization."""

import json

import pytest

from repro.hw import (
    GENERIC_PROFILE,
    build_mobile,
    build_server,
    build_tablet,
    system_power,
    work_rate,
)
from repro.hw.serialize import (
    load_machine,
    machine_from_dict,
    machine_to_dict,
    register_constraint,
    register_speed_quirk,
    save_machine,
)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "build", [build_mobile, build_tablet, build_server]
    )
    def test_paper_platforms_roundtrip(self, build):
        machine = build()
        restored = machine_from_dict(machine_to_dict(machine))
        assert restored.name == machine.name
        assert len(restored.space) == len(machine.space)
        # Electrical model identical: same power/rate everywhere sampled.
        for config in list(machine.space)[:: max(1, len(machine.space) // 20)]:
            assert work_rate(restored, config, GENERIC_PROFILE) == (
                work_rate(machine, config, GENERIC_PROFILE)
            )
            assert system_power(restored, config, GENERIC_PROFILE) == (
                system_power(machine, config, GENERIC_PROFILE)
            )

    def test_constraint_preserved(self):
        restored = machine_from_dict(machine_to_dict(build_mobile()))
        for config in restored.space:
            assert (config["big_cores"] > 0) != (
                config["little_cores"] > 0
            )

    def test_speed_quirk_preserved(self):
        tablet = build_tablet()
        restored = machine_from_dict(machine_to_dict(tablet))
        cluster = restored.clusters[0]
        config = restored.default_config.replace(clock_ghz=1.5)
        assert restored.cluster_speed(cluster, config) == 1.2  # snapped

    def test_file_roundtrip(self, tmp_path):
        path = save_machine(build_tablet(), tmp_path / "tablet.json")
        restored = load_machine(path)
        assert restored.name == "tablet"
        json.loads(path.read_text())  # valid JSON on disk

    def test_restored_machine_runs_jouleguard(self, apps, tmp_path):
        from repro.runtime.harness import run_jouleguard

        path = save_machine(build_tablet(), tmp_path / "m.json")
        machine = load_machine(path)
        result = run_jouleguard(
            machine, apps["x264"], factor=1.5, n_iterations=60, seed=0
        )
        assert result.relative_error_pct < 5.0


class TestBehaviourRegistry:
    def test_unregistered_constraint_rejected_on_save(self):
        from repro.hw import ConfigSpace, Cluster, Knob, Machine

        machine = Machine(
            name="odd",
            space=ConfigSpace(
                [Knob("cores", (1, 2))],
                constraint=lambda c: True,
            ),
            clusters=(
                Cluster("c", "cores", "cores", 1.0, 0.1, 0.1),
            ),
            idle_w=1.0,
            external_w=1.0,
        )
        with pytest.raises(ValueError, match="unregistered constraint"):
            machine_to_dict(machine)

    def test_unknown_names_rejected_on_load(self):
        data = machine_to_dict(build_tablet())
        data["speed_quirk"] = "nonexistent"
        with pytest.raises(ValueError, match="unknown speed quirk"):
            machine_from_dict(data)
        data = machine_to_dict(build_mobile())
        data["constraint"] = "nonexistent"
        with pytest.raises(ValueError, match="unknown constraint"):
            machine_from_dict(data)

    def test_register_custom_constraint(self):
        name = "test_only_even_cores"
        register_constraint(name, lambda c: c["cores"] % 2 == 0)
        try:
            data = machine_to_dict(build_tablet())
            data["constraint"] = name
            restored = machine_from_dict(data)
            assert all(c["cores"] % 2 == 0 for c in restored.space)
        finally:
            from repro.hw import serialize

            serialize._CONSTRAINTS.pop(name, None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_constraint(
                "mobile_cluster_exclusive", lambda c: True
            )
        with pytest.raises(ValueError, match="already registered"):
            register_speed_quirk(
                "tablet_firmware_plateau", lambda n, f: f
            )

    def test_schema_checked(self):
        with pytest.raises(ValueError, match="schema"):
            machine_from_dict({"schema": 42})
