"""Unit tests for knob and system-configuration primitives."""

import pytest

from repro.hw.knobs import (
    Knob,
    SystemConfig,
    normalized_position,
    validate_config,
)


class TestKnob:
    def test_values_preserved_in_order(self):
        knob = Knob("cores", (1, 2, 4))
        assert knob.values == (1, 2, 4)
        assert knob.min_value == 1
        assert knob.max_value == 4

    def test_len_is_setting_count(self):
        assert len(Knob("clock", (0.5, 1.0, 1.5, 2.0))) == 4

    def test_index_of_known_value(self):
        knob = Knob("clock", (0.5, 1.0, 1.5))
        assert knob.index_of(1.0) == 1

    def test_index_of_unknown_value_raises(self):
        knob = Knob("clock", (0.5, 1.0))
        with pytest.raises(ValueError, match="not a setting"):
            knob.index_of(0.7)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            Knob("cores", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Knob("cores", (1, 1, 2))

    def test_descending_values_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Knob("cores", (4, 2, 1))


class TestSystemConfig:
    def test_from_mapping_roundtrip(self):
        config = SystemConfig.from_mapping({"cores": 4, "clock": 2.0})
        assert config.as_dict() == {"cores": 4, "clock": 2.0}

    def test_getitem(self):
        config = SystemConfig.from_mapping({"cores": 4})
        assert config["cores"] == 4

    def test_getitem_missing_raises_keyerror(self):
        config = SystemConfig.from_mapping({"cores": 4})
        with pytest.raises(KeyError):
            config["clock"]

    def test_get_with_default(self):
        config = SystemConfig.from_mapping({"cores": 4})
        assert config.get("clock", 1.5) == 1.5
        assert config.get("cores") == 4

    def test_hashable_and_equal_by_value(self):
        a = SystemConfig.from_mapping({"cores": 4, "clock": 2.0})
        b = SystemConfig.from_mapping({"clock": 2.0, "cores": 4})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_replace_creates_modified_copy(self):
        a = SystemConfig.from_mapping({"cores": 4, "clock": 2.0})
        b = a.replace(cores=2)
        assert b["cores"] == 2
        assert b["clock"] == 2.0
        assert a["cores"] == 4  # original unchanged

    def test_replace_unknown_knob_raises(self):
        a = SystemConfig.from_mapping({"cores": 4})
        with pytest.raises(KeyError):
            a.replace(clock=1.0)


class TestNormalizedPosition:
    def test_extremes(self):
        knob = Knob("clock", (0.5, 1.0, 1.5))
        assert normalized_position(knob, 0.5) == 0.0
        assert normalized_position(knob, 1.5) == 1.0

    def test_midpoint(self):
        knob = Knob("clock", (0.5, 1.0, 1.5))
        assert normalized_position(knob, 1.0) == pytest.approx(0.5)

    def test_single_value_knob_maps_to_one(self):
        assert normalized_position(Knob("x", (3.0,)), 3.0) == 1.0


class TestValidateConfig:
    def test_valid_config_passes(self):
        knobs = [Knob("cores", (1, 2)), Knob("clock", (1.0, 2.0))]
        config = SystemConfig.from_mapping({"cores": 1, "clock": 2.0})
        validate_config(knobs, config)

    def test_missing_knob_rejected(self):
        knobs = [Knob("cores", (1, 2)), Knob("clock", (1.0, 2.0))]
        config = SystemConfig.from_mapping({"cores": 1})
        with pytest.raises(ValueError, match="missing"):
            validate_config(knobs, config)

    def test_extra_knob_rejected(self):
        knobs = [Knob("cores", (1, 2))]
        config = SystemConfig.from_mapping({"cores": 1, "clock": 1.0})
        with pytest.raises(ValueError, match="extra"):
            validate_config(knobs, config)

    def test_illegal_value_rejected(self):
        knobs = [Knob("cores", (1, 2))]
        config = SystemConfig.from_mapping({"cores": 3})
        with pytest.raises(ValueError):
            validate_config(knobs, config)
