"""Unit tests for configuration-space enumeration and linearization."""

import pytest

from repro.hw.config_space import ConfigSpace
from repro.hw.knobs import Knob, SystemConfig


@pytest.fixture
def small_space():
    return ConfigSpace(
        [Knob("cores", (1, 2, 4)), Knob("clock", (1.0, 2.0))]
    )


class TestEnumeration:
    def test_size_is_cartesian_product(self, small_space):
        assert len(small_space) == 6

    def test_all_configs_distinct(self, small_space):
        assert len(set(small_space)) == 6

    def test_contains(self, small_space):
        assert SystemConfig.from_mapping({"cores": 2, "clock": 1.0}) in small_space
        assert (
            SystemConfig.from_mapping({"cores": 3, "clock": 1.0})
            not in small_space
        )

    def test_index_roundtrip(self, small_space):
        for i, config in enumerate(small_space):
            assert small_space.index_of(config) == i
            assert small_space[i] == config

    def test_index_of_unknown_raises(self, small_space):
        with pytest.raises(ValueError, match="not in this space"):
            small_space.index_of(
                SystemConfig.from_mapping({"cores": 3, "clock": 1.0})
            )

    def test_constraint_filters(self):
        space = ConfigSpace(
            [Knob("cores", (1, 2, 4)), Knob("clock", (1.0, 2.0))],
            constraint=lambda c: c["cores"] * c["clock"] <= 4,
        )
        assert all(c["cores"] * c["clock"] <= 4 for c in space)
        assert len(space) == 5

    def test_unsatisfiable_constraint_rejected(self):
        with pytest.raises(ValueError, match="rejects every"):
            ConfigSpace(
                [Knob("cores", (1, 2))], constraint=lambda c: False
            )

    def test_duplicate_knob_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ConfigSpace([Knob("cores", (1,)), Knob("cores", (2,))])

    def test_no_knobs_rejected(self):
        with pytest.raises(ValueError, match="at least one knob"):
            ConfigSpace([])


class TestLinearization:
    def test_minimal_is_all_min(self, small_space):
        assert small_space.minimal.as_dict() == {"cores": 1, "clock": 1.0}

    def test_maximal_is_all_max(self, small_space):
        assert small_space.maximal.as_dict() == {"cores": 4, "clock": 2.0}

    def test_linearized_covers_space(self, small_space):
        linear = small_space.linearized()
        assert len(linear) == len(small_space)
        assert set(linear) == set(small_space)

    def test_resource_level_monotone_endpoints(self, small_space):
        assert small_space.resource_level(small_space.minimal) == 0.0
        assert small_space.resource_level(small_space.maximal) == 1.0

    def test_linearized_sorted_by_resource_level(self, small_space):
        linear = small_space.linearized()
        levels = [small_space.resource_level(c) for c in linear]
        assert levels == sorted(levels)

    def test_validate_accepts_member(self, small_space):
        small_space.validate(small_space.minimal)

    def test_validate_rejects_constraint_violation(self):
        space = ConfigSpace(
            [Knob("cores", (1, 2))], constraint=lambda c: c["cores"] < 2
        )
        with pytest.raises(ValueError, match="violates"):
            space.validate(SystemConfig.from_mapping({"cores": 2}))


class TestNeighbors:
    def test_interior_config_has_neighbors_per_knob(self, small_space):
        config = SystemConfig.from_mapping({"cores": 2, "clock": 1.0})
        neighbors = small_space.neighbors(config)
        assert len(neighbors) == 3  # cores down, cores up, clock up

    def test_corner_config_has_fewer_neighbors(self, small_space):
        neighbors = small_space.neighbors(small_space.minimal)
        assert len(neighbors) == 2

    def test_neighbors_respect_constraint(self):
        space = ConfigSpace(
            [Knob("cores", (1, 2, 4))],
            constraint=lambda c: c["cores"] != 2,
        )
        neighbors = space.neighbors(SystemConfig.from_mapping({"cores": 1}))
        assert neighbors == []
