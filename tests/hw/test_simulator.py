"""Unit tests for the platform simulator."""

import numpy as np
import pytest

from repro.hw import GENERIC_PROFILE, NoiseModel, PlatformSimulator
from repro.hw.machines import build_tablet


@pytest.fixture
def simulator():
    return PlatformSimulator(
        build_tablet(),
        GENERIC_PROFILE,
        noise=NoiseModel(sigma_rate=0.0, sigma_power=0.0),
        seed=0,
    )


class TestDeterministicExecution:
    def test_energy_is_power_times_time(self, simulator):
        config = simulator.machine.default_config
        result = simulator.run_iteration(config, work=2.0)
        assert result.energy_j == pytest.approx(
            result.true_power_w * result.time_s
        )

    def test_time_is_work_over_rate(self, simulator):
        config = simulator.machine.default_config
        result = simulator.run_iteration(config, work=3.0)
        assert result.time_s == pytest.approx(3.0 / result.true_rate)

    def test_noise_free_matches_ideal(self, simulator):
        config = simulator.machine.default_config
        result = simulator.run_iteration(config, work=1.0)
        assert result.true_rate == pytest.approx(
            simulator.ideal_rate(config)
        )
        assert result.true_power_w == pytest.approx(
            simulator.ideal_power(config)
        )

    def test_app_speedup_scales_rate(self, simulator):
        config = simulator.machine.default_config
        slow = simulator.run_iteration(config, work=1.0, app_speedup=1.0)
        fast = simulator.run_iteration(config, work=1.0, app_speedup=2.0)
        assert fast.true_rate == pytest.approx(2.0 * slow.true_rate)

    def test_input_difficulty_slows_iteration(self, simulator):
        config = simulator.machine.default_config
        easy = simulator.run_iteration(config, 1.0, input_difficulty=0.5)
        hard = simulator.run_iteration(config, 1.0, input_difficulty=2.0)
        assert hard.time_s == pytest.approx(4.0 * easy.time_s)

    def test_app_power_factor_scales_power(self, simulator):
        config = simulator.machine.default_config
        full = simulator.run_iteration(config, 1.0, app_power_factor=1.0)
        reduced = simulator.run_iteration(config, 1.0, app_power_factor=0.9)
        assert reduced.true_power_w == pytest.approx(
            0.9 * full.true_power_w
        )

    def test_clock_advances(self, simulator):
        config = simulator.machine.default_config
        r1 = simulator.run_iteration(config, 1.0)
        r2 = simulator.run_iteration(config, 1.0)
        assert r2.clock_s == pytest.approx(r1.clock_s + r2.time_s)

    def test_measured_rate_equals_true_rate(self, simulator):
        # Work and time are directly observable, so the measured rate is
        # exact; power goes through the noisy sensor.
        config = simulator.machine.default_config
        result = simulator.run_iteration(config, 1.0)
        assert result.measured_rate == pytest.approx(result.true_rate)

    def test_invalid_inputs_rejected(self, simulator):
        config = simulator.machine.default_config
        with pytest.raises(ValueError):
            simulator.run_iteration(config, work=0.0)
        with pytest.raises(ValueError):
            simulator.run_iteration(config, 1.0, app_speedup=0.0)
        with pytest.raises(ValueError):
            simulator.run_iteration(config, 1.0, input_difficulty=0.0)


class TestNoise:
    def test_seeded_runs_reproduce(self):
        machine = build_tablet()
        a = PlatformSimulator(machine, GENERIC_PROFILE, seed=7)
        b = PlatformSimulator(machine, GENERIC_PROFILE, seed=7)
        config = machine.default_config
        ra = [a.run_iteration(config, 1.0).true_rate for _ in range(20)]
        rb = [b.run_iteration(config, 1.0).true_rate for _ in range(20)]
        assert ra == rb

    def test_noise_centers_on_ideal(self):
        machine = build_tablet()
        simulator = PlatformSimulator(
            machine,
            GENERIC_PROFILE,
            noise=NoiseModel(sigma_rate=0.05, sigma_power=0.02),
            seed=11,
        )
        config = machine.default_config
        rates = [
            simulator.run_iteration(config, 1.0).true_rate
            for _ in range(3000)
        ]
        assert np.mean(rates) == pytest.approx(
            simulator.ideal_rate(config), rel=0.02
        )

    def test_ar1_noise_is_correlated(self):
        machine = build_tablet()
        simulator = PlatformSimulator(
            machine,
            GENERIC_PROFILE,
            noise=NoiseModel(sigma_rate=0.1, correlation=0.9),
            seed=13,
        )
        config = machine.default_config
        rates = np.array(
            [
                simulator.run_iteration(config, 1.0).true_rate
                for _ in range(2000)
            ]
        )
        log_rates = np.log(rates)
        autocorr = np.corrcoef(log_rates[:-1], log_rates[1:])[0, 1]
        assert autocorr > 0.5

    def test_noise_model_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(correlation=1.0)
        with pytest.raises(ValueError):
            NoiseModel(sigma_rate=-0.1)


class TestDisturbances:
    def test_disturbance_scales_rate(self):
        machine = build_tablet()
        simulator = PlatformSimulator(
            machine,
            GENERIC_PROFILE,
            noise=NoiseModel(sigma_rate=0.0, sigma_power=0.0),
        )
        config = machine.default_config
        baseline = simulator.run_iteration(config, 1.0).true_rate
        simulator.add_disturbance(lambda t: 0.5)
        disturbed = simulator.run_iteration(config, 1.0).true_rate
        assert disturbed == pytest.approx(0.5 * baseline)

    def test_time_dependent_disturbance(self):
        machine = build_tablet()
        simulator = PlatformSimulator(
            machine,
            GENERIC_PROFILE,
            noise=NoiseModel(sigma_rate=0.0, sigma_power=0.0),
        )
        config = machine.default_config
        simulator.add_disturbance(
            lambda t: 0.25 if t > 1e9 else 1.0
        )
        early = simulator.run_iteration(config, 1.0).true_rate
        simulator.clock_s = 2e9
        late = simulator.run_iteration(config, 1.0).true_rate
        assert late == pytest.approx(0.25 * early)

    def test_nonpositive_disturbance_rejected(self):
        machine = build_tablet()
        simulator = PlatformSimulator(machine, GENERIC_PROFILE)
        simulator.add_disturbance(lambda t: 0.0)
        with pytest.raises(ValueError):
            simulator.run_iteration(machine.default_config, 1.0)


class TestMeter:
    def test_external_meter_accumulates_true_energy(self):
        machine = build_tablet()
        simulator = PlatformSimulator(
            machine,
            GENERIC_PROFILE,
            noise=NoiseModel(sigma_rate=0.0, sigma_power=0.0),
        )
        config = machine.default_config
        total = sum(
            simulator.run_iteration(config, 1.0).energy_j for _ in range(5)
        )
        assert simulator.meter.true_energy_j == pytest.approx(total)
