"""Tests for application resource profiles."""

import pytest

from repro.apps import build_all
from repro.hw.profiles import GENERIC_PROFILE, AppResourceProfile


class TestValidation:
    def test_generic_profile_valid(self):
        assert GENERIC_PROFILE.base_rate > 0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("base_rate", 0.0),
            ("parallel_fraction", 1.0),
            ("parallel_fraction", -0.1),
            ("clock_sensitivity", 0.0),
            ("clock_sensitivity", 2.0),
            ("memory_boundness", 1.5),
            ("ht_gain", -0.1),
            ("ht_gain", 1.5),
            ("activity_factor", 0.0),
            ("activity_factor", 3.0),
        ],
    )
    def test_out_of_range_rejected(self, field, value):
        params = dict(
            name="bad",
            base_rate=1.0,
            parallel_fraction=0.9,
            clock_sensitivity=0.9,
            memory_boundness=0.3,
            ht_gain=0.2,
            activity_factor=1.0,
        )
        params[field] = value
        with pytest.raises(ValueError):
            AppResourceProfile(**params)

    def test_immutable(self):
        with pytest.raises(Exception):
            GENERIC_PROFILE.base_rate = 2.0


class TestSuiteProfiles:
    """Sanity of the eight benchmark profiles (Sec. 4.1 workload mix)."""

    def test_all_profiles_valid_and_distinct(self):
        profiles = {
            name: app.resource_profile for name, app in build_all().items()
        }
        assert len({p.name for p in profiles.values()}) == 8
        # The suite spans the compute/memory spectrum:
        boundness = [p.memory_boundness for p in profiles.values()]
        assert min(boundness) < 0.1  # swaptions: compute-dense
        assert max(boundness) >= 0.7  # ferret/canneal: memory-bound

    def test_server_class_apps_are_parallel(self):
        profiles = build_all()
        for name in ("swish", "swaptions", "streamcluster"):
            assert profiles[name].resource_profile.parallel_fraction > 0.9

    def test_canneal_is_the_least_parallel(self):
        profiles = {
            name: app.resource_profile.parallel_fraction
            for name, app in build_all().items()
        }
        assert profiles["canneal"] == min(profiles.values())
