"""Tests for the thermal model and throttling."""

import pytest

from repro.hw import GENERIC_PROFILE, NoiseModel, PlatformSimulator
from repro.hw.machines import build_tablet
from repro.hw.thermal import ThermalModel, attach_thermal_model


class TestThermalDynamics:
    def test_heats_toward_steady_state(self):
        model = ThermalModel(temperature_c=25.0)
        steady = model.steady_state_c(100.0)
        for _ in range(100):
            model.advance(100.0, dt_s=1.0)
        assert model.temperature_c == pytest.approx(steady, abs=0.5)

    def test_cools_when_power_drops(self):
        model = ThermalModel(temperature_c=90.0)
        model.advance(0.0, dt_s=5.0)
        assert model.temperature_c < 90.0

    def test_exact_integration_stable_for_large_steps(self):
        model = ThermalModel(temperature_c=25.0)
        model.advance(100.0, dt_s=1e6)  # huge step: lands at steady state
        assert model.temperature_c == pytest.approx(
            model.steady_state_c(100.0)
        )

    def test_monotone_approach(self):
        model = ThermalModel(temperature_c=25.0)
        temps = [model.advance(80.0, 1.0) for _ in range(30)]
        assert temps == sorted(temps)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel(time_constant_s=0.0)
        with pytest.raises(ValueError):
            ThermalModel(throttle_threshold_c=90.0, critical_c=85.0)
        with pytest.raises(ValueError):
            ThermalModel(min_throttle=0.0)
        with pytest.raises(ValueError):
            ThermalModel().advance(-1.0, 1.0)


class TestThrottling:
    def test_no_throttle_below_threshold(self):
        model = ThermalModel(temperature_c=60.0)
        assert model.throttle_factor == 1.0
        assert not model.throttling

    def test_linear_ramp_above_threshold(self):
        model = ThermalModel(
            throttle_threshold_c=85.0, critical_c=105.0, min_throttle=0.3
        )
        model.temperature_c = 95.0  # halfway
        assert model.throttle_factor == pytest.approx(0.65)
        assert model.throttling

    def test_floor_at_critical_and_beyond(self):
        model = ThermalModel(min_throttle=0.3)
        model.temperature_c = 150.0
        assert model.throttle_factor == pytest.approx(0.3)


class TestSimulatorCoupling:
    def make_hot_simulator(self):
        machine = build_tablet()
        simulator = PlatformSimulator(
            machine,
            GENERIC_PROFILE,
            noise=NoiseModel(sigma_rate=0.0, sigma_power=0.0),
            seed=0,
        )
        # An undersized heatsink: full power exceeds the threshold.
        model = ThermalModel(
            thermal_resistance_c_per_w=12.0,
            time_constant_s=2.0,
            throttle_threshold_c=70.0,
            critical_c=95.0,
        )
        attach_thermal_model(simulator, model)
        return machine, simulator, model

    def test_sustained_load_heats_and_throttles(self):
        machine, simulator, model = self.make_hot_simulator()
        config = machine.default_config
        baseline = simulator.run_iteration(config, 1.0).true_rate
        for _ in range(400):
            simulator.run_iteration(config, 1.0)
        assert model.throttling
        throttled = simulator.run_iteration(config, 1.0).true_rate
        assert throttled < baseline * 0.95

    def test_cool_config_avoids_throttling(self):
        machine, simulator, model = self.make_hot_simulator()
        cool = machine.space.minimal
        for _ in range(400):
            simulator.run_iteration(cool, 1.0)
        assert not model.throttling

    def test_jouleguard_budget_survives_throttling(self, apps):
        from repro.core.budget import EnergyGoal
        from repro.core.jouleguard import build_runtime
        from repro.core.types import Measurement
        from repro.runtime.harness import prior_shapes
        from repro.runtime.oracle import default_energy_per_work

        machine = build_tablet()
        app = apps["x264"]
        simulator = PlatformSimulator(
            machine, app.resource_profile, seed=1
        )
        attach_thermal_model(
            simulator,
            ThermalModel(
                thermal_resistance_c_per_w=10.0,
                time_constant_s=2.0,
                throttle_threshold_c=70.0,
                critical_c=95.0,
                min_throttle=0.5,
            ),
        )
        epw = default_energy_per_work(machine, app)
        n = 400
        goal = EnergyGoal.from_factor(1.5, n, epw)
        rate_shape, power_shape = prior_shapes(machine)
        runtime = build_runtime(
            rate_shape, power_shape, app.table, goal, seed=2
        )
        total = 0.0
        for _ in range(n):
            decision = runtime.current_decision
            result = simulator.run_iteration(
                machine.space[decision.system_index],
                work=1.0,
                app_speedup=decision.app_config.speedup,
            )
            total += result.energy_j
            runtime.step(
                Measurement(
                    work=1.0,
                    energy_j=result.measured_power_w * result.time_s,
                    rate=result.measured_rate,
                    power_w=result.measured_power_w,
                )
            )
        assert total <= goal.budget_j * 1.06
