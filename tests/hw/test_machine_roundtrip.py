"""Full serialization round-trips for every Table 3 machine shape.

``test_serialize.py`` covers the dict codec on sampled configurations;
this suite drives the *file* path (``save_machine`` / ``load_machine``)
for mobile, tablet, and server, and checks the derived surfaces the
rest of the stack consumes — prior shapes for the SEO and the dense
:class:`~repro.hw.vector.MachineTables` the fleet engine steps on —
so a machine that survives a round-trip is guaranteed to drive
byte-identical learning and fleet synthesis.
"""

import numpy as np
import pytest

from repro.hw import (
    GENERIC_PROFILE,
    all_machines,
    get_machine,
    load_machine,
    machine_from_dict,
    machine_to_dict,
    save_machine,
    system_power,
    work_rate,
)
from repro.hw.vector import MachineTables
from repro.runtime.harness import prior_shapes

SHAPES = ("mobile", "tablet", "server")


@pytest.mark.parametrize("name", SHAPES)
class TestFileRoundTrip:
    def test_save_load_preserves_identity(self, name, tmp_path):
        machine = get_machine(name)
        path = save_machine(machine, tmp_path / f"{name}.json")
        restored = load_machine(path)
        assert restored.name == machine.name
        assert restored.external_w == machine.external_w
        assert len(restored.space) == len(machine.space)
        assert list(restored.space) == list(machine.space)

    def test_save_load_preserves_models(self, name, tmp_path):
        """Every configuration's rate and power, exactly — the models
        are what the learner and the fleet tables are built from."""
        machine = get_machine(name)
        restored = load_machine(save_machine(machine, tmp_path / "m.json"))
        for config in machine.space:
            assert work_rate(restored, config, GENERIC_PROFILE) == (
                work_rate(machine, config, GENERIC_PROFILE)
            )
            assert system_power(restored, config, GENERIC_PROFILE) == (
                system_power(machine, config, GENERIC_PROFILE)
            )

    def test_prior_shapes_survive(self, name, tmp_path):
        machine = get_machine(name)
        restored = load_machine(save_machine(machine, tmp_path / "m.json"))
        rate, power = prior_shapes(machine)
        restored_rate, restored_power = prior_shapes(restored)
        np.testing.assert_array_equal(rate, restored_rate)
        np.testing.assert_array_equal(power, restored_power)

    def test_fleet_tables_survive(self, name, tmp_path):
        machine = get_machine(name)
        restored = load_machine(save_machine(machine, tmp_path / "m.json"))
        original = MachineTables.build(machine, GENERIC_PROFILE)
        rebuilt = MachineTables.build(restored, GENERIC_PROFILE)
        np.testing.assert_array_equal(original.base_rate, rebuilt.base_rate)
        np.testing.assert_array_equal(
            original.package_power_w, rebuilt.package_power_w
        )
        assert original.external_w == rebuilt.external_w

    def test_dict_codec_matches_file_codec(self, name, tmp_path):
        machine = get_machine(name)
        via_dict = machine_from_dict(machine_to_dict(machine))
        via_file = load_machine(save_machine(machine, tmp_path / "m.json"))
        assert machine_to_dict(via_dict) == machine_to_dict(via_file)


class TestImportSurface:
    def test_all_machines_cover_the_paper_shapes(self):
        machines = all_machines()
        assert set(SHAPES) <= set(machines)

    def test_tables_match_scalar_models_per_config(self):
        """MachineTables is a cache of the scalar models — verify
        element-for-element on the tablet shape."""
        machine = get_machine("tablet")
        tables = MachineTables.build(machine, GENERIC_PROFILE)
        assert tables.n_configs == len(machine.space)
        for i, config in enumerate(machine.space):
            assert float(tables.base_rate[i]) == work_rate(
                machine, config, GENERIC_PROFILE
            )
            assert float(
                tables.system_power_w[i]
            ) == system_power(machine, config, GENERIC_PROFILE)
