"""Unit tests of the performance model (Amdahl + bandwidth saturation)."""

import pytest

from repro.hw import AppResourceProfile, GENERIC_PROFILE
from repro.hw.machines import build_mobile, build_server
from repro.hw.speedup_model import (
    aggregate_capacity,
    bandwidth_limited_capacity,
    core_speed,
    fastest_core_speed,
    speedup_over_minimal,
    work_rate,
)


@pytest.fixture(scope="module")
def server():
    return build_server()


def _serial_profile(**overrides):
    params = dict(
        name="serial",
        base_rate=1.0,
        parallel_fraction=0.0,
        clock_sensitivity=1.0,
        memory_boundness=0.0,
        ht_gain=0.0,
        activity_factor=1.0,
    )
    params.update(overrides)
    return AppResourceProfile(**params)


class TestCoreSpeed:
    def test_scales_with_beta(self, server):
        slow = core_speed(server, "xeon", 1.0, beta=1.0)
        fast = core_speed(server, "xeon", 2.0, beta=1.0)
        assert fast == pytest.approx(2.0 * slow)

    def test_sublinear_beta(self, server):
        fast = core_speed(server, "xeon", 2.0, beta=0.5)
        slow = core_speed(server, "xeon", 1.0, beta=0.5)
        assert fast / slow == pytest.approx(2.0**0.5)

    def test_unknown_cluster_raises(self, server):
        with pytest.raises(KeyError):
            core_speed(server, "gpu", 1.0, beta=1.0)

    def test_zero_frequency_rejected(self, server):
        with pytest.raises(ValueError):
            core_speed(server, "xeon", 0.0, beta=1.0)


class TestAmdahl:
    def test_serial_app_ignores_extra_cores(self, server):
        profile = _serial_profile()
        one = server.default_config.replace(cores=1, hyperthreads=1)
        many = server.default_config.replace(cores=16, hyperthreads=1)
        assert work_rate(server, many, profile) == pytest.approx(
            work_rate(server, one, profile), rel=1e-9
        )

    def test_parallel_app_scales_with_cores(self, server):
        profile = _serial_profile(parallel_fraction=0.99)
        one = server.default_config.replace(cores=1, hyperthreads=1)
        eight = server.default_config.replace(cores=8, hyperthreads=1)
        ratio = work_rate(server, eight, profile) / work_rate(
            server, one, profile
        )
        assert 4.0 < ratio < 8.0  # near-linear but Amdahl-limited

    def test_rate_monotone_in_clock(self, server):
        lo = server.default_config.replace(clock_ghz=0.8)
        hi = server.default_config.replace(clock_ghz=2.9)
        assert work_rate(server, hi, GENERIC_PROFILE) > work_rate(
            server, lo, GENERIC_PROFILE
        )

    def test_base_rate_scales_rate(self, server):
        fast = _serial_profile(base_rate=10.0)
        slow = _serial_profile(base_rate=1.0)
        config = server.default_config
        assert work_rate(server, config, fast) == pytest.approx(
            10.0 * work_rate(server, config, slow)
        )


class TestHyperthreading:
    def test_ht_helps_parallel_apps(self, server):
        profile = _serial_profile(parallel_fraction=0.99, ht_gain=0.3)
        off = server.default_config.replace(hyperthreads=1)
        on = server.default_config.replace(hyperthreads=2)
        assert work_rate(server, on, profile) > work_rate(
            server, off, profile
        )

    def test_ht_gain_zero_is_noop(self, server):
        profile = _serial_profile(parallel_fraction=0.99, ht_gain=0.0)
        off = server.default_config.replace(hyperthreads=1)
        on = server.default_config.replace(hyperthreads=2)
        assert work_rate(server, on, profile) == pytest.approx(
            work_rate(server, off, profile)
        )


class TestBandwidth:
    def test_compute_bound_unaffected(self, server):
        raw = 100.0
        assert (
            bandwidth_limited_capacity(
                server, server.default_config, _serial_profile(), raw
            )
            == raw
        )

    def test_memory_bound_capped(self, server):
        profile = _serial_profile(memory_boundness=1.0)
        config = server.default_config.replace(mem_ctrls=1)
        raw = 100.0  # far above one controller's supply of 9
        limited = bandwidth_limited_capacity(server, config, profile, raw)
        assert limited < raw

    def test_extra_controller_helps_memory_bound(self, server):
        profile = _serial_profile(
            parallel_fraction=0.95, memory_boundness=0.9
        )
        one = server.default_config.replace(mem_ctrls=1)
        two = server.default_config.replace(mem_ctrls=2)
        assert work_rate(server, two, profile) > work_rate(
            server, one, profile
        )

    def test_thrashing_makes_oversubscription_hurt(self, server):
        # With thrash > 0, piling cores onto a saturated memory system
        # reduces absolute throughput (the ferret-on-Server behaviour).
        profile = _serial_profile(
            parallel_fraction=0.99, memory_boundness=0.95
        )
        lean = server.default_config.replace(cores=6, hyperthreads=1)
        oversubscribed = server.default_config.replace(
            cores=16, hyperthreads=2
        )
        assert work_rate(server, lean, profile) > work_rate(
            server, oversubscribed, profile
        )


class TestHeterogeneous:
    def test_serial_fraction_runs_on_fastest_core(self):
        mobile = build_mobile()
        profile = _serial_profile()
        big = mobile.space.maximal  # 4 big cores at top clock
        assert fastest_core_speed(mobile, big, profile) > 0
        # A serial app on the big cluster matches its single fastest core.
        one_big = big.replace(big_cores=1)
        assert work_rate(mobile, big, profile) == pytest.approx(
            work_rate(mobile, one_big, profile)
        )

    def test_aggregate_capacity_sums_active_clusters(self):
        mobile = build_mobile()
        profile = _serial_profile(parallel_fraction=0.9)
        little = mobile.space.minimal
        assert aggregate_capacity(mobile, little, profile) > 0

    def test_speedup_over_minimal_is_one_at_minimal(self):
        mobile = build_mobile()
        assert speedup_over_minimal(
            mobile, mobile.space.minimal, GENERIC_PROFILE
        ) == pytest.approx(1.0)
