"""Tests for the battery model."""

import pytest

from repro.hw.battery import Battery, goal_for_deadline


class TestBattery:
    def test_usable_energy_derated(self):
        battery = Battery(
            capacity_j=1000.0,
            discharge_efficiency=0.9,
            cutoff_fraction=0.1,
        )
        assert battery.usable_j == pytest.approx(1000.0 * 0.9 * 0.9)

    def test_drain_and_state_of_charge(self):
        battery = Battery(
            capacity_j=1000.0, discharge_efficiency=1.0, cutoff_fraction=0.0
        )
        assert battery.drain(250.0)
        assert battery.state_of_charge == pytest.approx(0.75)
        assert battery.remaining_j == pytest.approx(750.0)

    def test_death(self):
        battery = Battery(
            capacity_j=100.0, discharge_efficiency=1.0, cutoff_fraction=0.0
        )
        assert not battery.drain(150.0)
        assert battery.dead
        assert battery.remaining_j == 0.0
        assert battery.state_of_charge == 0.0

    def test_gauge_quantized(self):
        battery = Battery(
            capacity_j=1000.0,
            discharge_efficiency=1.0,
            cutoff_fraction=0.0,
            gauge_resolution=0.05,
        )
        battery.drain(333.0)  # true SoC 0.667
        assert battery.gauge == pytest.approx(0.65)

    def test_gauge_capped_at_one(self):
        battery = Battery(capacity_j=100.0)
        assert battery.gauge == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_j=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_j=1.0, discharge_efficiency=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_j=1.0, cutoff_fraction=1.0)
        with pytest.raises(ValueError):
            Battery(capacity_j=1.0).drain(-1.0)


class TestGoalForDeadline:
    def test_budget_is_remaining_energy(self):
        battery = Battery(
            capacity_j=1000.0, discharge_efficiency=1.0, cutoff_fraction=0.0
        )
        battery.drain(400.0)
        goal = goal_for_deadline(
            battery, work_rate_per_s=30.0, seconds_to_charger=10.0
        )
        assert goal.budget_j == pytest.approx(600.0)
        assert goal.total_work == pytest.approx(300.0)

    def test_reserve_withheld(self):
        battery = Battery(
            capacity_j=1000.0, discharge_efficiency=1.0, cutoff_fraction=0.0
        )
        goal = goal_for_deadline(
            battery, 30.0, 10.0, reserve_fraction=0.2
        )
        assert goal.budget_j == pytest.approx(800.0)

    def test_dead_battery_rejected(self):
        battery = Battery(
            capacity_j=100.0, discharge_efficiency=1.0, cutoff_fraction=0.0
        )
        battery.drain(100.0)
        with pytest.raises(ValueError):
            goal_for_deadline(battery, 30.0, 10.0)

    def test_validation(self):
        battery = Battery(capacity_j=100.0)
        with pytest.raises(ValueError):
            goal_for_deadline(battery, 0.0, 10.0)
        with pytest.raises(ValueError):
            goal_for_deadline(battery, 30.0, 10.0, reserve_fraction=1.0)

    def test_end_to_end_battery_lasts_to_charger(self, apps):
        # The motivating scenario: given the charge and deadline, the
        # runtime's configuration stream keeps the battery alive.
        from repro.core.jouleguard import build_runtime
        from repro.core.types import Measurement
        from repro.hw import get_machine
        from repro.hw.simulator import PlatformSimulator
        from repro.runtime.harness import prior_shapes
        from repro.runtime.oracle import default_energy_per_work

        machine = get_machine("mobile")
        app = apps["x264"]
        epw = default_energy_per_work(machine, app)
        n = 500
        battery = Battery(
            capacity_j=epw * n / 2.0,  # half what the default would need
            discharge_efficiency=1.0,
            cutoff_fraction=0.0,
        )
        goal = goal_for_deadline(
            battery, work_rate_per_s=n / 100.0, seconds_to_charger=100.0
        )
        rate_shape, power_shape = prior_shapes(machine)
        runtime = build_runtime(
            rate_shape, power_shape, app.table, goal, seed=1
        )
        simulator = PlatformSimulator(machine, app.resource_profile, seed=2)
        completed = 0
        for _ in range(n):
            decision = runtime.current_decision
            result = simulator.run_iteration(
                machine.space[decision.system_index],
                work=1.0,
                app_speedup=decision.app_config.speedup,
            )
            if not battery.drain(result.energy_j):
                break
            completed += 1
            runtime.step(
                Measurement(
                    work=1.0,
                    energy_j=result.measured_power_w * result.time_s,
                    rate=result.measured_rate,
                    power_w=result.measured_power_w,
                )
            )
        assert completed == n  # made it to the charger
