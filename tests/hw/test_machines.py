"""Tests of the three platform models against the paper's Sec. 4.2–4.3."""

import pytest

from repro.hw import (
    GENERIC_PROFILE,
    PlatformSimulator,
    get_machine,
    powerup_over_minimal,
    speedup_over_minimal,
    system_power,
    work_rate,
)
from repro.hw.machines import build_mobile, build_server, build_tablet


class TestFactories:
    def test_get_machine_by_name(self):
        for name in ("mobile", "tablet", "server"):
            assert get_machine(name).name == name

    def test_get_machine_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown machine"):
            get_machine("laptop")

    def test_fresh_instances(self):
        assert build_server() is not build_server()


class TestSpaceShapes:
    """Configuration-space sizes follow Table 3's knob structure."""

    def test_server_space_is_1024(self):
        # 16 core counts x 16 clocks x 2 hyperthreading x 2 controllers
        assert len(build_server().space) == 1024

    def test_tablet_space_is_32(self):
        # 2 cores x 8 clocks x 2 hyperthreading
        assert len(build_tablet().space) == 32

    def test_mobile_space_is_cluster_exclusive(self):
        # 4 big-core counts x 19 speeds + 4 LITTLE counts x 13 speeds
        assert len(build_mobile().space) == 4 * 19 + 4 * 13

    def test_mobile_configs_use_one_cluster(self):
        machine = build_mobile()
        for config in machine.space:
            big_active = config["big_cores"] > 0
            little_active = config["little_cores"] > 0
            assert big_active != little_active


class TestElectricalRanges:
    """Power figures approximate the paper's reported ranges (Sec. 4.2)."""

    def test_mobile_default_power_near_6w(self):
        machine = build_mobile()
        power = system_power(
            machine, machine.default_config, GENERIC_PROFILE
        )
        assert 4.0 < power < 7.5

    def test_tablet_default_power_near_9w(self):
        machine = build_tablet()
        power = system_power(
            machine, machine.default_config, GENERIC_PROFILE
        )
        assert 7.0 < power < 12.0

    def test_server_default_power_near_280w(self):
        machine = build_server()
        power = system_power(
            machine, machine.default_config, GENERIC_PROFILE
        )
        assert 250.0 < power < 320.0

    def test_speedup_and_powerup_exceed_one(self):
        for build in (build_mobile, build_tablet, build_server):
            machine = build()
            assert (
                speedup_over_minimal(
                    machine, machine.space.maximal, GENERIC_PROFILE
                )
                > 1.0
            )
            assert (
                powerup_over_minimal(
                    machine, machine.space.maximal, GENERIC_PROFILE
                )
                > 1.0
            )


class TestCharacterization:
    """The Sec. 4.3 landscape features the learner must cope with."""

    def test_mobile_peak_efficiency_on_little_cluster(self):
        machine = build_mobile()
        simulator = PlatformSimulator(machine, GENERIC_PROFILE)
        best = max(machine.space, key=simulator.energy_efficiency)
        assert best["little_cores"] > 0
        assert best["big_cores"] == 0

    def test_mobile_big_cluster_least_efficient_at_top_clock(self):
        machine = build_mobile()
        simulator = PlatformSimulator(machine, GENERIC_PROFILE)
        default_eff = simulator.energy_efficiency(machine.default_config)
        best_eff = max(
            simulator.energy_efficiency(c) for c in machine.space
        )
        assert best_eff > 1.5 * default_eff

    def test_tablet_peak_efficiency_at_default(self):
        machine = build_tablet()
        simulator = PlatformSimulator(machine, GENERIC_PROFILE)
        best = max(machine.space, key=simulator.energy_efficiency)
        assert best == machine.default_config

    def test_tablet_firmware_plateau_produces_equal_speeds(self):
        machine = build_tablet()
        cluster = machine.clusters[0]
        speeds = {
            machine.cluster_speed(
                cluster,
                machine.default_config.replace(clock_ghz=nominal),
            )
            for nominal in machine.space.knob("clock_ghz").values
        }
        # 8 nominal settings collapse onto 4 distinct effective speeds.
        assert len(speeds) == 4

    def test_server_default_is_not_most_efficient(self):
        machine = build_server()
        simulator = PlatformSimulator(machine, GENERIC_PROFILE)
        best = max(machine.space, key=simulator.energy_efficiency)
        assert best != machine.default_config

    def test_server_efficiency_peak_is_app_specific(self, apps):
        machine = build_server()
        peaks = set()
        for name in ("x264", "ferret", "swaptions"):
            simulator = PlatformSimulator(
                machine, apps[name].resource_profile
            )
            peaks.add(
                max(machine.space, key=simulator.energy_efficiency)
            )
        assert len(peaks) > 1

    def test_ferret_best_config_faster_than_default_on_server(self, apps):
        # Sec. 5.5: "the system can find a more energy efficient
        # configuration that is faster than the default" for ferret.
        machine = build_server()
        profile = apps["ferret"].resource_profile
        simulator = PlatformSimulator(machine, profile)
        best = max(machine.space, key=simulator.energy_efficiency)
        assert simulator.ideal_rate(best) > simulator.ideal_rate(
            machine.default_config
        )


class TestMachineHelpers:
    def test_active_cores_counts_all_clusters(self):
        machine = build_mobile()
        config = machine.space.minimal
        assert machine.active_cores(config) >= 1

    def test_hyperthreading_flag(self):
        machine = build_server()
        on = machine.default_config
        off = on.replace(hyperthreads=1)
        assert machine.hyperthreading_on(on)
        assert not machine.hyperthreading_on(off)

    def test_memory_controllers_default_one_without_knob(self):
        machine = build_mobile()
        assert machine.memory_controllers(machine.space.minimal) == 1

    def test_work_rate_positive_everywhere(self):
        for build in (build_mobile, build_tablet, build_server):
            machine = build()
            for config in list(machine.space)[:: max(1, len(machine.space) // 40)]:
                assert work_rate(machine, config, GENERIC_PROFILE) > 0
