"""Unit tests for the measurement pipeline."""

import numpy as np
import pytest

from repro.hw.sensors import (
    ExternalPowerMeter,
    HoldoverPowerSensor,
    OnChipPowerSensor,
    SensorLostError,
    SensorReadError,
)


class TestOnChipPowerSensor:
    def test_offset_added(self):
        sensor = OnChipPowerSensor(
            fixed_offset_w=85.0, quantum_w=0.0, noise_rel=0.0
        )
        assert sensor.read(100.0) == pytest.approx(185.0)

    def test_quantization(self):
        sensor = OnChipPowerSensor(quantum_w=0.5, noise_rel=0.0)
        assert sensor.read(1.23) == pytest.approx(1.0)
        assert sensor.read(1.3) == pytest.approx(1.5)

    def test_noise_is_zero_mean(self):
        sensor = OnChipPowerSensor(
            quantum_w=0.0,
            noise_rel=0.05,
            rng=np.random.default_rng(1),
        )
        readings = [sensor.read(100.0) for _ in range(2000)]
        assert np.mean(readings) == pytest.approx(100.0, rel=0.01)

    def test_reading_never_negative(self):
        sensor = OnChipPowerSensor(
            quantum_w=0.0, noise_rel=2.0, rng=np.random.default_rng(2)
        )
        assert all(sensor.read(0.01) >= 0.0 for _ in range(100))

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            OnChipPowerSensor().read(-1.0)

    def test_deterministic_given_seed(self):
        a = OnChipPowerSensor(rng=np.random.default_rng(3))
        b = OnChipPowerSensor(rng=np.random.default_rng(3))
        assert [a.read(5.0) for _ in range(10)] == [
            b.read(5.0) for _ in range(10)
        ]

    def test_default_sensors_draw_distinct_noise(self):
        # Regression: default-constructed sensors used to share
        # default_rng(0) and produce byte-identical noise streams.
        a = OnChipPowerSensor(quantum_w=0.0, noise_rel=0.05)
        b = OnChipPowerSensor(quantum_w=0.0, noise_rel=0.05)
        assert [a.read(100.0) for _ in range(10)] != [
            b.read(100.0) for _ in range(10)
        ]


class FlakySensor:
    """Scripted inner sensor: reads a schedule of values/failures."""

    def __init__(self, schedule):
        self.schedule = list(schedule)

    def read(self, true_package_power_w):
        item = self.schedule.pop(0)
        if item is None:
            raise SensorReadError("scripted dropout")
        return item


class TestHoldoverPowerSensor:
    def test_good_readings_pass_through_unchanged(self):
        sensor = HoldoverPowerSensor(
            inner=FlakySensor([10.0, 20.0, 30.0])
        )
        assert [sensor.read(0.0) for _ in range(3)] == [
            10.0, 20.0, 30.0,
        ]
        assert sensor.holds == 0

    def test_failure_answered_with_ewma_holdover(self):
        sensor = HoldoverPowerSensor(
            inner=FlakySensor([10.0, 20.0, None]), alpha=0.5
        )
        sensor.read(0.0)
        sensor.read(0.0)
        held = sensor.read(0.0)
        assert held == pytest.approx(15.0)  # ewma of 10, 20 at α=0.5
        assert sensor.holds == 1

    def test_consecutive_hold_budget_then_lost(self):
        sensor = HoldoverPowerSensor(
            inner=FlakySensor([10.0, None, None, None]),
            max_consecutive_holds=2,
        )
        sensor.read(0.0)
        sensor.read(0.0)
        sensor.read(0.0)
        with pytest.raises(SensorLostError):
            sensor.read(0.0)

    def test_good_read_resets_consecutive_count(self):
        sensor = HoldoverPowerSensor(
            inner=FlakySensor([10.0, None, 12.0, None, 14.0]),
            max_consecutive_holds=1,
        )
        for _ in range(5):
            sensor.read(0.0)
        assert sensor.holds == 2
        assert sensor.consecutive_holds == 0

    def test_failure_before_any_reading_is_loss(self):
        sensor = HoldoverPowerSensor(inner=FlakySensor([None]))
        with pytest.raises(SensorLostError):
            sensor.read(0.0)

    def test_invalid_hold_budget_rejected(self):
        with pytest.raises(ValueError):
            HoldoverPowerSensor(
                inner=FlakySensor([]), max_consecutive_holds=0
            )


class TestExternalPowerMeter:
    def test_true_energy_integrates_exactly(self):
        meter = ExternalPowerMeter(sample_period_s=1.0)
        meter.accumulate(100.0, 0.3)
        meter.accumulate(50.0, 0.2)
        assert meter.true_energy_j == pytest.approx(40.0)

    def test_reported_energy_lags_until_sample_boundary(self):
        meter = ExternalPowerMeter(sample_period_s=1.0)
        meter.accumulate(100.0, 0.5)
        assert meter.reported_energy_j == 0.0
        meter.accumulate(100.0, 0.6)  # crosses the 1 s boundary
        assert meter.reported_energy_j == pytest.approx(110.0)

    def test_multiple_boundaries_in_one_accumulate(self):
        meter = ExternalPowerMeter(sample_period_s=1.0)
        meter.accumulate(10.0, 3.5)
        assert meter.reported_energy_j == pytest.approx(35.0)

    def test_reported_tracks_true_over_long_run(self):
        meter = ExternalPowerMeter(sample_period_s=1.0)
        rng = np.random.default_rng(4)
        for _ in range(500):
            meter.accumulate(
                float(rng.uniform(10, 200)), float(rng.uniform(0.01, 0.1))
            )
        assert meter.reported_energy_j <= meter.true_energy_j
        assert meter.reported_energy_j == pytest.approx(
            meter.true_energy_j, rel=0.05
        )

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            ExternalPowerMeter(sample_period_s=0.0)

    def test_negative_inputs_rejected(self):
        meter = ExternalPowerMeter()
        with pytest.raises(ValueError):
            meter.accumulate(-1.0, 1.0)
        with pytest.raises(ValueError):
            meter.accumulate(1.0, -1.0)
