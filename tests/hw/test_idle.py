"""Tests for racing-vs-pacing idle policies."""

import pytest

from repro.hw import GENERIC_PROFILE
from repro.hw.idle import (
    best_hybrid,
    best_pace,
    compare_policies,
    idle_power,
    race_outcome,
    race_to_idle,
)
from repro.hw.machines import build_mobile, build_server, build_tablet
from repro.hw.speedup_model import work_rate


@pytest.fixture(scope="module")
def tablet():
    return build_tablet()


@pytest.fixture(scope="module")
def mobile():
    return build_mobile()


def loose_period(machine, slack=5.0):
    rate = work_rate(machine, machine.default_config, GENERIC_PROFILE)
    return slack / rate


class TestIdlePower:
    def test_plain_idle_includes_package_and_external(self, tablet):
        assert idle_power(tablet) == pytest.approx(
            tablet.idle_w + tablet.external_w
        )

    def test_deep_sleep_removes_package_draw(self, tablet):
        assert idle_power(tablet, deep_sleep_fraction=1.0) == pytest.approx(
            tablet.external_w
        )

    def test_validation(self, tablet):
        with pytest.raises(ValueError):
            idle_power(tablet, deep_sleep_fraction=1.5)


class TestRaceOutcome:
    def test_misses_deadline_returns_none(self, tablet):
        config = tablet.space.minimal
        rate = work_rate(tablet, config, GENERIC_PROFILE)
        too_tight = (1.0 / rate) * 0.5
        assert (
            race_outcome(tablet, GENERIC_PROFILE, config, 1.0, too_tight)
            is None
        )

    def test_energy_composition(self, tablet):
        config = tablet.default_config
        rate = work_rate(tablet, config, GENERIC_PROFILE)
        period = 2.0 / rate  # 50% utilization
        outcome = race_outcome(tablet, GENERIC_PROFILE, config, 1.0, period)
        assert outcome is not None
        assert outcome.busy_s + outcome.idle_s == pytest.approx(period)
        assert outcome.idle_s > 0

    def test_race_to_idle_uses_default_config(self, tablet):
        outcome = race_to_idle(
            tablet, GENERIC_PROFILE, 1.0, loose_period(tablet)
        )
        assert outcome.config == tablet.default_config

    def test_validation(self, tablet):
        with pytest.raises(ValueError):
            race_outcome(
                tablet, GENERIC_PROFILE, tablet.default_config, 0.0, 1.0
            )


class TestBestPolicies:
    def test_infeasible_deadline_returns_none(self, tablet):
        rate = work_rate(tablet, tablet.default_config, GENERIC_PROFILE)
        tight = 0.1 / rate
        assert race_to_idle(tablet, GENERIC_PROFILE, 1.0, tight) is None
        assert best_pace(tablet, GENERIC_PROFILE, 1.0, tight) is None
        assert best_hybrid(tablet, GENERIC_PROFILE, 1.0, tight) is None

    def test_pace_picks_low_power_config(self, mobile):
        outcome = best_pace(
            mobile, GENERIC_PROFILE, 1.0, loose_period(mobile, 20.0)
        )
        assert outcome is not None
        # With a loose deadline on mobile, pacing lands on the LITTLE
        # cluster (low-power configs).
        assert outcome.config["big_cores"] == 0

    def test_policies_meet_the_deadline(self, tablet):
        period = loose_period(tablet, 3.0)
        comparison = compare_policies(tablet, GENERIC_PROFILE, 1.0, period)
        for outcome in (comparison.race, comparison.pace, comparison.hybrid):
            assert outcome is not None
            assert outcome.busy_s <= period


class TestHybridOptimality:
    @pytest.mark.parametrize("slack", [1.5, 4.0, 12.0])
    def test_hybrid_dominates_both_heuristics(self, tablet, slack):
        comparison = compare_policies(
            tablet, GENERIC_PROFILE, 1.0, loose_period(tablet, slack)
        )
        assert comparison.hybrid.energy_j <= comparison.race.energy_j + 1e-9
        assert comparison.hybrid.energy_j <= comparison.pace.energy_j + 1e-9
        assert comparison.heuristic_gap >= 1.0

    def test_winner_is_platform_dependent(self, mobile, tablet):
        # The HotPower'13 observation reproduced: pacing wins where slow
        # configurations are efficient relative to idling (Mobile's
        # LITTLE cluster), racing wins where idle power dominates
        # (Tablet).
        mobile_cmp = compare_policies(
            mobile, GENERIC_PROFILE, 1.0, loose_period(mobile, 5.0)
        )
        tablet_cmp = compare_policies(
            tablet, GENERIC_PROFILE, 1.0, loose_period(tablet, 5.0)
        )
        assert mobile_cmp.winner == "pace"
        assert tablet_cmp.winner == "race"

    def test_server_pacing_beats_racing_the_turbo(self):
        server = build_server()
        comparison = compare_policies(
            server, GENERIC_PROFILE, 1.0, loose_period(server, 5.0)
        )
        # Racing the turbo-clocked default wastes cubic power.
        assert comparison.winner == "pace"


class TestRaceVsPace:
    def test_deep_sleep_favours_racing(self, tablet):
        period = loose_period(tablet, 4.0)
        plain = compare_policies(
            tablet, GENERIC_PROFILE, 1.0, period, deep_sleep_fraction=0.0
        )
        sleepy = compare_policies(
            tablet, GENERIC_PROFILE, 1.0, period, deep_sleep_fraction=1.0
        )
        assert sleepy.race.energy_j <= plain.race.energy_j
        if plain.winner == "race":
            assert sleepy.winner == "race"

    def test_winner_infeasible_when_nothing_meets(self, tablet):
        comparison = compare_policies(tablet, GENERIC_PROFILE, 1.0, 1e-9)
        assert comparison.winner == "infeasible"
