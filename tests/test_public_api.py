"""Public-API stability: the names the README and docs promise exist.

Downstream users import from the package roots; this test pins the
documented surface so refactors cannot silently drop it.
"""

import importlib

import pytest

EXPECTED = {
    "repro": [
        "build_application",
        "build_all",
        "get_machine",
        "all_machines",
        "run_jouleguard",
        "run_system_only",
        "run_application_only",
        "run_uncoordinated",
        "oracle_accuracy",
        "table2",
        "steady",
        "three_scene_video",
        "EnergyGoal",
        "JouleGuardRuntime",
        "Measurement",
        "SystemEnergyOptimizer",
        "PAPER_FACTORS",
        "__version__",
    ],
    "repro.core": [
        "SystemEnergyOptimizer",
        "UcbSystemOptimizer",
        "SpeedupController",
        "AdaptivePole",
        "Vdbe",
        "Ewma",
        "ScalarKalmanFilter",
        "JouleGuardRuntime",
        "MultiAppCoordinator",
        "BudgetAccountant",
        "EnergyGoal",
        "HardwareApproxTable",
        "PowerReductionController",
        "nominal_loop",
        "perturbed_loop",
        "stability_bound",
        "pole_for_error",
        "split_budget",
    ],
    "repro.hw": [
        "Machine",
        "Knob",
        "SystemConfig",
        "ConfigSpace",
        "PlatformSimulator",
        "NoiseModel",
        "OnChipPowerSensor",
        "ExternalPowerMeter",
        "work_rate",
        "system_power",
        "compare_policies",
        "race_to_idle",
        "best_pace",
        "best_hybrid",
        "get_machine",
    ],
    "repro.apps": [
        "ApproximateApplication",
        "ConfigTable",
        "AppConfig",
        "PerforatableLoop",
        "perforate",
        "calibrated_knob",
        "profile_table",
        "profile_application",
        "build_application",
        "applications_for_platform",
        "PAPER_TABLE2",
    ],
    "repro.runtime": [
        "run_jouleguard",
        "run_green",
        "run_with_callbacks",
        "CallbackSystem",
        "ExperimentResult",
        "RunTrace",
        "replicate",
        "relative_error",
        "effective_accuracy",
        "write_trace_csv",
        "write_sweep_csv",
        "sparkline",
        "chart",
        "prior_shapes",
    ],
    "repro.kernels": [
        "SearchEngine",
        "SyntheticCorpus",
        "StreamCluster",
        "Annealer",
        "price_swaption",
        "detect_targets",
        "cfar_detect",
        "beamform",
        "encode_sequence",
        "AnnealedParticleFilter",
        "SimilaritySearch",
    ],
    "repro.workloads": [
        "PhasedWorkload",
        "WorkGenerator",
        "steady",
        "three_scene_video",
    ],
    "repro.service": [
        "PROTOCOL_VERSION",
        "STATE_VERSION",
        "ServiceClient",
        "ServiceError",
        "ServiceServer",
        "ServerThread",
        "SessionManager",
        "SessionError",
        "SnapshotStore",
        "apply_state",
        "capture_state",
        "dumps_state",
        "loads_state",
        "drive_synthetic_session",
        "run_load",
        "serve",
    ],
}


@pytest.mark.parametrize("module_name", sorted(EXPECTED))
def test_documented_names_exist(module_name):
    module = importlib.import_module(module_name)
    missing = [
        name for name in EXPECTED[module_name] if not hasattr(module, name)
    ]
    assert not missing, f"{module_name} lost public names: {missing}"


@pytest.mark.parametrize("module_name", sorted(EXPECTED))
def test_all_lists_are_importable(module_name):
    module = importlib.import_module(module_name)
    if not hasattr(module, "__all__"):
        return
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def test_version_matches_pyproject():
    import pathlib

    import repro

    pyproject = (
        pathlib.Path(repro.__file__).parent.parent.parent / "pyproject.toml"
    ).read_text()
    assert f'version = "{repro.__version__}"' in pyproject
