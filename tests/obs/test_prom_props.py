"""Property-based tests for the exposition format (satellite: escaping).

The renderer promises a deterministic, parseable exposition whose label
values survive a round trip through escaping — including backslashes,
quotes, and newlines in any mix.  Hypothesis drives those promises
harder than example-based tests can.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.prom import (
    escape_label_value,
    parse_text,
    render_text,
    unescape_label_value,
)
from repro.obs.registry import MetricsRegistry

label_values = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_categories=("Cs",)
    ),
    max_size=40,
)

metric_values = st.floats(
    allow_nan=False, allow_infinity=False, width=32
)


@given(value=label_values)
def test_escape_round_trips_any_text(value):
    assert unescape_label_value(escape_label_value(value)) == value


@given(value=label_values)
def test_escaped_value_is_single_line(value):
    assert "\n" not in escape_label_value(value)


@settings(max_examples=60, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(label_values, metric_values),
        min_size=1,
        max_size=6,
        unique_by=lambda pair: pair[0],
    )
)
def test_rendered_labels_parse_back_exactly(pairs):
    registry = MetricsRegistry()
    gauge = registry.gauge("jg_prop", "prop help", ("session",))
    for value, number in pairs:
        gauge.labels(value).set(number)
    families, samples = parse_text(render_text(registry))
    assert families["jg_prop"][0] == "gauge"
    parsed = {dict(s.labels)["session"]: s.value for s in samples}
    # Distinct raw values may collide after str() normalization only
    # when equal already (unique_by guards that); every stored series
    # must come back with its exact label text and value.
    assert parsed == {
        str(value): number for value, number in pairs
    }


@settings(max_examples=30, deadline=None)
@given(
    names=st.lists(
        st.from_regex(r"jg_[a-z]{1,8}_total", fullmatch=True),
        min_size=1,
        max_size=5,
        unique=True,
    )
)
def test_families_render_in_stable_sorted_order(names):
    registry = MetricsRegistry()
    for name in names:
        registry.counter(name, "h").inc()
    text = render_text(registry)
    type_lines = [
        line.split()
        for line in text.split("\n")
        if line.startswith("# TYPE ")
    ]
    rendered_names = [parts[2] for parts in type_lines]
    rendered = [parts[3] for parts in type_lines]
    assert rendered_names == sorted(names)
    assert rendered == ["counter"] * len(names)
    assert render_text(registry) == text
