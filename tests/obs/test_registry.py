"""Tests for the zero-dependency metrics registry."""

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("jg_test_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.samples()[0].value == pytest.approx(3.5)

    def test_rejects_negative_increments(self):
        counter = Counter("jg_test_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_labelled_children_are_independent(self):
        counter = Counter("jg_req_total", "help", ("type",))
        counter.labels("step").inc(3)
        counter.labels("hello").inc(1)
        values = {
            dict(s.labels)["type"]: s.value for s in counter.samples()
        }
        assert values == {"step": 3.0, "hello": 1.0}

    def test_unlabelled_family_rejects_labels(self):
        counter = Counter("jg_test_total", "help")
        with pytest.raises(ValueError):
            counter.labels("nope")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("jg_level", "help")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.samples()[0].value == pytest.approx(7.0)

    def test_remove_drops_a_series(self):
        gauge = Gauge("jg_session_pole", "help", ("session",))
        gauge.labels("s1").set(0.5)
        gauge.labels("s2").set(0.7)
        gauge.remove("s1")
        labels = [dict(s.labels)["session"] for s in gauge.samples()]
        assert labels == ["s2"]

    def test_keyword_labels(self):
        gauge = Gauge("jg_g", "help", ("a", "b"))
        gauge.labels(b="2", a="1").set(9.0)
        assert dict(gauge.samples()[0].labels) == {"a": "1", "b": "2"}


class TestHistogram:
    def test_cumulative_buckets_and_sum(self):
        histogram = Histogram(
            "jg_seconds", "help", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        samples = {
            (s.name, dict(s.labels).get("le")): s.value
            for s in histogram.samples()
        }
        assert samples[("jg_seconds_bucket", "0.1")] == 1
        assert samples[("jg_seconds_bucket", "1")] == 2
        assert samples[("jg_seconds_bucket", "10")] == 3
        assert samples[("jg_seconds_bucket", "+Inf")] == 4
        assert samples[("jg_seconds_count", None)] == 4
        assert samples[("jg_seconds_sum", None)] == pytest.approx(55.55)


class TestRegistry:
    def test_rejects_duplicate_names(self):
        registry = MetricsRegistry()
        registry.counter("jg_x_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("jg_x_total", "help")

    def test_collect_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("jg_b_total", "b")
        registry.gauge("jg_a", "a")
        names = [metric.name for metric in registry.collect()]
        assert names == sorted(names)

    def test_get_finds_registered_family(self):
        registry = MetricsRegistry()
        counter = registry.counter("jg_x_total", "help")
        assert registry.get("jg_x_total") is counter
        assert registry.get("missing") is None

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("9starts_with_digit", "help")
        with pytest.raises(ValueError):
            Counter("jg_ok_total", "help", ("__reserved",))
