"""Tests for repro.obs (metrics, exposition, events, dashboard)."""
