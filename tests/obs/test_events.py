"""Tests for the bounded structured event log."""

import pytest

from repro.obs.events import Event, EventLog


class TestEventLog:
    def test_sequence_numbers_start_at_one(self):
        log = EventLog()
        first = log.append("session_opened", session="s1")
        second = log.append("session_closed", session="s1")
        assert (first.seq, second.seq) == (1, 2)
        assert log.next_seq == 3

    def test_as_dict_merges_fields(self):
        event = Event(seq=4, kind="tier_transition", fields={"step": 9})
        assert event.as_dict() == {
            "seq": 4,
            "kind": "tier_transition",
            "step": 9,
        }

    def test_since_is_strictly_greater(self):
        log = EventLog()
        for index in range(5):
            log.append("e", index=index)
        newer = log.since(3)
        assert [event.seq for event in newer] == [4, 5]
        assert log.since(0, limit=2)[-1].seq == 2

    def test_ring_drops_oldest(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.append("e", index=index)
        assert len(log) == 3
        assert [event.seq for event in log.since(0)] == [3, 4, 5]
        # Sequence numbers keep counting past the wrap.
        assert log.next_seq == 6

    def test_tail_returns_newest_oldest_first(self):
        log = EventLog()
        for index in range(4):
            log.append("e", index=index)
        assert [event.seq for event in log.tail(2)] == [3, 4]
        assert log.tail(0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)
        log = EventLog()
        with pytest.raises(ValueError):
            log.append("")
        with pytest.raises(ValueError):
            log.since(-1)
        with pytest.raises(ValueError):
            log.tail(-1)
