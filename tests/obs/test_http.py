"""Tests for the asyncio /metrics HTTP endpoint."""

import asyncio

import pytest

from repro.obs.http import MetricsHTTPServer
from repro.obs.prom import CONTENT_TYPE, parse_text
from repro.obs.registry import MetricsRegistry


async def _request(host, port, raw):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(raw)
    await writer.drain()
    response = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return response.decode("utf-8")


def _get(host, port, path, method="GET"):
    raw = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n\r\n"
    ).encode("latin-1")
    return _request(host, port, raw)


def _split(response):
    head, _, body = response.partition("\r\n\r\n")
    status = int(head.split(" ", 2)[1])
    headers = {}
    for line in head.split("\r\n")[1:]:
        name, _, value = line.partition(": ")
        headers[name.lower()] = value
    return status, headers, body


async def _with_server(check):
    registry = MetricsRegistry()
    registry.gauge("jg_sessions_open", "Live sessions.").set(2)
    registry.counter("jg_steps_total", "Steps.").inc(5)
    server = MetricsHTTPServer(registry)
    await server.start()
    try:
        host, port = server.address
        await check(host, port)
    finally:
        await server.aclose()


def test_metrics_scrape_round_trips():
    async def check(host, port):
        status, headers, body = _split(
            await _get(host, port, "/metrics")
        )
        assert status == 200
        assert headers["content-type"] == CONTENT_TYPE
        assert headers["connection"] == "close"
        families, samples = parse_text(body)
        assert families["jg_sessions_open"][0] == "gauge"
        values = {s.name: s.value for s in samples}
        assert values["jg_sessions_open"] == 2.0
        assert values["jg_steps_total"] == 5.0

    asyncio.run(_with_server(check))


def test_healthz_and_unknown_paths():
    async def check(host, port):
        status, _, body = _split(await _get(host, port, "/healthz"))
        assert (status, body) == (200, "ok\n")
        status, _, _ = _split(await _get(host, port, "/nope"))
        assert status == 404
        # Query strings are ignored for routing.
        status, _, _ = _split(
            await _get(host, port, "/metrics?format=text")
        )
        assert status == 200

    asyncio.run(_with_server(check))


def test_non_get_is_rejected():
    async def check(host, port):
        status, _, _ = _split(
            await _get(host, port, "/metrics", method="POST")
        )
        assert status == 405

    asyncio.run(_with_server(check))


def test_malformed_request_line():
    async def check(host, port):
        response = await _request(host, port, b"garbage\r\n\r\n")
        status, _, _ = _split(response)
        assert status == 400

    asyncio.run(_with_server(check))


def test_address_requires_running_server():
    server = MetricsHTTPServer(MetricsRegistry())
    with pytest.raises(RuntimeError):
        server.address
