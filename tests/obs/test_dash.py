"""Tests for the ascii dashboard (pure state + live daemon polling)."""

import io

import pytest

from repro.obs.dash import (
    DashboardState,
    poll_once,
    render_dashboard,
    run_dash,
)
from repro.service.client import ServiceClient, drive_synthetic_session
from repro.service.server import ServerThread
from repro.service.sessions import SessionManager


def _sample(name, value, **labels):
    return {"name": name, "labels": labels, "value": value}


def _session_samples(session, pole, burn, tier):
    return [
        _sample("jg_session_pole", pole, session=session),
        _sample("jg_session_epsilon", 0.1, session=session),
        _sample(
            "jg_session_budget_burn_ratio", burn, session=session
        ),
        _sample("jg_session_tier", tier, session=session),
    ]


class TestDashboardState:
    def test_ingest_splits_totals_from_sessions(self):
        state = DashboardState()
        state.ingest_samples(
            [_sample("jg_sessions_open", 1)]
            + _session_samples("alpha", pole=0.8, burn=0.4, tier=0)
        )
        assert state.totals["jg_sessions_open"] == 1.0
        assert state.sessions["alpha"]["jg_session_pole"] == 0.8
        assert list(state.burn_history["alpha"]) == [0.4]
        assert state.frames == 1

    def test_histories_accumulate_and_are_bounded(self):
        state = DashboardState(history=3)
        for step in range(5):
            state.ingest_samples(
                _session_samples(
                    "alpha", pole=step / 10, burn=0.1, tier=0
                )
            )
        assert len(state.pole_history["alpha"]) == 3
        assert list(state.pole_history["alpha"]) == [0.2, 0.3, 0.4]

    def test_event_cursor_advances(self):
        state = DashboardState()
        state.ingest_events(
            [{"seq": 1, "kind": "session_opened"}], next_cursor=1
        )
        state.ingest_events([], next_cursor=1)
        assert state.cursor == 1
        assert len(state.events) == 1

    def test_rejects_bad_history(self):
        with pytest.raises(ValueError):
            DashboardState(history=0)


class TestRender:
    def test_frame_layout(self):
        state = DashboardState()
        state.ingest_samples(
            [
                _sample("jg_sessions_open", 2),
                _sample("jg_sessions_opened_total", 2),
                _sample("jg_steps_total", 40),
                _sample("jg_energy_spent_joules_total", 12.5),
                _sample("jg_budget_global_joules", 100.0),
                _sample("jg_budget_committed_joules", 25.0),
            ]
            + _session_samples("alpha", pole=0.9, burn=0.4, tier=1)
            + _session_samples("bravo", pole=0.5, burn=0.9, tier=3)
        )
        state.ingest_events(
            [
                {
                    "seq": 3,
                    "kind": "tier_transition",
                    "session": "bravo",
                    "to": "throttle",
                }
            ],
            next_cursor=3,
        )
        frame = render_dashboard(state)
        assert "2 open / 2 opened / 40 steps / 12.5 J" in frame
        assert " 25.0% committed of 100 J" in frame
        assert "tier advise" in frame
        assert "tier throttle" in frame
        assert "tier_transition session=bravo to=throttle" in frame
        # Sessions render sorted by id.
        assert frame.index("alpha") < frame.index("bravo")

    def test_overdraft_is_flagged(self):
        state = DashboardState()
        state.ingest_samples(
            _session_samples("alpha", pole=0.5, burn=1.1, tier=4)
            + [
                _sample(
                    "jg_session_overdraft_joules",
                    2.5,
                    session="alpha",
                )
            ]
        )
        frame = render_dashboard(state)
        assert "!! hard overdraft 2.5 J" in frame
        assert "tier kill" in frame

    def test_empty_daemon_renders(self):
        state = DashboardState()
        state.ingest_samples([])
        assert "(no open sessions)" in render_dashboard(state)


class _FakeClient:
    """Canned metrics/events responses for poll_once."""

    def __init__(self):
        self.requests = []

    def request(self, message):
        self.requests.append(message)
        if message["type"] == "metrics":
            return {"samples": [_sample("jg_sessions_open", 1)]}
        return {
            "events": [{"seq": 1, "kind": "session_opened"}],
            "next": 1,
        }


def test_poll_once_drives_both_verbs():
    state = DashboardState()
    client = _FakeClient()
    poll_once(client, state)
    assert [m["type"] for m in client.requests] == [
        "metrics",
        "events",
    ]
    # Second poll resumes from the advanced cursor.
    poll_once(client, state)
    assert client.requests[-1]["since"] == 1
    assert state.totals["jg_sessions_open"] == 1.0


def test_run_dash_against_live_daemon(tmp_path):
    sock = str(tmp_path / "dash.sock")
    manager = SessionManager(global_budget_j=1e7)
    with ServerThread(manager, unix_path=sock):
        with ServiceClient(unix_path=sock) as client:
            drive_synthetic_session(
                client,
                machine="tablet",
                app="x264",
                factor=1.5,
                steps=10,
                close=False,
            )
        out = io.StringIO()
        state = run_dash(
            unix_path=sock, frames=1, out=out, clear=False
        )
    frame = out.getvalue()
    assert state.frames == 1
    assert "JouleGuard daemon" in frame
    assert "1 open" in frame
    assert "session_opened" in frame


def test_run_dash_validates_interval():
    with pytest.raises(ValueError):
        run_dash(unix_path="/nowhere", interval_s=0.0)
