"""Tests for the Prometheus text exposition renderer and parser."""

import pytest

from repro.obs.prom import (
    CONTENT_TYPE,
    escape_label_value,
    parse_text,
    render_text,
    unescape_label_value,
)
from repro.obs.registry import MetricsRegistry


def small_registry():
    registry = MetricsRegistry()
    registry.gauge("jg_sessions_open", "Live sessions.").set(3)
    requests = registry.counter(
        "jg_requests_total", "Requests seen.", ("type", "ok")
    )
    requests.labels("step", "true").inc(7)
    registry.histogram(
        "jg_request_seconds", "Latency.", buckets=(0.01, 0.1)
    ).observe(0.05)
    return registry


class TestRender:
    def test_help_and_type_lines(self):
        text = render_text(small_registry())
        assert "# HELP jg_sessions_open Live sessions." in text
        assert "# TYPE jg_sessions_open gauge" in text
        assert "# TYPE jg_requests_total counter" in text
        assert "# TYPE jg_request_seconds histogram" in text

    def test_label_values_sorted_and_quoted(self):
        text = render_text(small_registry())
        assert 'jg_requests_total{ok="true",type="step"} 7' in text

    def test_histogram_series(self):
        text = render_text(small_registry())
        assert 'jg_request_seconds_bucket{le="0.01"} 0' in text
        assert 'jg_request_seconds_bucket{le="+Inf"} 1' in text
        assert "jg_request_seconds_count 1" in text

    def test_deterministic(self):
        registry = small_registry()
        assert render_text(registry) == render_text(registry)

    def test_content_type_pins_the_format_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestEscaping:
    def test_round_trip_of_specials(self):
        value = 'a\\b"c\nd'
        assert unescape_label_value(escape_label_value(value)) == value

    def test_escaped_forms(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value("a\\n") == "a\\\\n"


class TestParse:
    def test_round_trip_families_and_samples(self):
        registry = small_registry()
        families, samples = parse_text(render_text(registry))
        assert families["jg_sessions_open"][0] == "gauge"
        assert families["jg_sessions_open"][1] == "Live sessions."
        by_name = {
            (s.name, s.labels): s.value for s in samples
        }
        assert by_name[("jg_sessions_open", ())] == 3.0
        assert (
            by_name[
                (
                    "jg_requests_total",
                    (("ok", "true"), ("type", "step")),
                )
            ]
            == 7.0
        )

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_text("jg_x{oops} 1\n")
