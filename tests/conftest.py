"""Shared fixtures: machines and applications are expensive to enumerate
(the Server space has 1024 configurations), so they are built once per
session.  Tests must not mutate them; anything stateful (simulators,
runtimes) is built per-test from these immutable inputs."""

from __future__ import annotations

import pytest

from repro.apps import build_all
from repro.hw import all_machines


@pytest.fixture(scope="session")
def machines():
    return all_machines()


@pytest.fixture(scope="session")
def mobile(machines):
    return machines["mobile"]


@pytest.fixture(scope="session")
def tablet(machines):
    return machines["tablet"]


@pytest.fixture(scope="session")
def server(machines):
    return machines["server"]


@pytest.fixture(scope="session")
def apps():
    return build_all()
