"""CLI behaviour: exit codes, formats, and the acceptance scenario of
deliberately seeding JG001/JG002 violations into a scratch file."""

import json

import pytest

from repro.lint.cli import main


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "fine.py").write_text("x = 1\n")
    assert main([str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_seeded_violations_exit_nonzero_with_rule_ids(tmp_path, capsys):
    scratch = tmp_path / "scratch.py"
    scratch.write_text(
        "import random\n"
        "value = random.random()\n"
        "pole = 1.0\n"
    )
    assert main([str(scratch)]) == 1
    out = capsys.readouterr().out
    assert "JG001" in out and "JG002" in out


def test_json_format(tmp_path, capsys):
    scratch = tmp_path / "scratch.py"
    scratch.write_text("def f(xs=[]):\n    return xs\n")
    assert main(["--format", "json", str(scratch)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["by_rule"] == {"JG005": 1}


def test_select_restricts_rules(tmp_path, capsys):
    scratch = tmp_path / "scratch.py"
    scratch.write_text("import random\npole = 1.5\n")
    assert main(["--select", "JG002", str(scratch)]) == 1
    out = capsys.readouterr().out
    assert "JG002" in out and "JG001" not in out


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "JG001",
        "JG002",
        "JG003",
        "JG004",
        "JG005",
        "JG006",
        "JG007",
    ):
        assert rule_id in out


def test_unknown_rule_id_is_usage_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "JG999", str(tmp_path)])
    assert excinfo.value.code == 2


def test_missing_path_is_usage_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main([str(tmp_path / "nope.py")])
    assert excinfo.value.code == 2


def test_no_paths_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2
