"""JG008 trigger fixture: blocking calls inside async defs."""

import socket
import time


async def stalls_the_loop():
    time.sleep(0.5)  # finding 1: blocking sleep


async def asks_the_terminal():
    return input()  # finding 2: blocking terminal read


async def dials_without_timeout(address):
    return socket.create_connection(address)  # finding 3: no timeout


async def reads_a_raw_socket(client_sock):
    return client_sock.recv(4096)  # finding 4: blocking socket op
