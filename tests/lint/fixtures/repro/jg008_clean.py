"""JG008 clean fixture: coroutines that never block the loop."""

import asyncio
import socket
import time


async def naps_politely():
    await asyncio.sleep(0.5)


async def dials_with_timeout(address):
    return socket.create_connection(address, timeout=5.0)


async def defines_a_blocking_helper():
    def helper():  # nested sync def: its body is not loop code
        time.sleep(0.5)
        return input()

    return await asyncio.get_running_loop().run_in_executor(None, helper)


def plain_function_may_block():
    time.sleep(0.01)
    return socket.create_connection(("localhost", 1))
