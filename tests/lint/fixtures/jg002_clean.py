"""JG002 clean: stability-range literals inside their ranges."""


def configure(controller):
    controller.step(required=2.0, pole=0.95)


def explore(bandit):
    bandit.reset(epsilon=1.0)


steady_pole = 0.0
