"""JG004 clean: isclose / sign checks, plus one sanctioned zero-guard."""

import math


def at_goal(energy_j, budget_j):
    return math.isclose(energy_j, budget_j) or energy_j <= 0.0


def changed(accuracy):
    return not math.isclose(accuracy, 1.0)


def is_sentinel(rate):
    # The default config is exactly 0 by construction.
    return rate == 0.0  # jglint: disable=JG004
