"""JG003 clean: unit-consistent arithmetic (J = W*s conversions)."""


def total(budget_joules, idle_watts, elapsed_s):
    return budget_joules + idle_watts * elapsed_s


def drain(battery, power_w, elapsed_s):
    battery.level_j -= power_w * elapsed_s
    return battery.level_j


def over(used_j, budget_j):
    return used_j > budget_j
