"""JG005 trigger: mutable default arguments."""


def collect(sample, history=[]):
    history.append(sample)
    return history


def tally(counts={}, labels=set()):
    return counts, labels


def build(rows=list()):
    return rows
