"""JG006 trigger: overbroad exception handling in a runtime/ path."""


def drive(loop):
    try:
        loop.step()
    except:  # noqa: E722
        pass


def harvest(sensor):
    try:
        return sensor.read()
    except Exception:
        return None
