"""JG006 clean: specific exceptions, and re-raise after cleanup."""


def drive(loop):
    try:
        loop.step()
    except StopIteration:
        pass


def harvest(sensor, log):
    try:
        return sensor.read()
    except Exception:
        log.flush()
        raise
