"""JG001 clean: all randomness flows through injected seeded generators."""

import random

import numpy as np


def roll(seed):
    rng = random.Random(seed)
    return rng.random()


def noise(n, rng: np.random.Generator):
    return rng.normal(size=n)


def make_rng(seed):
    return np.random.default_rng(seed)
