"""JG007 fixture: a module whose __all__ the test checks against api.md.

The test copies this file into a synthetic repo tree (``src/repro/``)
whose ``docs/api.md`` documents only ``documented_fn``; the undocumented
``drifted_fn`` must then be reported by JG007.
"""


def documented_fn():
    return 1


def drifted_fn():
    return 2


__all__ = ["documented_fn", "drifted_fn"]
