"""JG009 trigger: service-layer except clauses that leave no trace."""


def serve_one(connection):
    try:
        connection.step()
    except ValueError:
        pass  # swallowed: no re-raise, no counter, no log


def reap(sessions):
    for session in sessions:
        try:
            session.close()
        except (OSError, RuntimeError):
            continue  # swallowed: the failure is simply skipped


def snapshot(store, state):
    try:
        store.put(state)
    except KeyError:
        return None  # swallowed: caller cannot tell failure from empty
