"""JG009 clean: every except clause re-raises or records evidence."""

import logging

logger = logging.getLogger(__name__)


class Daemon:
    def __init__(self):
        self.connection_errors = 0
        self.last_error = None

    def serve_one(self, connection):
        try:
            connection.step()
        except ConnectionError:
            self.connection_errors += 1  # counter bump is a trace

    def snapshot(self, store, state):
        try:
            store.put(state)
        except KeyError as exc:
            raise RuntimeError("snapshot failed") from exc

    def reap(self, session):
        try:
            session.close()
        except OSError as exc:
            self.last_error = exc  # bound exception is kept

    def warm_start(self, store):
        try:
            return store.get("machine", "app")
        except LookupError:
            logger.warning("warm start unavailable")  # logged
            return None
