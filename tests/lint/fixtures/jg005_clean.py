"""JG005 clean: None defaults and immutable sentinels."""


def collect(sample, history=None):
    history = [] if history is None else history
    history.append(sample)
    return history


def tally(counts=None, labels=()):
    return counts or {}, set(labels)
