"""JG003 trigger: arithmetic across unit suffixes."""


def total(budget_joules, idle_watts):
    return budget_joules + idle_watts


def drain(battery, elapsed_s):
    battery.level_j -= elapsed_s
    return battery.level_j


def over(power_w, budget_j):
    return power_w > budget_j
