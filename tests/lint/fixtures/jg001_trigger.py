"""JG001 trigger: module-level / legacy global RNG use."""

import random

import numpy as np
from random import randint


def roll():
    return random.random() + randint(1, 6)


def noise(n):
    return np.random.normal(size=n)


def fresh_rng():
    return np.random.default_rng()
