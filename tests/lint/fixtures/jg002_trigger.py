"""JG002 trigger: stability-range literals out of bounds."""


def configure(controller):
    controller.step(required=2.0, pole=1.5)


def explore(bandit):
    bandit.reset(epsilon=-0.25)


unstable_pole = 1.0
