"""JG004 trigger: float equality on continuous quantities."""


def at_goal(energy_j, budget_j):
    return energy_j == budget_j * 1.0 or energy_j == 0.0


def changed(accuracy):
    return accuracy != 1.0
