"""Per-rule trigger / no-trigger coverage over the fixture snippets."""

import shutil
from pathlib import Path

import pytest

from repro.lint import LintEngine

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id → (triggering fixture, clean fixture)
PAIRS = {
    "JG001": ("jg001_trigger.py", "jg001_clean.py"),
    "JG002": ("jg002_trigger.py", "jg002_clean.py"),
    "JG003": ("jg003_trigger.py", "jg003_clean.py"),
    "JG004": ("jg004_trigger.py", "jg004_clean.py"),
    "JG005": ("jg005_trigger.py", "jg005_clean.py"),
    "JG006": ("runtime/jg006_trigger.py", "runtime/jg006_clean.py"),
    "JG008": ("repro/jg008_trigger.py", "repro/jg008_clean.py"),
    "JG009": ("service/jg009_trigger.py", "service/jg009_clean.py"),
}


def rule_ids(path: Path) -> set:
    engine = LintEngine()
    return {finding.rule_id for finding in engine.run([path])}


@pytest.mark.parametrize("rule_id", sorted(PAIRS))
def test_trigger_fixture_fires(rule_id):
    trigger, _ = PAIRS[rule_id]
    assert rule_id in rule_ids(FIXTURES / trigger)


@pytest.mark.parametrize("rule_id", sorted(PAIRS))
def test_clean_fixture_is_silent(rule_id):
    _, clean = PAIRS[rule_id]
    assert rule_id not in rule_ids(FIXTURES / clean)


def test_jg001_counts_each_site():
    engine = LintEngine(select=["JG001"])
    findings = engine.run([FIXTURES / "jg001_trigger.py"])
    # from-import, random.random(), np.random.normal(), unseeded
    # default_rng() — the seeded randint import is part of the
    # from-import finding.
    assert len(findings) == 4


def test_jg002_reports_offending_value():
    engine = LintEngine(select=["JG002"])
    findings = engine.run([FIXTURES / "jg002_trigger.py"])
    messages = " ".join(finding.message for finding in findings)
    assert "1.5" in messages and "-0.25" in messages and "1.0" in messages
    assert len(findings) == 3


def test_jg003_names_both_units():
    engine = LintEngine(select=["JG003"])
    findings = engine.run([FIXTURES / "jg003_trigger.py"])
    assert len(findings) == 3
    first = findings[0].message
    assert "energy [J]" in first and "power [W]" in first


def test_jg008_counts_each_site():
    engine = LintEngine(select=["JG008"])
    findings = engine.run([FIXTURES / "repro" / "jg008_trigger.py"])
    # time.sleep, input(), un-timed create_connection, sock.recv
    assert len(findings) == 4
    messages = " ".join(finding.message for finding in findings)
    assert "asyncio.sleep" in messages
    assert "timeout" in messages
    assert "sock_recv" in messages


def test_jg008_flags_from_import_sleep(tmp_path):
    target = tmp_path / "repro" / "mod.py"
    target.parent.mkdir()
    target.write_text(
        "from time import sleep\n\n\n"
        "async def napper():\n"
        "    sleep(1)\n"
    )
    engine = LintEngine(select=["JG008"])
    assert len(engine.run([target])) == 1


def test_jg008_only_applies_under_repro(tmp_path):
    outside = tmp_path / "helpers.py"
    outside.write_text(
        (FIXTURES / "repro" / "jg008_trigger.py").read_text()
    )
    assert "JG008" not in rule_ids(outside)


def test_jg006_only_applies_under_runtime(tmp_path):
    outside = tmp_path / "helpers.py"
    outside.write_text(
        (FIXTURES / "runtime" / "jg006_trigger.py").read_text()
    )
    assert "JG006" not in rule_ids(outside)


def test_jg009_counts_each_site():
    engine = LintEngine(select=["JG009"])
    findings = engine.run(
        [FIXTURES / "service" / "jg009_trigger.py"]
    )
    # pass-swallow, continue-swallow, return-None-swallow
    assert len(findings) == 3
    messages = " ".join(finding.message for finding in findings)
    assert "swallows" in messages


def test_jg009_applies_under_faults_too(tmp_path):
    target = tmp_path / "faults" / "mod.py"
    target.parent.mkdir()
    target.write_text(
        (FIXTURES / "service" / "jg009_trigger.py").read_text()
    )
    assert "JG009" in rule_ids(target)


def test_jg009_only_applies_to_service_and_faults(tmp_path):
    outside = tmp_path / "helpers.py"
    outside.write_text(
        (FIXTURES / "service" / "jg009_trigger.py").read_text()
    )
    assert "JG009" not in rule_ids(outside)


def _synthetic_repo(tmp_path: Path, documented: str) -> Path:
    """A minimal repo tree: src/repro/mod.py + docs/api.md."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "api.md").write_text(
        "# API reference\n\n## `repro.mod`\n\n"
        f"- `{documented}()` — function.\n"
    )
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    target = package / "mod.py"
    shutil.copy(FIXTURES / "jg007_all.py", target)
    return target


def test_jg007_reports_undocumented_name(tmp_path):
    target = _synthetic_repo(tmp_path, documented="documented_fn")
    engine = LintEngine(select=["JG007"])
    findings = engine.run([target])
    assert [finding.rule_id for finding in findings] == ["JG007"]
    assert "'drifted_fn'" in findings[0].message
    assert "'documented_fn'" not in findings[0].message


def test_jg007_silent_when_documented(tmp_path):
    target = _synthetic_repo(tmp_path, documented="documented_fn")
    api = tmp_path / "docs" / "api.md"
    api.write_text(
        api.read_text() + "- `drifted_fn()` — function.\n"
    )
    engine = LintEngine(select=["JG007"])
    assert engine.run([target]) == []
