"""The repo must satisfy its own linter (dogfooding gate).

This is the in-tree mirror of the CI job: ``src/repro`` (and the
benchmark/example trees when present) lint clean with every rule
enabled, so a PR introducing an unseeded RNG, an unstable pole literal,
or API drift fails before review.
"""

import pathlib

import pytest

from repro.lint import LintEngine

import repro

PACKAGE_DIR = pathlib.Path(repro.__file__).parent
REPO_ROOT = PACKAGE_DIR.parent.parent


def _lint(path: pathlib.Path):
    return LintEngine().run([path])


def test_package_is_lint_clean():
    findings = _lint(PACKAGE_DIR)
    assert findings == [], "\n".join(
        finding.render() for finding in findings
    )


@pytest.mark.parametrize("tree", ["benchmarks", "examples", "tools"])
def test_aux_trees_are_lint_clean(tree):
    target = REPO_ROOT / tree
    if not target.is_dir():
        pytest.skip(f"{tree}/ not present in this checkout")
    findings = _lint(target)
    assert findings == [], "\n".join(
        finding.render() for finding in findings
    )
