"""Engine behaviour: suppressions, selection, reporters, ordering."""

import json

from repro.lint import (
    Finding,
    LintEngine,
    default_rules,
    render_json,
    render_text,
)


def lint_source(tmp_path, source, name="snippet.py", **engine_kwargs):
    path = tmp_path / name
    path.write_text(source)
    return LintEngine(**engine_kwargs).run([path])


def test_line_suppression_silences_only_that_line(tmp_path):
    findings = lint_source(
        tmp_path,
        "a = 1.0\n"
        "ok = a == 0.0  # jglint: disable=JG004\n"
        "bad = a != 0.0\n",
    )
    assert [finding.line for finding in findings] == [3]
    assert findings[0].rule_id == "JG004"


def test_line_suppression_is_rule_specific(tmp_path):
    findings = lint_source(
        tmp_path,
        "def f(xs=[]):  # jglint: disable=JG001\n    return xs\n",
    )
    assert [finding.rule_id for finding in findings] == ["JG005"]


def test_file_level_suppression(tmp_path):
    findings = lint_source(
        tmp_path,
        "# jglint: disable-file=JG004\n"
        "a = 1.0\n"
        "bad = a == 0.0\n"
        "worse = a != 1.0\n",
    )
    assert findings == []


def test_disable_all(tmp_path):
    findings = lint_source(
        tmp_path,
        "def f(xs=[]):  # jglint: disable=all\n    return xs\n",
    )
    assert findings == []


def test_select_and_ignore(tmp_path):
    source = "def f(xs=[], pole=2.0):\n    return xs\n"
    assert {
        finding.rule_id
        for finding in lint_source(tmp_path, source, select=["JG005"])
    } == {"JG005"}
    assert {
        finding.rule_id
        for finding in lint_source(tmp_path, source, ignore=["JG005"])
    } == {"JG002"}


def test_syntax_error_becomes_jg000_finding(tmp_path):
    findings = lint_source(tmp_path, "def broken(:\n")
    assert [finding.rule_id for finding in findings] == ["JG000"]


def test_findings_sorted_by_location(tmp_path):
    findings = lint_source(
        tmp_path,
        "b = 1.0\n"
        "late = b != 0.5\n"
        "def f(xs=[]):\n    return xs\n",
    )
    assert findings == sorted(findings)
    assert [finding.line for finding in findings] == [2, 3]


def test_render_text_clean_and_dirty(tmp_path):
    clean = render_text([], files_checked=3)
    assert "clean" in clean and "3 files" in clean
    finding = Finding(
        path="x.py", line=4, column=2, rule_id="JG004", message="bad"
    )
    dirty = render_text([finding], files_checked=1)
    assert "x.py:4:2: JG004 bad" in dirty
    assert "1 finding" in dirty and "JG004: 1" in dirty


def test_render_json_round_trips():
    finding = Finding(
        path="x.py", line=4, column=2, rule_id="JG001", message="bad"
    )
    document = json.loads(render_json([finding], files_checked=7))
    assert document["summary"] == {
        "total": 1,
        "files_checked": 7,
        "by_rule": {"JG001": 1},
    }
    assert document["findings"][0]["rule"] == "JG001"
    assert document["findings"][0]["line"] == 4


def test_default_registry_covers_every_rule():
    ids = [rule.rule_id for rule in default_rules()]
    assert ids == [
        "JG001",
        "JG002",
        "JG003",
        "JG004",
        "JG005",
        "JG006",
        "JG007",
        "JG008",
        "JG009",
    ]
