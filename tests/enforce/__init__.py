"""Tests for repro.enforce (the enforcement ladder)."""
