"""Tests for the enforcement ladder state machine and its policy."""

import math

import pytest

from repro.core.budget import BudgetAccountant, EnergyGoal
from repro.core.contracts import ContractError
from repro.enforce.ladder import (
    DEFAULT_LADDER,
    EnforcementLadder,
    KilledSessionError,
    LadderPolicy,
    OverdraftSignal,
    Tier,
    monotone_transitions,
    overdraft_signal,
)


def signal(overrun=0.0, burn=0.0, headroom=math.inf):
    return OverdraftSignal(
        projected_overrun=overrun,
        burn_fraction=burn,
        headroom_steps=headroom,
    )


class TestTier:
    def test_severity_order(self):
        assert (
            Tier.NOMINAL
            < Tier.ADVISE
            < Tier.DEGRADE
            < Tier.THROTTLE
            < Tier.KILL
        )

    def test_labels_are_wire_names(self):
        assert Tier.KILL.label == "kill"
        assert Tier.NOMINAL.label == "nominal"


class TestOverdraftSignal:
    def test_rejects_negative_fields(self):
        with pytest.raises(ContractError):
            OverdraftSignal(-0.1, 0.0, 1.0)
        with pytest.raises(ContractError):
            OverdraftSignal(0.0, -0.1, 1.0)
        with pytest.raises(ContractError):
            OverdraftSignal(0.0, 0.0, -1.0)

    def test_from_accountant(self):
        accountant = BudgetAccountant(
            EnergyGoal(total_work=10.0, budget_j=100.0)
        )
        accountant.record(work=5.0, energy_j=60.0)
        sig = overdraft_signal(
            accountant, recent_epw=12.0, recent_step_energy_j=12.0
        )
        # Forecast: 60 spent + 12 * 5 remaining = 120 J on a 100 J
        # budget -> 20 % overrun, 60 % burned, 40/12 steps of headroom.
        assert sig.projected_overrun == pytest.approx(0.2)
        assert sig.burn_fraction == pytest.approx(0.6)
        assert sig.headroom_steps == pytest.approx(40.0 / 12.0)

    def test_no_estimates_means_no_alarm(self):
        accountant = BudgetAccountant(
            EnergyGoal(total_work=10.0, budget_j=100.0)
        )
        sig = overdraft_signal(accountant, None, None)
        assert sig.projected_overrun == 0.0
        assert sig.headroom_steps == math.inf


class TestLadderPolicy:
    def test_nominal_when_quiet(self):
        assert DEFAULT_LADDER.desired_tier(signal()) is Tier.NOMINAL

    def test_advise_on_any_real_overrun(self):
        sig = signal(overrun=0.1, burn=0.05)
        assert DEFAULT_LADDER.desired_tier(sig) is Tier.ADVISE

    def test_degrade_is_burn_gated(self):
        hot = signal(overrun=0.45, burn=0.05)
        assert DEFAULT_LADDER.desired_tier(hot) is Tier.ADVISE
        later = signal(overrun=0.45, burn=0.30)
        assert DEFAULT_LADDER.desired_tier(later) is Tier.DEGRADE

    def test_hard_tiers_are_burn_gated(self):
        early = signal(overrun=0.9, burn=0.30, headroom=3.0)
        assert DEFAULT_LADDER.desired_tier(early) is Tier.DEGRADE
        hard = signal(overrun=0.9, burn=0.60, headroom=30.0)
        assert DEFAULT_LADDER.desired_tier(hard) is Tier.THROTTLE

    def test_kill_needs_runaway_and_low_headroom(self):
        sig = signal(overrun=0.6, burn=0.6, headroom=5.0)
        assert DEFAULT_LADDER.desired_tier(sig) is Tier.KILL

    def test_low_headroom_alone_never_kills(self):
        # Every healthy session ends with headroom near zero; that
        # must not be a kill (or even a hard-tier) trigger by itself.
        ending = signal(overrun=0.0, burn=0.95, headroom=1.0)
        assert DEFAULT_LADDER.desired_tier(ending) is Tier.NOMINAL

    def test_threshold_validation(self):
        with pytest.raises(ContractError):
            LadderPolicy(advise_overrun=0.5, degrade_overrun=0.1)
        with pytest.raises(ContractError):
            LadderPolicy(degrade_burn_gate=0.9, hard_burn_gate=0.5)
        with pytest.raises(ContractError):
            LadderPolicy(kill_headroom_steps=30.0)
        with pytest.raises(ContractError):
            LadderPolicy(hold_steps=0)

    def test_throttle_sleep_scales_with_overrun_and_caps(self):
        policy = LadderPolicy()
        mild = policy.throttle_s(signal(overrun=0.0))
        severe = policy.throttle_s(signal(overrun=5.0))
        assert 0.0 < mild < severe <= policy.throttle_max_s


class TestEnforcementLadder:
    def test_climbs_one_rung_per_observation(self):
        ladder = EnforcementLadder()
        kill_now = signal(overrun=2.0, burn=0.7, headroom=2.0)
        tiers = [ladder.observe(kill_now, step) for step in range(4)]
        assert tiers == [
            Tier.ADVISE,
            Tier.DEGRADE,
            Tier.THROTTLE,
            Tier.KILL,
        ]

    def test_kill_is_terminal(self):
        ladder = EnforcementLadder()
        kill_now = signal(overrun=2.0, burn=0.7, headroom=2.0)
        for step in range(4):
            ladder.observe(kill_now, step)
        assert ladder.killed
        with pytest.raises(KilledSessionError):
            ladder.observe(signal(), 4)

    def test_hysteresis_holds_before_dropping(self):
        policy = LadderPolicy(hold_steps=3)
        ladder = EnforcementLadder(policy=policy)
        ladder.observe(signal(overrun=0.1), 0)
        assert ladder.tier is Tier.ADVISE
        # Two calm observations are not enough; the third drops a rung.
        assert ladder.observe(signal(), 1) is Tier.ADVISE
        assert ladder.observe(signal(), 2) is Tier.ADVISE
        assert ladder.observe(signal(), 3) is Tier.NOMINAL

    def test_noise_resets_the_calm_streak(self):
        policy = LadderPolicy(hold_steps=2)
        ladder = EnforcementLadder(policy=policy)
        ladder.observe(signal(overrun=0.1), 0)
        ladder.observe(signal(), 1)
        # The streak resets when severity returns ...
        ladder.observe(signal(overrun=0.1), 2)
        ladder.observe(signal(), 3)
        assert ladder.tier is Tier.ADVISE
        ladder.observe(signal(), 4)
        assert ladder.tier is Tier.NOMINAL

    def test_transitions_recorded_with_signal_context(self):
        ladder = EnforcementLadder()
        ladder.observe(signal(overrun=0.1, burn=0.2), 7)
        assert len(ladder.transitions) == 1
        transition = ladder.transitions[0]
        assert transition.step == 7
        assert transition.from_tier is Tier.NOMINAL
        assert transition.to_tier is Tier.ADVISE
        assert transition.projected_overrun == pytest.approx(0.1)

    def test_as_dict_is_wire_friendly(self):
        ladder = EnforcementLadder()
        ladder.observe(signal(overrun=0.1, headroom=math.inf), 0)
        payload = ladder.as_dict()
        assert payload["tier"] == "advise"
        assert payload["transitions"][0]["headroom_steps"] is None

    def test_throttle_s_zero_unless_throttled(self):
        ladder = EnforcementLadder()
        ladder.observe(signal(overrun=0.1), 0)
        assert ladder.throttle_s() == 0.0
        kill_now = signal(overrun=2.0, burn=0.7, headroom=2.0)
        ladder.observe(kill_now, 1)
        ladder.observe(kill_now, 2)
        assert ladder.tier is Tier.THROTTLE
        assert ladder.throttle_s() > 0.0


class TestMonotoneTransitions:
    @staticmethod
    def edge(step, from_tier, to_tier):
        return {
            "step": step,
            "from": from_tier,
            "to": to_tier,
            "projected_overrun": 0.0,
            "burn_fraction": 0.0,
            "headroom_steps": None,
        }

    def test_full_climb_is_valid(self):
        edges = [
            self.edge(0, "nominal", "advise"),
            self.edge(1, "advise", "degrade"),
            self.edge(2, "degrade", "throttle"),
            self.edge(3, "throttle", "kill"),
        ]
        assert monotone_transitions(edges) == (True, "")

    def test_empty_history_is_valid(self):
        assert monotone_transitions([]) == (True, "")

    def test_rejects_rung_jumps(self):
        ok, reason = monotone_transitions(
            [self.edge(0, "nominal", "degrade")]
        )
        assert not ok and "one rung" in reason

    def test_rejects_discontinuity(self):
        ok, reason = monotone_transitions(
            [
                self.edge(0, "nominal", "advise"),
                self.edge(1, "degrade", "throttle"),
            ]
        )
        assert not ok and "discontinuous" in reason

    def test_rejects_activity_after_kill(self):
        ok, reason = monotone_transitions(
            [
                self.edge(0, "nominal", "advise"),
                self.edge(1, "advise", "degrade"),
                self.edge(2, "degrade", "throttle"),
                self.edge(3, "throttle", "kill"),
                self.edge(4, "kill", "throttle"),
            ]
        )
        assert not ok and "after kill" in reason

    def test_rejects_kill_without_degrade(self):
        ok, reason = monotone_transitions(
            [self.edge(0, "throttle", "kill")]
        )
        assert not ok and "degrade" in reason

    def test_rejects_unknown_tiers(self):
        ok, reason = monotone_transitions(
            [self.edge(0, "nominal", "martian")]
        )
        assert not ok and "unknown tier" in reason
