"""End-to-end with a *real* kernel in the loop.

Everywhere else the application is a configuration table; here the
decided configuration actually changes the computation performed each
iteration: the Monte-Carlo pricer runs with the decided trial count and
the similarity search with the decided rank fraction.  Work/energy come
from the kernels' own operation counters mapped through the platform
power model, so the whole chain — knob → real computation → measured
rate → runtime decision → knob — is exercised with no synthetic speedup
anywhere.
"""

import numpy as np
import pytest

from repro.apps.base import AppConfig, ConfigTable
from repro.core.budget import EnergyGoal
from repro.core.jouleguard import build_runtime
from repro.core.types import Measurement
from repro.hw import get_machine, system_power, work_rate
from repro.kernels.montecarlo import (
    MarketModel,
    Swaption,
    price_swaption,
    pricing_accuracy,
)
from repro.kernels.similarity import (
    FeatureDatabase,
    SimilaritySearch,
    exhaustive_top_k,
    result_similarity,
)
from repro.runtime.harness import prior_shapes
from repro.runtime.oracle import default_energy_per_work


class KernelPlant:
    """Executes real kernel work; converts operation counts to time and
    energy via the platform models (ops/sec scales with the machine
    configuration's work rate)."""

    def __init__(self, machine, profile, ops_per_work_unit):
        self.machine = machine
        self.profile = profile
        self.ops_per_work_unit = ops_per_work_unit

    def account(self, config, ops):
        rate = work_rate(self.machine, config, self.profile)
        seconds = (ops / self.ops_per_work_unit) / rate
        power = system_power(self.machine, config, self.profile)
        return seconds, power * seconds, power


class TestMonteCarloClosedLoop:
    TRIALS = (20_000, 10_000, 5_000, 2_500, 1_200, 600, 300)

    def build_app_table(self):
        swaption, market = Swaption(), MarketModel()
        reference = price_swaption(swaption, market, self.TRIALS[0], seed=0)
        configs = []
        for index, trials in enumerate(self.TRIALS):
            price = price_swaption(swaption, market, trials, seed=1)
            configs.append(
                AppConfig(
                    index=index,
                    speedup=self.TRIALS[0] / trials,
                    accuracy=1.0
                    if index == 0
                    else min(
                        pricing_accuracy(price, reference), 1.0 - 1e-9
                    ),
                    knob_settings=(("trials", float(trials)),),
                )
            )
        return ConfigTable(configs)

    def test_budget_met_with_real_pricing(self, apps):
        machine = get_machine("tablet")
        profile = apps["swaptions"].resource_profile
        table = self.build_app_table()
        plant = KernelPlant(
            machine, profile, ops_per_work_unit=self.TRIALS[0]
        )
        n = 150
        epw = default_energy_per_work(machine, apps["swaptions"])
        # Rescale: one work unit = one full-trial pricing.
        default_config = machine.default_config
        default_seconds, default_energy, _ = plant.account(
            default_config, self.TRIALS[0]
        )
        goal = EnergyGoal(total_work=n, budget_j=default_energy * n / 2.0)
        rate_shape, power_shape = prior_shapes(machine)
        runtime = build_runtime(
            rate_shape, power_shape, table, goal, seed=3
        )
        swaption, market = Swaption(), MarketModel()
        reference = price_swaption(swaption, market, self.TRIALS[0], seed=0)
        total_energy = 0.0
        accuracies = []
        rng = np.random.default_rng(4)
        for i in range(n):
            decision = runtime.current_decision
            trials = int(decision.app_config.knob_settings[0][1])
            # REAL work: price the swaption at the decided trial count.
            price = price_swaption(
                swaption, market, trials, seed=int(rng.integers(1e6))
            )
            accuracies.append(pricing_accuracy(price, reference))
            config = machine.space[decision.system_index]
            seconds, energy, power = plant.account(config, trials)
            total_energy += energy
            runtime.step(
                Measurement(
                    work=1.0,
                    energy_j=energy,
                    rate=1.0 / seconds,
                    power_w=power,
                )
            )
        assert total_energy <= goal.budget_j * 1.05
        # Measured pricing accuracy stays high: the runtime buys its
        # speedup from trial counts whose real error is small.
        assert np.mean(accuracies) > 0.95


class TestSimilarityClosedLoop:
    FRACTIONS = (1.0, 0.8, 0.6, 0.45, 0.3)

    def build_app_table(self, database, queries):
        search_full = SimilaritySearch(database, rank_fraction=1.0)
        configs = []
        base_ops = None
        for index, fraction in enumerate(self.FRACTIONS):
            search = SimilaritySearch(database, rank_fraction=fraction)
            sims, ops_total = [], 0
            for q in queries:
                returned, ops = search.query(q)
                ops_total += ops
                reference = exhaustive_top_k(database, q, search.top_k)
                sims.append(
                    result_similarity(database, q, returned, reference)
                )
            if base_ops is None:
                base_ops = ops_total
            configs.append(
                AppConfig(
                    index=index,
                    speedup=1.0 if index == 0 else base_ops / ops_total,
                    accuracy=1.0
                    if index == 0
                    else min(float(np.mean(sims)), 1.0 - 1e-9),
                    knob_settings=(("rank_fraction", fraction),),
                )
            )
        return ConfigTable(configs)

    def test_budget_met_with_real_queries(self, apps):
        machine = get_machine("tablet")
        profile = apps["ferret"].resource_profile
        database = FeatureDatabase(n_items=400, seed=5)
        rng = np.random.default_rng(6)
        training = [database.sample_query(rng) for _ in range(20)]
        table = self.build_app_table(database, training)
        plant = KernelPlant(machine, profile, ops_per_work_unit=300.0)

        n = 200
        default_seconds, default_energy, _ = plant.account(
            machine.default_config, 300.0
        )
        goal = EnergyGoal(
            total_work=n, budget_j=default_energy * n / 1.3
        )
        rate_shape, power_shape = prior_shapes(machine)
        runtime = build_runtime(
            rate_shape, power_shape, table, goal, seed=7
        )
        total_energy = 0.0
        measured_sims = []
        for _ in range(n):
            decision = runtime.current_decision
            fraction = decision.app_config.knob_settings[0][1]
            query = database.sample_query(rng)
            # REAL work: answer the query at the decided rank fraction.
            search = SimilaritySearch(database, rank_fraction=fraction)
            returned, ops = search.query(query)
            reference = exhaustive_top_k(database, query, search.top_k)
            measured_sims.append(
                result_similarity(database, query, returned, reference)
            )
            config = machine.space[decision.system_index]
            seconds, energy, power = plant.account(
                config, max(ops, 1) + 60.0  # probing overhead
            )
            total_energy += energy
            runtime.step(
                Measurement(
                    work=1.0,
                    energy_j=energy,
                    rate=1.0 / seconds,
                    power_w=power,
                )
            )
        assert total_energy <= goal.budget_j * 1.08
        assert np.mean(measured_sims) > 0.7
