"""Result stability across seeds: the claims hold in distribution, not
just on one lucky RNG stream."""

import pytest

from repro.hw import get_machine
from repro.runtime.harness import run_jouleguard
from repro.runtime.repeat import replicate

SEEDS = (1, 2, 3, 4, 5)


class TestSeedStability:
    @pytest.mark.parametrize(
        "machine_name,app_name,factor",
        [
            ("mobile", "x264", 2.0),
            ("tablet", "bodytrack", 2.0),
            ("server", "radar", 2.0),
        ],
    )
    def test_relative_error_low_across_seeds(
        self, apps, machine_name, app_name, factor
    ):
        summary = replicate(
            run_jouleguard,
            seeds=SEEDS,
            machine=get_machine(machine_name),
            app=apps[app_name],
            factor=factor,
            n_iterations=250,
        )
        error = summary["relative_error_pct"]
        assert error.mean < 2.0
        assert error.maximum < 5.0

    def test_effective_accuracy_tight_across_seeds(self, apps):
        summary = replicate(
            run_jouleguard,
            seeds=SEEDS,
            machine=get_machine("server"),
            app=apps["x264"],
            factor=2.0,
            n_iterations=250,
        )
        accuracy = summary["effective_acc"]
        assert accuracy.mean > 0.97
        assert accuracy.std < 0.03
        low, high = accuracy.confidence_interval()
        assert low > 0.9

    def test_energy_savings_consistent(self, apps):
        summary = replicate(
            run_jouleguard,
            seeds=SEEDS,
            machine=get_machine("tablet"),
            app=apps["streamcluster"],
            factor=3.0,
            n_iterations=250,
        )
        savings = summary["energy_savings"]
        # Savings land at the requested 3x (within noise) on every seed.
        assert savings.minimum > 2.8
        assert savings.maximum < 3.5
