"""End-to-end daemon tests: the acceptance gauntlet for repro.service.

Runs the real asyncio daemon in-process (ServerThread on a Unix
socket) and drives it with the real blocking client: concurrent
sessions under one global budget, admission control, warm starts, and
seeded replication.
"""

import threading

import pytest

from repro.apps import build_application
from repro.hw import get_machine
from repro.runtime.oracle import max_feasible_factor
from repro.service import (
    PROTOCOL_VERSION,
    ServerThread,
    ServiceClient,
    ServiceError,
    SessionManager,
    SnapshotStore,
    drive_synthetic_session,
)

STEPS = 30
FACTOR = 1.5


@pytest.fixture()
def daemon(tmp_path):
    manager = SessionManager(
        global_budget_j=1e7,
        store=SnapshotStore(),
        rebalance_period=10,
    )
    sock = str(tmp_path / "jg.sock")
    with ServerThread(manager, unix_path=sock) as handle:
        yield manager, sock, handle


def client_for(sock):
    return ServiceClient(unix_path=sock, timeout_s=30.0)


class TestConcurrentSessionsShareOneBudget:
    def test_three_clients_budget_invariant(self, daemon):
        manager, sock, _ = daemon
        runs = [None] * 3
        errors = []

        def _drive(index):
            try:
                with client_for(sock) as client:
                    runs[index] = drive_synthetic_session(
                        client,
                        machine="tablet",
                        app="x264",
                        factor=FACTOR,
                        steps=STEPS,
                        seed=10 + index,
                        close=False,  # keep the session live
                        client_name=f"it-{index}",
                    )
            except Exception as exc:  # surface failures in the test
                errors.append(exc)

        threads = [
            threading.Thread(target=_drive, args=(index,))
            for index in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert errors == []
        assert all(run is not None for run in runs)

        # All three sessions are live and share the one global pool:
        # conservative rebalances moved joules *between* them, so the
        # sum of effective budgets equals the sum of grants exactly
        # (the core.multi invariant, extended to a dynamic fleet).
        # Fetch the reports together, after every thread has joined: a
        # per-thread report races the other threads' steps, and a
        # rebalance between two snapshots makes their sum inconsistent.
        assert len(manager.live_sessions) == 3
        with client_for(sock) as client:
            reports = [client.report(run.session) for run in runs]
        granted = sum(
            report["granted_budget_j"] for report in reports
        )
        effective = sum(
            report["effective_budget_j"] for report in reports
        )
        assert effective == pytest.approx(granted, rel=1e-9)
        assert manager.committed_budget_j == pytest.approx(
            granted, rel=1e-9
        )
        # Rebalances actually ran (3 sessions x 30 steps, period 10).
        assert len(manager.transfers) >= 1

        # Closing returns unspent grants to the pool.
        with client_for(sock) as client:
            for run in runs:
                client.close(run.session)
        assert manager.live_sessions == []
        assert manager.available_budget_j <= 1e7
        assert manager.available_budget_j > 0


class TestAdmissionControl:
    def test_infeasible_goal_rejected_at_open(self, daemon):
        manager, sock, _ = daemon
        limit = max_feasible_factor(
            get_machine("tablet"), build_application("x264")
        )
        with client_for(sock) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.open_session(
                    machine="tablet",
                    app="x264",
                    factor=limit * 2,
                    total_work=float(STEPS),
                )
            assert excinfo.value.code == "infeasible_goal"
        assert manager.sessions_rejected == 1
        assert manager.live_sessions == []

    def test_unknown_names_have_stable_codes(self, daemon):
        _, sock, _ = daemon
        with client_for(sock) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.open_session("toaster", "x264", 1.5, 10.0)
            assert excinfo.value.code == "unknown_machine"
            with pytest.raises(ServiceError) as excinfo:
                client.open_session("tablet", "doom", 1.5, 10.0)
            assert excinfo.value.code == "unknown_application"


class TestWarmStart:
    def test_snapshot_restore_converges_strictly_faster(self, daemon):
        _, sock, _ = daemon
        with client_for(sock) as client:
            cold = drive_synthetic_session(
                client,
                machine="tablet",
                app="x264",
                factor=FACTOR,
                steps=STEPS,
                seed=1,
                warm_start=False,
                take_snapshot=True,
            )
            warm = drive_synthetic_session(
                client,
                machine="tablet",
                app="x264",
                factor=FACTOR,
                steps=STEPS,
                seed=2,
                warm_start=True,
            )
        assert cold.warm is False
        assert warm.warm is True
        # The restored session starts from the learned tables, so it
        # must settle in strictly fewer iterations than the cold one.
        assert warm.convergence_step() < cold.convergence_step()


class TestSeededReplication:
    def test_same_seed_replays_the_same_decisions(self, daemon):
        _, sock, _ = daemon
        traces = []
        for _ in range(2):
            with client_for(sock) as client:
                run = drive_synthetic_session(
                    client,
                    machine="tablet",
                    app="x264",
                    factor=FACTOR,
                    steps=STEPS,
                    seed=42,
                    warm_start=False,  # identical starting state
                )
            traces.append(
                [
                    (d["system_index"], d["app_index"])
                    for d in run.decisions
                ]
            )
        assert traces[0] == traces[1]


class TestProtocolOverTheWire:
    def test_hello_reports_daemon_stats(self, daemon):
        _, sock, _ = daemon
        with client_for(sock) as client:
            stats = client.server_stats
        assert stats["version"] == PROTOCOL_VERSION
        assert stats["sessions"] == 0
        assert "available_budget_j" in stats

    def test_step_on_closed_session_fails_cleanly(self, daemon):
        _, sock, _ = daemon
        with client_for(sock) as client:
            run = drive_synthetic_session(
                client,
                machine="tablet",
                app="x264",
                factor=FACTOR,
                steps=3,
                seed=5,
            )
            with pytest.raises(ServiceError) as excinfo:
                client.report(run.session)
            assert excinfo.value.code == "unknown_session"

    def test_malformed_line_gets_a_structured_error(self, daemon):
        _, sock, _ = daemon
        with client_for(sock) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            with pytest.raises(ServiceError) as excinfo:
                client.request(
                    {"type": "hello", "version": PROTOCOL_VERSION}
                )
            assert excinfo.value.code == "bad_request"
