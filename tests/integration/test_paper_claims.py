"""Integration tests of the paper's headline claims (Sec. 1.2).

Each test runs the full closed loop — machine model, noisy sensors,
application table, JouleGuard runtime — and checks the published
behaviour: convergence, near-optimal accuracy, superiority over
single-layer adaptation, and responsiveness to phases.
"""

import numpy as np
import pytest

from repro.runtime.baselines import (
    app_only_accuracy,
    run_application_only,
    run_uncoordinated,
)
from repro.runtime.harness import run_jouleguard
from repro.runtime.oracle import max_feasible_factor
from repro.workloads.phases import three_scene_video


class TestStabilityAndConvergence:
    """Sec. 5.3: JouleGuard meets energy goals with low relative error."""

    @pytest.mark.parametrize(
        "machine_name,app_name",
        [
            ("mobile", "x264"),
            ("mobile", "bodytrack"),
            ("tablet", "radar"),
            ("tablet", "streamcluster"),
            ("server", "x264"),
            ("server", "swaptions"),
        ],
    )
    def test_moderate_goals_met_within_few_percent(
        self, machines, apps, machine_name, app_name
    ):
        result = run_jouleguard(
            machines[machine_name],
            apps[app_name],
            factor=2.0,
            n_iterations=300,
            seed=11,
        )
        assert result.relative_error_pct < 3.0

    def test_energy_per_work_settles_near_target(self, server, apps):
        result = run_jouleguard(
            server, apps["bodytrack"], factor=2.0, n_iterations=400, seed=7
        )
        late = result.trace.energy_per_work()[300:]
        assert np.mean(late) <= result.goal.energy_per_work * 1.1

    def test_error_grows_with_aggressiveness(self, server, apps):
        # Sec. 5.3: "the more aggressive the target the higher the error"
        # — in expectation; check the gentle goal is (weakly) better.
        app = apps["canneal"]
        errors = {
            f: np.mean(
                [
                    run_jouleguard(
                        server, app, factor=f, n_iterations=300, seed=s
                    ).relative_error_pct
                    for s in range(3)
                ]
            )
            for f in (1.2, 2.5)
        }
        assert errors[1.2] <= errors[2.5] + 0.5


class TestOptimality:
    """Sec. 5.4: accuracy within a few percent of the oracle."""

    @pytest.mark.parametrize(
        "machine_name,app_name,factor",
        [
            ("mobile", "x264", 2.0),
            ("mobile", "radar", 3.0),
            ("tablet", "bodytrack", 2.0),
            ("server", "x264", 2.0),
            ("server", "streamcluster", 3.0),
        ],
    )
    def test_effective_accuracy_near_one(
        self, machines, apps, machine_name, app_name, factor
    ):
        result = run_jouleguard(
            machines[machine_name],
            apps[app_name],
            factor=factor,
            n_iterations=300,
            seed=13,
        )
        assert result.effective_acc > 0.95

    def test_mobile_accuracy_uniformly_high(self, mobile, apps):
        # Sec. 5.4: "accuracies for Mobile are uniformly higher" because
        # goals sit well within its operating range.
        for app_name in ("x264", "bodytrack", "radar", "streamcluster"):
            result = run_jouleguard(
                mobile, apps[app_name], factor=2.0, n_iterations=300, seed=3
            )
            assert result.effective_acc > 0.97, app_name


class TestComparisonToSingleLayer:
    """Sec. 5.5 / Fig. 7: coordination beats either layer alone."""

    @pytest.mark.parametrize(
        "app_name,factor",
        [("x264", 3.0), ("bodytrack", 3.0), ("swish", 1.5), ("radar", 3.0)],
    )
    def test_beats_application_only(self, server, apps, app_name, factor):
        app = apps[app_name]
        guarded = run_jouleguard(
            server, app, factor=factor, n_iterations=400, seed=5
        )
        analytic_app_only = app_only_accuracy(app, factor)
        assert analytic_app_only is not None
        assert guarded.mean_accuracy > analytic_app_only - 0.01

    def test_extends_feasible_range_beyond_app_only(self, server, apps):
        # swish cannot reach f=1.75 alone (max speedup 1.52), but the
        # coordinated runtime can.
        app = apps["swish"]
        assert app_only_accuracy(app, 1.75) is None
        result = run_jouleguard(
            server, app, factor=1.75, n_iterations=2000, seed=5
        )
        assert result.relative_error_pct < 5.0

    def test_no_needless_accuracy_loss_within_system_range(
        self, server, apps
    ):
        # Fig. 7: accuracy only starts to fall once system savings are
        # exhausted.
        result = run_jouleguard(
            server, apps["x264"], factor=1.1, n_iterations=300, seed=5
        )
        assert result.mean_accuracy > 0.99

    def test_beats_uncoordinated_composition(self, server, apps):
        app = apps["x264"]
        guarded = run_jouleguard(
            server, app, factor=2.0, n_iterations=400, seed=9
        )
        unco = run_uncoordinated(
            server, app, factor=2.0, n_iterations=400, seed=9
        )
        assert guarded.mean_accuracy >= unco.mean_accuracy
        assert guarded.relative_error_pct <= unco.relative_error_pct + 1.0


class TestResponsiveness:
    """Sec. 5.6 / Fig. 8: phase changes become accuracy, not energy."""

    def test_easy_phase_converts_headroom_to_accuracy(self, mobile, apps):
        app = apps["bodytrack"]
        factor = max_feasible_factor(mobile, app) * 0.6
        result = run_jouleguard(
            mobile,
            app,
            factor=factor,
            workload=three_scene_video(200),
            seed=2,
        )
        accuracy = np.array(result.trace.accuracy)
        hard1 = accuracy[100:200].mean()
        easy = accuracy[300:400].mean()
        hard2 = accuracy[500:600].mean()
        assert easy > hard1
        assert easy > hard2

    def test_energy_guarantee_survives_phases(self, mobile, apps):
        app = apps["bodytrack"]
        factor = max_feasible_factor(mobile, app) * 0.6
        result = run_jouleguard(
            mobile,
            app,
            factor=factor,
            workload=three_scene_video(200),
            seed=2,
        )
        assert result.relative_error_pct < 3.0

    def test_recovers_from_rate_disturbance(self, server, apps):
        # Inject a mid-run slowdown (e.g. a co-runner); the controller
        # must re-converge and keep the budget.
        from repro.hw.simulator import NoiseModel, PlatformSimulator
        from repro.core.types import Measurement
        from repro.core.budget import EnergyGoal
        from repro.core.jouleguard import build_runtime
        from repro.runtime.harness import prior_shapes
        from repro.runtime.oracle import default_energy_per_work

        app = apps["x264"]
        simulator = PlatformSimulator(server, app.resource_profile, seed=3)
        simulator.add_disturbance(
            lambda t: 0.7 if simulator.clock_s > 4.0 else 1.0
        )
        epw = default_energy_per_work(server, app)
        n = 400
        goal = EnergyGoal.from_factor(2.0, n, epw)
        rate_shape, power_shape = prior_shapes(server)
        runtime = build_runtime(rate_shape, power_shape, app.table, goal, seed=4)
        total_energy = 0.0
        for _ in range(n):
            decision = runtime.current_decision
            result = simulator.run_iteration(
                server.space[decision.system_index],
                work=1.0,
                app_speedup=decision.app_config.speedup,
                app_power_factor=decision.app_config.power_factor,
            )
            total_energy += result.energy_j
            runtime.step(
                Measurement(
                    work=1.0,
                    energy_j=result.measured_power_w * result.time_s,
                    rate=result.measured_rate,
                    power_w=result.measured_power_w,
                )
            )
        assert total_energy <= goal.budget_j * 1.05
