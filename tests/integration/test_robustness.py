"""Failure injection and robustness: conditions the paper's formal
analysis (Sec. 3.4.2) says the runtime should survive."""

import numpy as np
import pytest

from repro.core.budget import EnergyGoal
from repro.core.jouleguard import build_runtime
from repro.core.types import Measurement
from repro.hw import get_machine
from repro.hw.sensors import OnChipPowerSensor
from repro.hw.simulator import NoiseModel, PlatformSimulator
from repro.runtime.harness import prior_shapes, run_jouleguard
from repro.runtime.oracle import default_energy_per_work


def closed_loop(machine, app, factor, n, seed, simulator):
    """Drive a fresh runtime against a prepared simulator."""
    epw = default_energy_per_work(machine, app)
    goal = EnergyGoal.from_factor(factor, n, epw)
    rate_shape, power_shape = prior_shapes(machine)
    runtime = build_runtime(
        rate_shape, power_shape, app.table, goal, seed=seed
    )
    total_true = 0.0
    for _ in range(n):
        decision = runtime.current_decision
        result = simulator.run_iteration(
            machine.space[decision.system_index],
            work=1.0,
            app_speedup=decision.app_config.speedup,
            app_power_factor=decision.app_config.power_factor,
        )
        total_true += result.energy_j
        runtime.step(
            Measurement(
                work=1.0,
                energy_j=result.measured_power_w * result.time_s,
                rate=result.measured_rate,
                power_w=result.measured_power_w,
            )
        )
    return total_true, goal, runtime


class TestExtremeNoise:
    def test_heavy_rate_noise_still_meets_budget(self, apps):
        machine = get_machine("server")
        simulator = PlatformSimulator(
            machine,
            apps["x264"].resource_profile,
            noise=NoiseModel(sigma_rate=0.25, sigma_power=0.1),
            seed=1,
        )
        total, goal, _ = closed_loop(
            machine, apps["x264"], 1.5, 400, seed=2, simulator=simulator
        )
        assert total <= goal.budget_j * 1.08

    def test_noise_free_is_essentially_exact(self, apps):
        machine = get_machine("tablet")
        simulator = PlatformSimulator(
            machine,
            apps["x264"].resource_profile,
            noise=NoiseModel(sigma_rate=0.0, sigma_power=0.0),
            seed=3,
        )
        total, goal, _ = closed_loop(
            machine, apps["x264"], 2.0, 300, seed=4, simulator=simulator
        )
        assert total <= goal.budget_j * 1.01


class TestSensorFaults:
    def test_biased_power_sensor_underreporting(self, apps):
        # A sensor that under-reports power by 10% makes the runtime
        # believe it has more headroom; true energy then overshoots by
        # roughly the bias — but not catastrophically (the loop remains
        # stable, the error is bounded by the bias).
        machine = get_machine("server")
        app = apps["x264"]
        sensor = OnChipPowerSensor(
            fixed_offset_w=machine.external_w * 0.9,
            noise_rel=0.0,
            rng=np.random.default_rng(5),
        )
        simulator = PlatformSimulator(
            machine, app.resource_profile, seed=6, sensor=sensor
        )
        # Scale package readings down via a wrapper on the true power:
        simulator.sensor.quantum_w = 0.0
        total, goal, _ = closed_loop(
            machine, app, 2.0, 400, seed=7, simulator=simulator
        )
        overshoot = total / goal.budget_j
        assert overshoot < 1.12  # bounded by the ~10% bias
        assert overshoot > 0.95

    def test_quantized_sensor_still_converges(self, apps):
        machine = get_machine("tablet")
        app = apps["bodytrack"]
        sensor = OnChipPowerSensor(
            fixed_offset_w=machine.external_w,
            quantum_w=0.5,  # very coarse quantization
            noise_rel=0.02,
            rng=np.random.default_rng(8),
        )
        simulator = PlatformSimulator(
            machine, app.resource_profile, seed=9, sensor=sensor
        )
        total, goal, _ = closed_loop(
            machine, app, 2.0, 400, seed=10, simulator=simulator
        )
        assert total <= goal.budget_j * 1.05


class TestSwitchCosts:
    def test_switch_costs_tracked(self, apps):
        machine = get_machine("tablet")
        simulator = PlatformSimulator(
            machine,
            apps["x264"].resource_profile,
            seed=11,
            switch_latency_s=1e-3,
            switch_energy_j=0.01,
        )
        closed_loop(
            machine, apps["x264"], 1.5, 200, seed=12, simulator=simulator
        )
        assert simulator.switch_count >= 0

    def test_budget_met_despite_switch_costs(self, apps):
        # Reconfiguration costs are unmodeled by the runtime; feedback
        # absorbs them like any other disturbance.
        machine = get_machine("server")
        app = apps["x264"]
        simulator = PlatformSimulator(
            machine,
            app.resource_profile,
            seed=13,
            switch_latency_s=2e-3,
            switch_energy_j=0.5,
        )
        total, goal, _ = closed_loop(
            machine, app, 1.5, 400, seed=14, simulator=simulator
        )
        assert total <= goal.budget_j * 1.05

    def test_jouleguard_switches_less_than_uncoordinated(self, apps):
        # Coordination also pays off in configuration stability.
        from repro.runtime.baselines import run_uncoordinated

        machine = get_machine("server")
        app = apps["swish"]
        guarded = run_jouleguard(
            machine, app, factor=1.5, n_iterations=400, seed=15
        )
        uncoordinated = run_uncoordinated(
            machine, app, factor=1.5, n_iterations=400, seed=15
        )

        def switches(result):
            indices = result.trace.system_index
            return sum(
                1 for a, b in zip(indices, indices[1:]) if a != b
            )

        assert switches(guarded) <= switches(uncoordinated)


class TestWorkloadShocks:
    def test_sustained_slowdown_absorbed(self, apps):
        machine = get_machine("server")
        app = apps["bodytrack"]
        simulator = PlatformSimulator(machine, app.resource_profile, seed=16)
        simulator.add_disturbance(
            lambda t: 0.6 if t > 3.0 else 1.0
        )
        total, goal, runtime = closed_loop(
            machine, app, 2.0, 400, seed=17, simulator=simulator
        )
        assert total <= goal.budget_j * 1.05

    def test_transient_spike_recovered(self, apps):
        machine = get_machine("mobile")
        app = apps["x264"]
        simulator = PlatformSimulator(machine, app.resource_profile, seed=18)
        # A page-fault-storm-like transient: 5x slowdown for a window.
        simulator.add_disturbance(
            lambda t: 0.2 if 2.0 < t < 3.0 else 1.0
        )
        total, goal, _ = closed_loop(
            machine, app, 2.0, 400, seed=19, simulator=simulator
        )
        assert total <= goal.budget_j * 1.05
