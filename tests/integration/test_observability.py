"""Observability and enforcement over the wire.

End-to-end: a real daemon thread, a real client socket, plus the HTTP
metrics endpoint — the paths CI's smoke jobs exercise.
"""

import urllib.request

import pytest

from repro.core.types import Measurement
from repro.obs.prom import CONTENT_TYPE, parse_text
from repro.service.client import (
    ServiceClient,
    ServiceError,
    SessionKilledError,
    drive_synthetic_session,
)
from repro.service.server import ServerThread
from repro.service.sessions import SessionManager


@pytest.fixture()
def daemon(tmp_path):
    manager = SessionManager(global_budget_j=1e7)
    sock = str(tmp_path / "obs.sock")
    with ServerThread(
        manager, unix_path=sock, metrics_host="127.0.0.1"
    ) as handle:
        yield manager, sock, handle


def _measurement(energy_j):
    return Measurement(
        work=1.0, energy_j=energy_j, rate=10.0, power_w=energy_j
    )


class TestMetricsVerb:
    def test_samples_reflect_driven_sessions(self, daemon):
        _, sock, _ = daemon
        with ServiceClient(unix_path=sock) as client:
            drive_synthetic_session(
                client,
                machine="tablet",
                app="x264",
                factor=1.5,
                steps=12,
                close=False,
            )
            values = {
                (s["name"], tuple(sorted(s["labels"].items()))): s[
                    "value"
                ]
                for s in client.metrics()
            }
        assert values[("jg_sessions_open", ())] == 1.0
        assert values[("jg_steps_total", ())] == 12.0
        assert (
            values[
                (
                    "jg_requests_total",
                    (("ok", "true"), ("type", "step")),
                )
            ]
            == 12.0
        )
        # Per-session gauges carry the session label.
        session_gauges = [
            name
            for (name, labels) in values
            if labels and dict(labels).get("session")
        ]
        assert "jg_session_pole" in session_gauges
        assert "jg_session_budget_burn_ratio" in session_gauges


class TestEventsVerb:
    def test_cursor_pagination(self, daemon):
        _, sock, _ = daemon
        with ServiceClient(unix_path=sock) as client:
            opened = client.open_session(
                machine="tablet",
                app="x264",
                factor=1.5,
                total_work=100.0,
            )
            events, cursor = client.events()
            kinds = [event["kind"] for event in events]
            assert "session_opened" in kinds
            assert cursor >= len(events)
            # Nothing new: the cursor fences off what we saw.
            newer, cursor2 = client.events(since=cursor)
            assert newer == []
            assert cursor2 == cursor
            client.close(opened.session)
            newer, _ = client.events(since=cursor)
            assert [e["kind"] for e in newer] == ["session_closed"]


class TestKillOverTheWire:
    def test_client_raises_session_killed(self, daemon):
        manager, sock, _ = daemon
        with ServiceClient(unix_path=sock) as client:
            opened = client.open_session(
                machine="tablet",
                app="x264",
                factor=1.5,
                total_work=1000.0,
            )
            runaway = _measurement(0.15 * opened.granted_budget_j)
            with pytest.raises(SessionKilledError) as excinfo:
                for _ in range(20):
                    client.step(opened.session, runaway)
            report = excinfo.value.report
            assert report["close_reason"] == "killed"
            assert report["hard_overdraft_j"] == 0.0
            # The daemon already closed it: another step is unknown.
            with pytest.raises(ServiceError) as late:
                client.step(opened.session, runaway)
            assert late.value.code == "unknown_session"
            events, _ = client.events()
            assert "session_killed" in [e["kind"] for e in events]
        assert manager.stats()["sessions_killed"] == 1

    def test_enforcement_rides_on_step_responses(self, daemon):
        _, sock, _ = daemon
        with ServiceClient(unix_path=sock) as client:
            opened = client.open_session(
                machine="tablet",
                app="x264",
                factor=1.5,
                total_work=1000.0,
            )
            # A gentle first heartbeat: nominal enforcement.
            decision = client.step(
                opened.session,
                _measurement(0.001 * opened.granted_budget_j),
            )
            assert decision["enforcement"]["tier"] == "nominal"
            assert decision["enforcement"]["throttle_s"] == 0.0


class TestMetricsHTTP:
    def test_scrape_through_real_daemon(self, daemon):
        _, sock, handle = daemon
        with ServiceClient(unix_path=sock) as client:
            drive_synthetic_session(
                client,
                machine="tablet",
                app="x264",
                factor=1.5,
                steps=8,
                close=False,
            )
        host, port = handle.metrics_address
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=10
        ) as response:
            assert response.headers["Content-Type"] == CONTENT_TYPE
            body = response.read().decode("utf-8")
        families, samples = parse_text(body)
        for required in (
            "jg_sessions_open",
            "jg_steps_total",
            "jg_energy_spent_joules_total",
            "jg_budget_available_joules",
            "jg_request_seconds",
        ):
            assert required in families, required
        values = {s.name: s.value for s in samples if not s.labels}
        assert values["jg_steps_total"] == 8.0
