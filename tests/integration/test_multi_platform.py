"""Multi-application coordination on the real platform models
(integration-level counterpart of tests/core/test_multi.py)."""

import numpy as np
import pytest

from repro.core.budget import EnergyGoal
from repro.core.jouleguard import build_runtime
from repro.core.multi import MultiAppCoordinator, split_budget
from repro.core.types import Measurement
from repro.hw import get_machine
from repro.hw.simulator import PlatformSimulator
from repro.runtime.harness import prior_shapes
from repro.runtime.oracle import default_energy_per_work

ITERATIONS = 400


def build_pair(machine, apps, shares, seed=0):
    rate_shape, power_shape = prior_shapes(machine)
    runtimes = {}
    simulators = {}
    for i, (name, app) in enumerate(apps.items()):
        runtimes[name] = build_runtime(
            rate_shape,
            power_shape,
            app.table,
            EnergyGoal(total_work=ITERATIONS, budget_j=shares[name]),
            seed=seed + i,
        )
        simulators[name] = PlatformSimulator(
            machine, app.resource_profile, seed=seed + 10 + i
        )
    return runtimes, simulators


def drive(coordinator, simulators, machine, apps, n=ITERATIONS):
    accuracies = {name: [] for name in apps}
    for _ in range(n):
        for name in apps:
            decision = coordinator.current_decision(name)
            result = simulators[name].run_iteration(
                machine.space[decision.system_index],
                work=1.0,
                app_speedup=decision.app_config.speedup,
                app_power_factor=decision.app_config.power_factor,
            )
            accuracies[name].append(decision.app_config.accuracy)
            coordinator.step(
                name,
                Measurement(
                    work=1.0,
                    energy_j=result.measured_power_w * result.time_s,
                    rate=result.measured_rate,
                    power_w=result.measured_power_w,
                ),
            )
    return accuracies


class TestTwoAppsOneTablet:
    @pytest.fixture(scope="class")
    def scenario(self, apps):
        machine = get_machine("tablet")
        pair = {"x264": apps["x264"], "bodytrack": apps["bodytrack"]}
        needs = {
            name: default_energy_per_work(machine, app) * ITERATIONS
            for name, app in pair.items()
        }
        global_budget = sum(needs.values()) / 2.0
        # Skew the initial split so bodytrack strains alone.
        shares = {
            "x264": global_budget * 0.65,
            "bodytrack": global_budget * 0.35,
        }
        runtimes, simulators = build_pair(machine, pair, shares, seed=1)
        coordinator = MultiAppCoordinator(runtimes, rebalance_period=25)
        accuracies = drive(coordinator, simulators, machine, pair)
        return machine, pair, global_budget, coordinator, accuracies

    def test_global_budget_respected(self, scenario):
        _, _, global_budget, coordinator, _ = scenario
        assert coordinator.total_energy_used_j <= global_budget * 1.03

    def test_budget_conserved(self, scenario):
        _, _, global_budget, coordinator, _ = scenario
        assert coordinator.total_effective_budget_j == pytest.approx(
            global_budget
        )

    def test_straining_app_received_budget(self, scenario):
        _, _, _, coordinator, _ = scenario
        report = coordinator.summary()
        assert (
            report["bodytrack"]["effective_budget_j"]
            > report["bodytrack"]["budget_j"]
        )

    def test_both_apps_keep_reasonable_accuracy(self, scenario):
        *_, accuracies = scenario
        for name, series in accuracies.items():
            assert np.mean(series[ITERATIONS // 2 :]) > 0.85, name

    def test_proportional_split_helper(self, apps):
        machine = get_machine("tablet")
        pair = {"x264": apps["x264"], "bodytrack": apps["bodytrack"]}
        needs = {
            name: default_energy_per_work(machine, app) * ITERATIONS
            for name, app in pair.items()
        }
        shares = split_budget(1000.0, needs)
        assert sum(shares.values()) == pytest.approx(1000.0)
        assert shares["x264"] / shares["bodytrack"] == pytest.approx(
            needs["x264"] / needs["bodytrack"]
        )
