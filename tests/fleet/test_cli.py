"""The ``python -m repro fleet`` verb: plumbing, overrides, artifacts."""

import json

import pytest

from repro.cli import main


class TestFleetCommand:
    def test_preset_run_with_overrides(self, capsys):
        code = main(
            [
                "fleet",
                "--preset",
                "smoke",
                "--devices",
                "1200",
                "--epochs",
                "10",
                "--seed",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "devices opened" in out
        assert "hard-tier sessions" in out

    def test_json_report(self, capsys):
        code = main(
            [
                "fleet",
                "--preset",
                "smoke",
                "--devices",
                "800",
                "--epochs",
                "8",
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{") :])
        assert payload["opened"] > 0
        assert "burn_fraction" in payload

    def test_scenario_file_round_trip(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        code = main(
            [
                "fleet",
                "--preset",
                "smoke",
                "--devices",
                "600",
                "--epochs",
                "6",
                "--scenario-out",
                str(path),
            ]
        )
        assert code == 0
        saved = json.loads(path.read_text())
        assert saved["devices"] == 600
        capsys.readouterr()
        code = main(["fleet", "--scenario", str(path)])
        assert code == 0
        assert "devices opened" in capsys.readouterr().out

    def test_prometheus_dump(self, tmp_path, capsys):
        prom = tmp_path / "fleet.prom"
        code = main(
            [
                "fleet",
                "--preset",
                "smoke",
                "--devices",
                "500",
                "--epochs",
                "6",
                "--prom",
                str(prom),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert "jg_fleet_sessions_opened_total" in prom.read_text()

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--preset", "galaxy"])
