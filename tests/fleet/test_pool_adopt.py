"""Adopt/evict: sessions migrate between scalar and vector mid-life.

The vectorized service backend moves live sessions into a
:class:`~repro.fleet.pool.SessionPool` row (:meth:`adopt`) and back
out (:meth:`evict`) on demand.  The contract is the same as the
lockstep rig's: in ``"exact"`` mode the migrated trajectory is
bit-identical to never having migrated at all — decisions, ledgers,
enforcement tiers, throttles, and kills, for *arbitrary* interleavings
of scalar and pooled stepping (hypothesis), including a session killed
while pooled.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_application
from repro.enforce.ladder import Tier
from repro.fleet import (
    CohortHardwareModel,
    CohortSpec,
    ScalarSessionLoop,
    SessionPool,
)
from repro.fleet.pool import FleetError
from repro.hw import GENERIC_PROFILE, get_machine
from repro.hw.vector import MachineTables


def _setup(machine_name="tablet", app_name="x264", waste=1.0, seed=7):
    machine = get_machine(machine_name)
    app = build_application(app_name)
    spec = CohortSpec.from_pair(machine, app)
    tables = MachineTables.build(machine, GENERIC_PROFILE)
    model = CohortHardwareModel(
        tables, spec, 1, waste=np.array([waste]), seed=seed + 17
    )
    return machine, app, spec, model


def _loop(machine, app, seed, total_work=40.0, factor=1.6):
    return ScalarSessionLoop(
        machine, app, total_work, seed, factor=factor
    )


def _fpos_of(spec, loop):
    return int(
        np.flatnonzero(
            spec.frontier_indices == loop.decision.app_config.index
        )[0]
    )


def _adopt(pool, loop):
    return pool.adopt(
        loop.runtime,
        seed=0,
        steps=loop.steps,
        ladder=loop.ladder,
        recent_epw=loop.recent_epw,
        recent_step_energy_j=loop.recent_step_energy_j,
        degraded=loop.degraded,
        throttle_s=loop.throttle_s,
    )


def _evict(pool, row, loop):
    state = pool.evict(row, loop.runtime, ladder=loop.ladder)
    loop.steps = state["steps"]
    loop.recent_epw = state["recent_epw"]
    loop.recent_step_energy_j = state["recent_step_energy_j"]
    loop.degraded = state["degraded"]
    loop.throttle_s = state["throttle_s"]
    loop.killed = state["killed"]
    loop.kill_step = state["kill_step"]
    return state


def _compare(ref, mig, t):
    a, b = ref.decision, mig.decision
    assert a.system_index == b.system_index, t
    assert a.app_config.index == b.app_config.index, t
    assert a.speedup_setpoint == b.speedup_setpoint, t
    assert a.pole == b.pole, t
    assert a.epsilon == b.epsilon, t
    assert a.explored == b.explored, t
    assert a.feasible == b.feasible, t
    assert int(ref.tier) == int(mig.tier), t
    assert ref.throttle_s == mig.throttle_s, t
    assert ref.degraded == mig.degraded, t
    ra, rb = ref.runtime.accountant, mig.runtime.accountant
    assert ra.work_done == rb.work_done, t
    assert ra.energy_used_j == rb.energy_used_j, t


def _run_interleaved(toggles, n_steps, waste, seed):
    """Step ``ref`` purely scalar and ``mig`` with representation
    toggled at each step index in ``toggles``; compare exactly."""
    machine, app, spec, model = _setup(waste=waste, seed=seed)
    ref = _loop(machine, app, seed)
    mig = _loop(machine, app, seed)
    pool = SessionPool(spec, mode="exact")
    row = None
    for t in range(n_steps):
        if ref.killed:
            break
        if t in toggles:
            if row is None:
                row = _adopt(pool, mig)
            else:
                _evict(pool, row, mig)
                row = None
        sys_index = ref.decision.system_index
        fpos = _fpos_of(spec, ref)
        measurement = model.measurement_for(0, t, sys_index, fpos)
        ref.step(measurement)
        if row is None:
            mig.step(measurement)
        else:
            pool.step(
                np.full(pool.n, measurement.work),
                np.full(pool.n, measurement.energy_j),
                np.full(pool.n, measurement.rate),
                np.full(pool.n, measurement.power_w),
                mask=np.arange(pool.n) == row,
            )
            if bool(pool.killed[row]):
                _evict(pool, row, mig)
                row = None
        model.prune(t)
        if row is None:
            assert ref.killed == mig.killed, t
            if ref.killed:
                assert ref.kill_step == mig.kill_step
                break
            _compare(ref, mig, t)
        else:
            assert not bool(pool.killed[row]), t
            assert ref.decision.system_index == int(pool.d_sys[row]), t
            assert ref.decision.app_config.index == int(
                spec.frontier_indices[pool.d_fpos[row]]
            ), t
            assert ref.decision.speedup_setpoint == float(
                pool.d_setpoint[row]
            ), t
            assert ref.decision.epsilon == float(pool.d_epsilon[row]), t
            assert int(ref.tier) == int(pool.tier[row]), t
            assert ref.throttle_s == float(pool.throttle_s[row]), t
    if row is not None:
        _evict(pool, row, mig)
        _compare(ref, mig, "final")
    return ref, mig


class TestAdoptEvictEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        toggles=st.sets(st.integers(0, 59), max_size=8),
        waste=st.sampled_from([1.0, 1.8, 3.0]),
        seed=st.integers(0, 40),
    )
    def test_arbitrary_interleavings_match_pure_scalar(
        self, toggles, waste, seed
    ):
        _run_interleaved(toggles, 60, waste, seed)

    def test_session_killed_while_pooled(self):
        """Heavy waste escalates to KILL inside the pool; the evicted
        scalar objects carry the kill bit-exactly."""
        ref, mig = _run_interleaved({3}, 160, 3.5, seed=11)
        assert ref.killed and mig.killed
        assert ref.kill_step == mig.kill_step
        assert mig.ladder is not None
        assert mig.ladder.tier is Tier.KILL

    def test_round_trip_without_stepping_is_identity(self):
        machine, app, spec, model = _setup(seed=3)
        ref = _loop(machine, app, 3)
        mig = _loop(machine, app, 3)
        for t in range(10):
            sys_index = ref.decision.system_index
            fpos = _fpos_of(spec, ref)
            measurement = model.measurement_for(0, t, sys_index, fpos)
            ref.step(measurement)
            mig.step(measurement)
        pool = SessionPool(spec, mode="exact")
        row = _adopt(pool, mig)
        _evict(pool, row, mig)
        _compare(ref, mig, "round-trip")
        assert (
            mig.runtime.seo._rate_scale == ref.runtime.seo._rate_scale
        )
        # The exploration stream resumes where it left off.
        for t in range(10, 20):
            sys_index = ref.decision.system_index
            fpos = _fpos_of(spec, ref)
            measurement = model.measurement_for(0, t, sys_index, fpos)
            ref.step(measurement)
            mig.step(measurement)
            _compare(ref, mig, t)

    def test_evicted_row_is_dead_and_compactable(self):
        machine, app, spec, model = _setup(seed=5)
        mig = _loop(machine, app, 5)
        pool = SessionPool(spec, mode="exact")
        row = _adopt(pool, mig)
        assert pool.alive_count == 1
        _evict(pool, row, mig)
        assert pool.alive_count == 0
        pool.compact()
        assert pool.n == 0
        assert pool._gens == []


class TestAdoptValidation:
    def test_mismatched_cohort_rejected(self):
        machine, app, spec, _ = _setup()
        other_machine = get_machine("mobile")
        other_app = build_application("swaptions")
        other = ScalarSessionLoop(
            other_machine, other_app, 40.0, 1, factor=1.5
        )
        pool = SessionPool(spec, mode="exact")
        with pytest.raises(FleetError):
            _adopt(pool, other)

    def test_ladder_policy_mismatch_rejected(self):
        machine, app, spec, _ = _setup()
        loop = ScalarSessionLoop(
            machine, app, 40.0, 1, factor=1.5, policy=None
        )
        pool = SessionPool(spec, mode="exact")
        with pytest.raises(FleetError):
            pool.adopt(loop.runtime, ladder=None)
        assert pool.n == 0

    def test_fresh_session_preserves_none_smoothers(self):
        machine, app, spec, _ = _setup()
        mig = _loop(machine, app, 9)
        pool = SessionPool(spec, mode="exact")
        row = _adopt(pool, mig)
        state = pool.evict(row, mig.runtime, ladder=mig.ladder)
        assert state["recent_epw"] is None
        assert state["recent_step_energy_j"] is None
        assert mig.runtime.seo._rate_scale is None
