"""Unit tests for the SessionPool and its vectorized building blocks.

The equivalence suite (test_pool_equivalence) checks whole
trajectories; these tests pin down the pieces — array helpers against
their scalar twins, lifecycle bookkeeping, input validation, and
snapshot interop with the scalar service path.
"""

import numpy as np
import pytest

from repro.apps import build_application
from repro.core.bandit import SystemEnergyOptimizer
from repro.core.budget import BudgetAccountant, EnergyGoal
from repro.core.jouleguard import JouleGuardRuntime
from repro.core.kalman import KalmanBank, ScalarKalmanFilter
from repro.core.pole import pole_for_error, pole_for_error_array
from repro.enforce.ladder import (
    DEFAULT_LADDER,
    EnforcementLadder,
    OverdraftSignal,
    Tier,
)
from repro.enforce.vector import (
    desired_tier_array,
    ladder_observe_array,
    overdraft_signal_arrays,
    throttle_s_array,
)
from repro.fleet import CohortSpec, FleetError, SessionPool
from repro.hw import get_machine
from repro.runtime.harness import prior_shapes
from repro.service.state import SnapshotError, apply_state, capture_state


@pytest.fixture(scope="module")
def spec():
    return CohortSpec.from_pair(
        get_machine("tablet"), build_application("x264")
    )


def _open_pool(spec, n=4, mode="fast", policy=DEFAULT_LADDER):
    pool = SessionPool(spec, policy=policy, mode=mode)
    pool.open(
        np.full(n, 40.0),
        np.arange(n, dtype=np.int64),
        factors=np.linspace(1.2, 2.0, n),
    )
    return pool


class TestArrayTwins:
    def test_kalman_bank_matches_scalar_filter(self):
        rng = np.random.default_rng(3)
        n, steps = 5, 30
        bank = KalmanBank(n)
        scalars = [ScalarKalmanFilter() for _ in range(n)]
        for _ in range(steps):
            z = rng.uniform(0.5, 2.0, size=n)
            mask = rng.random(n) < 0.8
            bank.update(z, mask=mask)
            for i, flt in enumerate(scalars):
                if mask[i]:
                    flt.update(float(z[i]))
        for i, flt in enumerate(scalars):
            if flt.initialized:
                assert float(bank.value[i]) == flt.value
                assert float(bank.variance[i]) == flt.variance

    def test_pole_array_matches_scalar(self):
        deltas = np.asarray([0.0, 0.01, 0.1, 0.5, 1.0, 3.0])
        vector = pole_for_error_array(deltas, 1.0)
        for delta, pole in zip(deltas, vector):
            assert float(pole) == pole_for_error(float(delta), 1.0)

    def test_desired_tier_matches_policy(self):
        rng = np.random.default_rng(7)
        k = 200
        overrun = rng.uniform(0.0, 2.0, k)
        burn = rng.uniform(0.0, 1.5, k)
        headroom = np.where(
            rng.random(k) < 0.1, np.inf, rng.uniform(0.0, 40.0, k)
        )
        vector = desired_tier_array(
            DEFAULT_LADDER, overrun, burn, headroom
        )
        for i in range(k):
            signal = OverdraftSignal(
                projected_overrun=float(overrun[i]),
                burn_fraction=float(burn[i]),
                headroom_steps=float(headroom[i]),
            )
            assert int(vector[i]) == int(
                DEFAULT_LADDER.desired_tier(signal)
            )

    def test_ladder_observe_matches_scalar_walk(self):
        """Random desired-tier walks: the elementwise transition rule
        tracks EnforcementLadder.observe until the scalar kills."""
        rng = np.random.default_rng(11)
        for trial in range(20):
            ladder = EnforcementLadder(policy=DEFAULT_LADDER)
            tier = np.zeros(1, dtype=np.int64)
            calm = np.zeros(1, dtype=np.int64)
            for step in range(1, 60):
                overrun = float(rng.uniform(0.0, 1.5))
                burn = float(rng.uniform(0.0, 1.2))
                headroom = float(rng.uniform(0.0, 30.0))
                signal = OverdraftSignal(
                    projected_overrun=overrun,
                    burn_fraction=burn,
                    headroom_steps=headroom,
                )
                desired = desired_tier_array(
                    DEFAULT_LADDER,
                    np.asarray([overrun]),
                    np.asarray([burn]),
                    np.asarray([headroom]),
                )
                tier, calm = ladder_observe_array(
                    DEFAULT_LADDER, tier, calm, desired
                )
                scalar_tier = ladder.observe(signal, step=step)
                assert int(tier[0]) == int(scalar_tier)
                throttle = throttle_s_array(
                    DEFAULT_LADDER, tier, np.asarray([overrun])
                )
                assert float(throttle[0]) == ladder.throttle_s()
                if scalar_tier is Tier.KILL:
                    break

    def test_overdraft_signal_matches_accountant(self):
        goal = EnergyGoal(total_work=10.0, budget_j=20.0)
        accountant = BudgetAccountant(goal=goal)
        accountant.record(work=4.0, energy_j=12.0)
        overrun, burn, headroom = overdraft_signal_arrays(
            np.asarray([accountant.effective_budget_j]),
            np.asarray([accountant.energy_used_j]),
            np.asarray([accountant.remaining_work]),
            np.asarray([accountant.remaining_energy_j]),
            np.asarray([3.0]),
            np.asarray([12.0]),
        )
        from repro.enforce.ladder import overdraft_signal

        signal = overdraft_signal(accountant, 3.0, 12.0)
        assert float(overrun[0]) == signal.projected_overrun
        assert float(burn[0]) == signal.burn_fraction
        assert float(headroom[0]) == signal.headroom_steps

    def test_signal_infinite_headroom_without_step_energy(self):
        _, _, headroom = overdraft_signal_arrays(
            np.asarray([10.0]),
            np.asarray([1.0]),
            np.asarray([5.0]),
            np.asarray([9.0]),
            np.asarray([0.2]),
            np.asarray([0.0]),
        )
        assert np.isinf(headroom[0])


class TestLifecycle:
    def test_cold_decision_matches_seo_best_index(self, spec):
        pool = _open_pool(spec, n=2)
        machine = get_machine("tablet")
        rate_shape, power_shape = prior_shapes(machine)
        seo = SystemEnergyOptimizer(rate_shape, power_shape, seed=1)
        assert int(pool.d_sys[0]) == seo.best_index

    def test_open_budget_matches_manager_arithmetic(self, spec):
        pool = SessionPool(spec)
        work = np.asarray([40.0])
        pool.open(
            work, np.asarray([0], dtype=np.int64),
            factors=np.asarray([1.6]),
        )
        expected = 40.0 * spec.default_epw / 1.6
        assert float(pool.budget_j[0]) == expected

    def test_open_rejects_bad_inputs(self, spec):
        pool = SessionPool(spec)
        work = np.asarray([10.0])
        seeds = np.asarray([0], dtype=np.int64)
        with pytest.raises(FleetError):
            pool.open(work, seeds)  # neither factors nor budget
        with pytest.raises(FleetError):
            pool.open(
                work, seeds,
                factors=np.asarray([2.0]),
                budget_j=np.asarray([1.0]),
            )
        with pytest.raises(FleetError):
            pool.open(work, seeds, factors=np.asarray([0.5]))
        with pytest.raises(FleetError):
            pool.open(
                work, np.asarray([0, 1], dtype=np.int64),
                factors=np.asarray([1.5]),
            )

    def test_step_requires_live_sessions(self, spec):
        pool = SessionPool(spec)
        one = np.ones(0)
        with pytest.raises(FleetError):
            pool.step(one, one, one, one)

    def test_step_rejects_nonpositive_measurements(self, spec):
        pool = _open_pool(spec, n=2)
        good = np.ones(2)
        with pytest.raises(FleetError):
            pool.step(np.asarray([1.0, 0.0]), good, good, good)
        with pytest.raises(FleetError):
            pool.step(good, np.asarray([1.0, -1.0]), good, good)

    def test_close_and_compact(self, spec):
        pool = _open_pool(spec, n=5)
        pool.close_rows(np.asarray([1, 3]))
        assert pool.alive_count == 3
        kept = pool.compact()
        np.testing.assert_array_equal(kept, [0, 2, 4])
        assert pool.n == 3
        assert pool.alive_count == 3
        # Stepping after compaction still works on every surviving row.
        one = np.ones(3)
        pool.step(one, one, one, one)
        np.testing.assert_array_equal(pool.steps, [1, 1, 1])

    def test_unknown_mode_rejected(self, spec):
        with pytest.raises(FleetError):
            SessionPool(spec, mode="turbo")


class TestSnapshotInterop:
    def _runtime(self):
        machine = get_machine("tablet")
        app = build_application("x264")
        rate_shape, power_shape = prior_shapes(machine)
        seo = SystemEnergyOptimizer(rate_shape, power_shape, seed=3)
        return JouleGuardRuntime(
            seo=seo,
            table=app.table,
            goal=EnergyGoal(total_work=40.0, budget_j=60.0),
        )

    def test_pool_snapshot_warm_starts_scalar_runtime(self, spec):
        pool = _open_pool(spec, n=2)
        one = np.ones(2)
        for _ in range(5):
            pool.step(one, 2.0 * one, 4.0 * one, 8.0 * one)
        document = pool.capture_snapshot(0)
        runtime = self._runtime()
        apply_state(runtime, document, machine="tablet", app="x264")
        assert runtime.seo.updates == int(pool.updates[0])
        restored = capture_state(runtime, "tablet", "x264")
        assert restored["learned"]["seo"]["rate_est"] == (
            pool.rate_est[0].tolist()
        )
        assert runtime.controller.speedup == float(pool.ctrl_speedup[0])

    def test_scalar_snapshot_warm_starts_pool(self, spec):
        from repro.core.types import Measurement

        runtime = self._runtime()
        for _ in range(5):
            runtime.step(
                Measurement(work=1.0, energy_j=2.0, rate=4.0, power_w=8.0)
            )
        document = capture_state(runtime, "tablet", "x264")
        pool = _open_pool(spec, n=3)
        pool.load_snapshot(np.asarray([0, 2]), document)
        learned_rates = document["learned"]["seo"]["rate_est"]
        assert pool.rate_est[0].tolist() == learned_rates
        assert pool.rate_est[2].tolist() == learned_rates
        assert float(pool.epsilon[0]) == runtime.seo.vdbe.epsilon
        # Row 1 was not warm-started.
        assert float(pool.epsilon[1]) == 1.0

    def test_pool_snapshot_round_trips_through_pool(self, spec):
        pool = _open_pool(spec, n=2)
        one = np.ones(2)
        for _ in range(4):
            pool.step(one, 2.0 * one, 4.0 * one, 8.0 * one)
        document = pool.capture_snapshot(1)
        other = _open_pool(spec, n=1)
        other.load_snapshot(np.asarray([0]), document)
        np.testing.assert_array_equal(
            other.rate_est[0], pool.rate_est[1]
        )
        np.testing.assert_array_equal(
            other.visited[0], pool.visited[1]
        )
        assert float(other.pole_delta[0]) == float(pool.pole_delta[1])

    def test_identity_mismatch_rejected(self, spec):
        pool = _open_pool(spec, n=1)
        document = pool.capture_snapshot(0)
        document = dict(document)
        document["machine"] = "server"
        with pytest.raises(SnapshotError):
            pool.load_snapshot(np.asarray([0]), document)

    def test_parameter_mismatch_rejected(self, spec):
        pool = _open_pool(spec, n=1)
        document = pool.capture_snapshot(0)
        tampered = dict(document)
        tampered["learned"] = dict(document["learned"])
        tampered["learned"]["seo"] = dict(document["learned"]["seo"])
        tampered["learned"]["seo"]["alpha"] = 0.123
        with pytest.raises(SnapshotError):
            pool.load_snapshot(np.asarray([0]), tampered)
