"""The fleet engine's design contract: bit-exact scalar equivalence.

A :class:`~repro.fleet.SessionPool` in ``"exact"`` mode must make the
same decisions, bit for bit, as one
:class:`~repro.core.jouleguard.JouleGuardRuntime` +
:class:`~repro.enforce.ladder.EnforcementLadder` pair per session —
over the whole trajectory, including EWMAs, ledgers, enforcement
tiers, DEGRADE pins, and KILL events.  :func:`repro.fleet.run_lockstep`
drives both sides over shared measurements and compares every field
with no tolerances; these tests assert the divergence list is empty
for mixed cohorts that exercise every tier.
"""

import numpy as np
import pytest

from repro.apps import build_application
from repro.fleet import (
    CohortHardwareModel,
    CohortSpec,
    ScalarSessionLoop,
    SessionPool,
    run_lockstep,
)
from repro.hw import GENERIC_PROFILE, get_machine
from repro.hw.vector import MachineTables


def _cohort(machine_name, app_name, n, seed, waste=None, factors=None):
    machine = get_machine(machine_name)
    app = build_application(app_name)
    spec = CohortSpec.from_pair(machine, app)
    tables = MachineTables.build(machine, GENERIC_PROFILE)
    model = CohortHardwareModel(
        tables, spec, n, waste=waste, seed=seed + 17
    )
    work = np.full(n, 40.0)
    seeds = np.arange(n, dtype=np.int64) * 13 + seed
    if factors is None:
        factors = np.linspace(1.2, 2.5, n)
    pool = SessionPool(spec, mode="exact")
    pool.open(work, seeds, factors=factors)
    loops = [
        ScalarSessionLoop(
            machine,
            app,
            float(work[i]),
            int(seeds[i]),
            factor=float(factors[i]),
        )
        for i in range(n)
    ]
    return pool, loops, model


class TestBitExactEquivalence:
    def test_mixed_cohort_with_kills(self):
        """The centerpiece: healthy + runaway sessions over 160 steps.

        Half the cohort runs with heavy energy waste so the ladder
        climbs all the way to KILL; the lockstep run must stay
        bit-exact through the escalation, the DEGRADE pins, and the
        kill events themselves.
        """
        n = 16
        waste = np.ones(n)
        waste[n // 2 :] = 3.0
        pool, loops, model = _cohort(
            "tablet", "x264", n, seed=11, waste=waste
        )
        mismatches = run_lockstep(pool, loops, model, n_steps=160)
        assert mismatches == []
        # The scenario must actually exercise the hard tiers.
        assert any(loop.killed for loop in loops)
        assert bool(np.any(pool.killed))
        assert int(pool.tier_peak.max()) == 4
        # And the healthy half must have finished or stayed nominal.
        assert any(not loop.killed for loop in loops)

    def test_mobile_swaptions_cohort(self):
        """Second Table 3 shape x app pair (mobile, C=128)."""
        n = 8
        waste = np.ones(n)
        waste[-2:] = 4.0
        pool, loops, model = _cohort(
            "mobile", "swaptions", n, seed=23, waste=waste
        )
        mismatches = run_lockstep(pool, loops, model, n_steps=120)
        assert mismatches == []

    def test_unguarded_pool_matches_bare_runtime(self):
        """policy=None: pure Algorithm 1, no enforcement ladder."""
        n = 6
        machine = get_machine("tablet")
        app = build_application("x264")
        spec = CohortSpec.from_pair(machine, app)
        tables = MachineTables.build(machine, GENERIC_PROFILE)
        model = CohortHardwareModel(tables, spec, n, seed=5)
        work = np.full(n, 30.0)
        seeds = np.arange(n, dtype=np.int64) * 7 + 3
        factors = np.linspace(1.3, 2.0, n)
        pool = SessionPool(spec, policy=None, mode="exact")
        pool.open(work, seeds, factors=factors)
        loops = [
            ScalarSessionLoop(
                machine,
                app,
                float(work[i]),
                int(seeds[i]),
                factor=float(factors[i]),
                policy=None,
            )
            for i in range(n)
        ]
        assert run_lockstep(pool, loops, model, n_steps=80) == []

    def test_lockstep_rejects_misaligned_inputs(self):
        pool, loops, model = _cohort("tablet", "x264", 4, seed=2)
        with pytest.raises(ValueError):
            run_lockstep(pool, loops[:-1], model, n_steps=1)


class TestFastModeDeterminism:
    def test_same_seed_same_trajectory(self):
        """Fast mode is deterministic given pool seed + open schedule."""
        ledgers = []
        for _ in range(2):
            machine = get_machine("tablet")
            app = build_application("x264")
            spec = CohortSpec.from_pair(machine, app)
            tables = MachineTables.build(machine, GENERIC_PROFILE)
            model = CohortHardwareModel(tables, spec, 12, seed=9)
            pool = SessionPool(spec, mode="fast", seed=42)
            pool.open(
                np.full(12, 50.0),
                np.arange(12, dtype=np.int64),
                factors=np.linspace(1.2, 2.2, 12),
            )
            for t in range(60):
                work, energy, rate, power = model.measurements(
                    t, pool.d_sys, pool.d_fpos
                )
                pool.step(work, energy, rate, power)
                model.prune(t)
            ledgers.append(
                (
                    pool.energy_used_j.copy(),
                    pool.d_sys.copy(),
                    pool.d_fpos.copy(),
                    pool.tier.copy(),
                    pool.epsilon.copy(),
                )
            )
        for first, second in zip(*ledgers):
            np.testing.assert_array_equal(first, second)

    def test_fast_and_exact_agree_on_ledgers(self):
        """RNG mode changes exploration, not accounting: identical
        measurements produce identical ledger arithmetic."""
        for mode in ("fast", "exact"):
            machine = get_machine("tablet")
            app = build_application("x264")
            spec = CohortSpec.from_pair(machine, app)
            pool = SessionPool(spec, mode=mode, seed=1)
            pool.open(
                np.full(3, 20.0),
                np.arange(3, dtype=np.int64),
                factors=np.full(3, 1.5),
            )
            work = np.full(3, 1.0)
            energy = np.full(3, 2.0)
            rate = np.full(3, 4.0)
            power = np.full(3, 8.0)
            pool.step(work, energy, rate, power)
            np.testing.assert_array_equal(pool.work_done, work)
            np.testing.assert_array_equal(pool.energy_used_j, energy)
