"""Fleet simulator: determinism, scenario serialization, guarantees.

These run small custom scenarios (a few thousand devices) so the suite
stays fast; the full ``smoke`` preset is driven end to end by the CI
fleet-smoke job via ``python -m repro fleet --preset smoke --smoke``.
"""

import dataclasses

import pytest

from repro.fleet import (
    CohortScenario,
    FleetMetrics,
    FleetScenario,
    FleetSimulator,
    preset_scenario,
)
from repro.service import SnapshotStore


def _tiny_scenario(seed=0, **overrides):
    scenario = FleetScenario(
        name="tiny",
        cohorts=(
            CohortScenario(
                machine="tablet",
                app="x264",
                weight=1.0,
                min_work=20.0,
                max_work=30.0,
                runaway_fraction=0.1,
                runaway_waste=25.0,
                runaway_work_multiplier=3.0,
            ),
        ),
        devices=1500,
        n_epochs=12,
        steps_per_epoch=2,
        arrivals="steady",
        mean_lifetime_epochs=6,
        max_concurrent=5000,
        warmup_steps=20,
        seed=seed,
    )
    return dataclasses.replace(scenario, **overrides)


class TestDeterminism:
    def test_same_seed_same_report(self):
        first = FleetSimulator(_tiny_scenario(seed=3)).run()
        second = FleetSimulator(_tiny_scenario(seed=3)).run()
        assert first.as_dict() == second.as_dict()

    def test_different_seed_different_report(self):
        first = FleetSimulator(_tiny_scenario(seed=3)).run()
        second = FleetSimulator(_tiny_scenario(seed=4)).run()
        assert first.as_dict() != second.as_dict()


class TestGuarantees:
    def test_hard_tiers_never_overdraft(self):
        report = FleetSimulator(_tiny_scenario(seed=1)).run()
        assert report.opened > 0
        assert report.killed > 0
        assert report.hard_tier_sessions > 0
        assert report.hard_tier_overdraft == 0

    def test_accounting_balances(self):
        report = FleetSimulator(_tiny_scenario(seed=2)).run()
        retired = (
            report.completed
            + report.killed
            + report.churned
            + report.running
        )
        assert retired == report.opened
        assert report.opened + report.shed >= report.opened

    def test_shedding_respects_max_concurrent(self):
        report = FleetSimulator(
            _tiny_scenario(seed=5, max_concurrent=50)
        ).run()
        assert report.shed > 0

    def test_warm_start_toggle(self):
        warm = FleetSimulator(_tiny_scenario(seed=6)).run()
        cold = FleetSimulator(
            _tiny_scenario(seed=6, warm_start=False)
        ).run()
        assert warm.warm_started > 0
        assert cold.warm_started == 0

    def test_warm_snapshots_land_in_store(self):
        store = SnapshotStore()
        FleetSimulator(_tiny_scenario(seed=7), store=store).run()
        assert store.get("tablet", "x264") is not None


class TestMetrics:
    def test_prometheus_families_rendered(self):
        metrics = FleetMetrics()
        FleetSimulator(_tiny_scenario(seed=8), metrics=metrics).run()
        text = metrics.render()
        for family in (
            "jg_fleet_sessions_opened_total",
            "jg_fleet_sessions_retired_total",
            "jg_fleet_device_steps_total",
            "jg_fleet_session_accuracy",
            "jg_fleet_session_burn_fraction",
        ):
            assert family in text

    def test_report_quantiles_present(self):
        report = FleetSimulator(_tiny_scenario(seed=9)).run()
        as_dict = report.as_dict()
        assert "burn_fraction" in as_dict
        assert "accuracy" in as_dict
        assert as_dict["burn_fraction"]["max"] <= 1.5


class TestScenarioSerialization:
    def test_json_round_trip(self):
        scenario = _tiny_scenario(seed=11)
        restored = FleetScenario.from_json(scenario.to_json())
        assert restored == scenario

    def test_presets_round_trip(self):
        for name in ("smoke", "city", "million"):
            scenario = preset_scenario(name, seed=1)
            assert FleetScenario.from_json(scenario.to_json()) == scenario

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            preset_scenario("galaxy")

    def test_million_preset_shape(self):
        scenario = preset_scenario("million")
        assert scenario.devices >= 1_000_000
        assert scenario.max_concurrent <= 100_000
