"""Chaos tests for the enforcement ladder's hard guarantees."""

import pytest

from repro.faults import run_enforcement_chaos


@pytest.fixture(scope="module")
def chaos_result():
    return run_enforcement_chaos()


class TestEnforcementChaos:
    def test_default_sweep_passes(self, chaos_result):
        assert chaos_result["passed"], chaos_result["violations"]
        assert chaos_result["violations"] == []

    def test_honest_session_runs_free(self, chaos_result):
        honest = [
            s
            for s in chaos_result["sessions"]
            if s["inflation"] == 1.0
        ]
        assert len(honest) == 1
        assert honest[0]["killed"] is False
        assert honest[0]["steps"] == chaos_result["steps"]
        assert honest[0]["tier"] in ("nominal", "advise", "degrade")

    def test_strong_runaway_is_killed_with_zero_overdraft(
        self, chaos_result
    ):
        runaway = [
            s
            for s in chaos_result["sessions"]
            if s["inflation"] == 3.5
        ]
        assert len(runaway) == 1
        assert runaway[0]["killed"] is True
        assert runaway[0]["steps"] < chaos_result["steps"]
        assert runaway[0]["hard_overdraft_j"] == 0.0
        # The kill was reached one rung at a time.
        labels = [t["to"] for t in runaway[0]["transitions"]]
        assert labels[-1] == "kill"
        assert "degrade" in labels

    def test_stats_count_the_kill(self, chaos_result):
        stats = chaos_result["stats"]
        assert stats["sessions_killed"] == 1
        assert stats["sessions"] == 0  # everything closed or killed

    def test_determinism_across_runs(self, chaos_result):
        replay = run_enforcement_chaos()
        assert replay["sessions"] == chaos_result["sessions"]

    def test_gentler_runaway_survives_on_tolerance(self):
        # A x2 runaway sits in the tolerance regime: the AAO absorbs
        # it rather than the ladder killing it (predictive kills only
        # fire when burn AND overrun AND headroom all say runaway).
        result = run_enforcement_chaos(inflations=(2.0,))
        (session,) = result["sessions"]
        assert session["killed"] is False
        assert result["passed"], result["violations"]
