"""Daemon crash/restart: warm resume from the snapshot store.

The scenario kills a daemon mid-session (its thread stops; live
sessions die with it), starts a fresh daemon over the same snapshot
directory, re-opens the session warm, and compares convergence against
a cold control run.  Recovery must not cost learned state and must not
overdraw the budget pool.
"""

import pytest

from repro.faults import run_restart_scenario, shipped_plans


@pytest.fixture(scope="module")
def scenario():
    return run_restart_scenario(
        shipped_plans()["crash-restart"], steps_after=25
    )


def test_scenario_passes_end_to_end(scenario):
    assert scenario["passed"], scenario


def test_restarted_session_resumes_warm(scenario):
    # The pre-crash session snapshotted; the re-opened session must
    # find that state in the store, not start from scratch.
    assert scenario["pre_crash_steps"] == 10  # the plan's crash step
    assert scenario["warm_resumed"]


def test_warm_resume_converges_no_slower_than_cold(scenario):
    assert (
        scenario["resumed_convergence"]
        <= scenario["cold_convergence"]
    )


def test_no_budget_overdraft_across_restart(scenario):
    assert scenario["pool_ok"]
    for key in ("resumed_report", "cold_report"):
        report = scenario[key]
        assert (
            report["energy_used_j"]
            <= report["effective_budget_j"] * 1.05
            or report["infeasible"]
        )


def test_explicit_steps_override():
    result = run_restart_scenario(
        shipped_plans()["crash-restart"],
        steps_before=5,
        steps_after=15,
    )
    assert result["pre_crash_steps"] == 5
    assert result["warm_resumed"]
