"""Service-level chaos: lossy transport, retries, idempotent replay."""

import pytest

from repro.faults import run_service_chaos
from repro.faults.models import FaultPlan, NetworkFaults, shipped_plans
from repro.service.client import (
    RetryPolicy,
    ServiceClient,
    drive_synthetic_session,
)
from repro.service.protocol import PROTOCOL_VERSION, encode_message
from repro.service.server import RID_CACHE_MAX, ServerThread, ServiceServer
from repro.service.sessions import SessionManager


def lossy_plan(drop=0.10, seed=0):
    return FaultPlan(
        name="lossy",
        seed=seed,
        network=NetworkFaults(drop_request_prob=drop),
    )


class TestRetryUnderChaos:
    def test_shipped_network_plan_passes(self):
        report = run_service_chaos(
            shipped_plans()["network-drop"], n_sessions=3, steps=20
        )
        assert report["passed"], report
        assert report["sessions"] == 3
        dropped = (
            report["chaos"]["dropped_requests"]
            + report["chaos"]["dropped_responses"]
        )
        assert dropped > 0  # chaos actually fired
        assert report["retries"] >= dropped  # every drop was retried

    def test_acceptance_retrying_client_survives_ten_pct_drops(self):
        # The PR's acceptance bar: a 3-session workload against 10%
        # request drops completes with retries where the fail-fast
        # client raises (see test below).
        report = run_service_chaos(
            lossy_plan(drop=0.10), n_sessions=3, steps=25
        )
        assert report["passed"], report
        assert report["retries"] > 0
        assert report["reconnects"] > 0

    def test_fail_fast_client_raises_under_same_chaos(self, tmp_path):
        sock = str(tmp_path / "lossy.sock")
        manager = SessionManager(global_budget_j=1e7)
        chaos = lossy_plan(drop=0.10).request_chaos()
        with ServerThread(manager, unix_path=sock, chaos=chaos):
            with pytest.raises((ConnectionError, OSError)):
                for index in range(3):
                    with ServiceClient(unix_path=sock) as client:
                        drive_synthetic_session(
                            client,
                            machine="tablet",
                            app="x264",
                            factor=1.5,
                            steps=25,
                            seed=index,
                            warm_start=False,
                        )

    def test_chaos_counters_surface_on_server(self, tmp_path):
        sock = str(tmp_path / "counted.sock")
        manager = SessionManager(global_budget_j=1e7)
        chaos = lossy_plan(drop=0.15).request_chaos()
        with ServerThread(manager, unix_path=sock, chaos=chaos) as thread:
            client = ServiceClient(
                unix_path=sock,
                retry=RetryPolicy(max_attempts=8, base_delay_s=0.01),
            )
            drive_synthetic_session(
                client,
                machine="tablet",
                app="x264",
                factor=1.5,
                steps=20,
                seed=0,
                warm_start=False,
            )
            client.close_connection()
            server = thread.server
            assert (
                server.chaos_dropped_requests
                == chaos.dropped_requests
            )
            assert server.chaos_dropped_requests > 0


class TestRidIdempotency:
    def server(self):
        return ServiceServer(
            SessionManager(global_budget_j=1e6), unix_path="/unused"
        )

    def open_line(self, rid="rid-1"):
        return encode_message(
            {
                "type": "open_session",
                "rid": rid,
                "machine": "tablet",
                "app": "x264",
                "factor": 1.5,
                "total_work": 50.0,
                "seed": 0,
                "warm_start": False,
            }
        )

    def test_retried_rid_replays_without_reexecuting(self):
        server = self.server()
        first = server.handle_line(self.open_line())
        replay = server.handle_line(self.open_line())
        assert replay == first
        assert replay["rid"] == "rid-1"
        assert server.replayed_responses == 1
        # Only one session was actually opened.
        assert server.manager.stats()["sessions_opened"] == 1

    def test_distinct_rids_execute_independently(self):
        server = self.server()
        first = server.handle_line(self.open_line("rid-a"))
        second = server.handle_line(self.open_line("rid-b"))
        assert first["session"] != second["session"]
        assert server.replayed_responses == 0

    def test_error_envelopes_are_not_cached(self):
        server = self.server()
        bad = encode_message(
            {"type": "step", "rid": "rid-err", "session": "nope",
             "measurement": {"work": 1, "energy_j": 1, "rate": 1,
                             "power_w": 1}}
        )
        first = server.handle_line(bad)
        second = server.handle_line(bad)
        assert not first["ok"] and not second["ok"]
        assert server.replayed_responses == 0

    def test_invalid_rid_is_rejected(self):
        server = self.server()
        response = server.handle_line(
            encode_message(
                {
                    "type": "hello",
                    "version": PROTOCOL_VERSION,
                    "rid": "",
                }
            )
        )
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"

    def test_cache_is_bounded(self):
        server = self.server()
        for index in range(RID_CACHE_MAX + 10):
            server.handle_line(
                encode_message(
                    {
                        "type": "hello",
                        "version": PROTOCOL_VERSION,
                        "rid": f"r{index}",
                    }
                )
            )
        assert len(server._rid_cache) == RID_CACHE_MAX
        # The oldest entries were evicted, the newest survive.
        assert "r0" not in server._rid_cache
        assert f"r{RID_CACHE_MAX + 9}" in server._rid_cache


class TestSensorOkPlumbing:
    def test_step_carries_sensor_ok_to_the_manager(self):
        manager = SessionManager(global_budget_j=1e6, degrade_after=2)
        server = ServiceServer(manager, unix_path="/unused")
        opened = server.handle_line(
            encode_message(
                {
                    "type": "open_session",
                    "machine": "tablet",
                    "app": "x264",
                    "factor": 1.5,
                    "total_work": 50.0,
                    "warm_start": False,
                }
            )
        )
        step = {
            "type": "step",
            "session": opened["session"],
            "measurement": {
                "work": 1.0,
                "energy_j": 0.6,
                "rate": 30.0,
                "power_w": 18.0,
                "sensor_ok": False,
            },
        }
        server.handle_line(encode_message(step))
        response = server.handle_line(encode_message(step))
        assert response["ok"]
        report = manager.report(opened["session"])
        assert report["sensor_failures"] == 2
        assert report["degraded"]
        assert manager.stats()["sessions_degraded"] == 1


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        import random

        policy = RetryPolicy(
            base_delay_s=0.1, max_delay_s=0.5, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.delay_s(n, rng) for n in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_only_shrinks(self):
        import random

        policy = RetryPolicy(
            base_delay_s=0.1, max_delay_s=1.0, jitter=0.5
        )
        rng = random.Random(1)
        for attempt in range(20):
            delay = policy.delay_s(attempt % 4, rng)
            ceiling = min(1.0, 0.1 * 2 ** (attempt % 4))
            assert 0.5 * ceiling <= delay <= ceiling

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
