"""Chaos harness invariants over the shipped loop-level fault plans.

Each plan is verified across severities for the four paper-level
invariants: no silent budget overdraft, pole confined to [0, 1),
accuracy that never improves under heavier faults, and exact
decision-trace replay under the same seed.
"""

import pytest

from repro.faults import (
    ChaosRunResult,
    run_chaos,
    shipped_plans,
    verify_plan,
)
from repro.faults.models import FaultPlan, SensorFaults

#: The shipped plans exercised through the in-process loop (network
#: and crash plans go through the service scenarios instead).
LOOP_PLANS = (
    "sensor-dropout",
    "sensor-stuck",
    "sensor-spike",
    "stale-measurements",
    "budget-cut",
)

ITERATIONS = 80


@pytest.fixture(scope="module")
def reports():
    plans = shipped_plans()
    return {
        name: verify_plan(plans[name], n_iterations=ITERATIONS)
        for name in LOOP_PLANS
    }


@pytest.mark.parametrize("name", LOOP_PLANS)
def test_plan_upholds_all_invariants(reports, name):
    report = reports[name]
    assert report["passed"], "\n".join(report["violations"])


@pytest.mark.parametrize("name", LOOP_PLANS)
def test_budget_never_silently_overdrawn(reports, name):
    for run in reports[name]["runs"]:
        assert not run["overdrawn"]


@pytest.mark.parametrize("name", LOOP_PLANS)
def test_pole_stays_in_stability_region(reports, name):
    for run in reports[name]["runs"]:
        assert 0.0 <= run["min_pole"] <= run["max_pole"] < 1.0


def test_faults_actually_fired(reports):
    # The invariants are vacuous if the plans inject nothing.
    counters = {
        name: reports[name]["runs"][-1]["counters"]
        for name in LOOP_PLANS
    }
    assert counters["sensor-dropout"]["dropouts"] > 0
    assert counters["sensor-stuck"]["stuck_windows"] > 0
    assert counters["sensor-spike"]["spikes"] > 0
    assert counters["stale-measurements"]["stale_deliveries"] > 0


def test_severity_zero_matches_unfaulted_plan(reports):
    # A plan at severity 0 must behave exactly like no plan at all.
    baseline = run_chaos(
        FaultPlan(name="none"), n_iterations=ITERATIONS
    )
    faulted = reports["sensor-dropout"]["runs"][0]
    assert faulted["severity"] == 0.0
    assert faulted["counters"]["dropouts"] == 0
    assert faulted["spent_j"] == pytest.approx(baseline.spent_j)


def test_replay_is_decision_for_decision():
    plan = shipped_plans()["sensor-dropout"]
    first = run_chaos(plan, n_iterations=60, seed=3)
    second = run_chaos(plan, n_iterations=60, seed=3)
    assert first.fingerprint == second.fingerprint
    assert len(first.fingerprint) == first.steps


def test_different_seeds_diverge():
    plan = shipped_plans()["sensor-dropout"]
    first = run_chaos(plan, n_iterations=60, seed=3)
    second = run_chaos(plan, n_iterations=60, seed=4)
    assert first.fingerprint != second.fingerprint


def test_persistent_sensor_loss_degrades_not_crashes():
    # 100% dropout: hold-over carries the loop briefly, then the sensor
    # is declared lost and the run pins the safe fallback and stops.
    plan = FaultPlan(
        name="dead-sensor", sensor=SensorFaults(dropout_prob=1.0)
    )
    result = run_chaos(plan, n_iterations=60, max_consecutive_holds=5)
    assert result.sensor_lost
    assert result.steps < 60
    assert not result.overdrawn


def test_overdrawn_property_semantics():
    base = dict(
        plan_name="x",
        severity=1.0,
        steps=10,
        effective_budget_j=100.0,
        infeasible=False,
        mean_accuracy=1.0,
        min_pole=0.0,
        max_pole=0.0,
        sensor_lost=False,
        fingerprint=(),
    )
    within = ChaosRunResult(spent_j=104.0, **base)
    beyond = ChaosRunResult(spent_j=106.0, **base)
    reported = ChaosRunResult(
        spent_j=106.0, **{**base, "infeasible": True}
    )
    assert not within.overdrawn  # inside the 5% tolerance
    assert beyond.overdrawn
    assert not reported.overdrawn  # infeasibility was reported


def test_verify_plan_reports_monotone_violation_without_raising():
    # verify_plan reports rather than raises; feed it a single-severity
    # sweep where the invariant machinery still runs end to end.
    plan = shipped_plans()["sensor-dropout"]
    report = verify_plan(
        plan, n_iterations=40, severities=(1.0,)
    )
    assert set(report) == {"plan", "passed", "violations", "runs"}
    assert len(report["runs"]) == 1
