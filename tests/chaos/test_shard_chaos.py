"""Chaos: worker-process crashes under the shard router.

A :class:`FaultPlan` crash schedule decides when a pinned worker
process is killed outright (SIGKILL — no goodbye, no flush).  The
claims under test are the shard layer's crash contract:

* the dead worker's sessions answer ``unavailable`` once (the request
  that discovers the corpse) and ``unknown_session`` after the restart
  bumps the epoch — never a hang, never a stale answer;
* the crashed worker's entire lease is forfeited to the ledger's crash
  sink, and the ledger stays exactly balanced through the whole storm
  (joules can be lost to a crash, never double-spent);
* a successor spawns with the next epoch and serves fresh sessions,
  which warm-start from the snapshot the victim persisted to the
  shared ``--state-dir`` before dying;
* the enforcement ladder's hard guarantee survives the restart: a
  runaway session on the recovered fleet is still killed with exactly
  zero hard-tier overdraft.
"""

import pytest

from repro.core.types import Measurement
from repro.faults.models import CrashFaults, FaultPlan
from repro.service import (
    ServiceClient,
    ServiceError,
    ShardRouter,
    ShardThread,
)

BUDGET_J = 1e4
PLAN = FaultPlan(
    name="shard-worker-crash",
    seed=42,
    crash=CrashFaults(at_step=6),
)


def _heartbeat(fraction_of, granted_budget_j):
    energy_j = fraction_of * granted_budget_j
    return Measurement(
        work=1.0, energy_j=energy_j, rate=10.0, power_w=energy_j
    )


def _open_on_both_workers(client):
    """Open sessions until both workers own at least one.

    Placement hashes (client, seed, ordinal), so the spread is
    deterministic; a handful of opens always covers two workers.
    """
    by_worker = {}
    for ordinal in range(8):
        opened = client.open_session(
            machine="tablet",
            app="x264",
            factor=1.5,
            total_work=200.0,
            seed=ordinal,
            client_name=f"chaos{ordinal}",
        )
        worker = opened.session.split("e", 1)[0]
        by_worker.setdefault(worker, opened)
        if len(by_worker) == 2:
            return by_worker
    raise AssertionError("eight opens never reached the second worker")


@pytest.fixture(params=["scalar", "vector"])
def fleet(tmp_path, request):
    # The whole crash contract must hold identically under both step
    # execution backends: a SIGKILL lands on vector workers with
    # sessions resident in the pool, and the forfeit/restart/guarantee
    # story may not change by a joule.  The solo fast path would evict
    # a serially-driven session back to scalar objects, so disable it
    # — the kill must land while state lives in the pool arrays.
    router = ShardRouter(
        n_shards=2,
        budget_j=BUDGET_J,
        unix_path=str(tmp_path / "router.sock"),
        state_dir=str(tmp_path / "store"),
        run_dir=str(tmp_path / "run"),
        exec_mode=request.param,
        vexec_solo_after=-1,
    )
    with ShardThread(router):
        with ServiceClient(unix_path=router.unix_path) as client:
            yield router, client


def test_worker_crash_forfeits_recovers_and_keeps_the_guarantee(fleet):
    router, client = fleet
    by_worker = _open_on_both_workers(client)
    (victim_worker, victim), (_, survivor) = sorted(by_worker.items())
    victim_index = int(victim_worker[1:])

    # Warm both sessions up to the scheduled crash step, snapshotting
    # the victim's learned state to the shared store along the way.
    for step in range(PLAN.crash.at_step):
        for opened in (victim, survivor):
            client.step(
                opened.session,
                _heartbeat(0.02, opened.granted_budget_j),
            )
        if step == PLAN.crash.at_step // 2:
            client.snapshot(victim.session)
    old_epoch = router._workers[victim_index].epoch

    # The crash: SIGKILL the worker process mid-conversation.
    router._workers[victim_index].process.kill()
    router._workers[victim_index].process.wait()

    # First contact discovers the corpse and answers `unavailable`
    # while the router spawns the successor ...
    with pytest.raises(ServiceError) as excinfo:
        client.step(
            victim.session,
            _heartbeat(0.02, victim.granted_budget_j),
        )
    assert excinfo.value.code == "unavailable"
    # ... and afterwards the stale epoch makes the session unknown.
    with pytest.raises(ServiceError) as excinfo:
        client.step(
            victim.session,
            _heartbeat(0.02, victim.granted_budget_j),
        )
    assert excinfo.value.code == "unknown_session"
    assert router._workers[victim_index].epoch == old_epoch + 1
    assert router._workers[victim_index].alive()

    # The ledger wrote the dead worker's lease off to the crash sink
    # and still balances to the global budget exactly.
    router.ledger.assert_balanced()
    assert router.ledger.forfeited_uj > 0
    assert router.ledger.forfeits == 1

    # The survivor never noticed.
    survivor_decision = client.step(
        survivor.session,
        _heartbeat(0.02, survivor.granted_budget_j),
    )
    assert "system_index" in survivor_decision

    # Fresh sessions land on the successor and warm-start from the
    # snapshot the victim persisted before dying.
    reopened = None
    for ordinal in range(8):
        candidate = client.open_session(
            machine="tablet",
            app="x264",
            factor=1.5,
            total_work=200.0,
            seed=3,
            client_name=f"reopen{ordinal}",
        )
        if candidate.session.startswith(f"w{victim_index}e"):
            reopened = candidate
            break
        client.close(candidate.session)
    assert reopened is not None, "successor never took a session"
    assert reopened.session.startswith(
        f"w{victim_index}e{old_epoch + 1}-"
    )
    assert reopened.warm is True

    # Hard guarantee after recovery: a runaway on the healed fleet is
    # still killed with zero hard-tier overdraft.
    runaway = client.open_session(
        machine="tablet",
        app="x264",
        factor=1.5,
        total_work=100.0,
        seed=99,
        warm_start=False,
        client_name="runaway",
    )
    report = None
    for _ in range(40):
        try:
            client.step(
                runaway.session,
                _heartbeat(0.15, runaway.granted_budget_j),
            )
        except ServiceError as exc:
            report = getattr(exc, "report", None)
            break
    assert report is not None, "runaway was never killed"
    assert report["tier"] == "kill"
    assert report["hard_overdraft_j"] == 0.0
    router.ledger.assert_balanced()


def test_crash_plan_is_a_first_class_fault_plan():
    # The schedule driving the test above composes like any other
    # fault plan: reseeding keeps the crash step, scaling is identity.
    assert PLAN.reseeded(7).crash.at_step == PLAN.crash.at_step
    assert PLAN.crash.scaled(2.0) is PLAN.crash
