"""Unit tests for the seeded fault models themselves."""

import numpy as np
import pytest

from repro.faults.models import (
    BudgetRevision,
    ChannelFaults,
    CrashFaults,
    FaultPlan,
    FaultyPowerSensor,
    MeasurementChannel,
    NetworkFaults,
    RequestChaos,
    SensorFaults,
    shipped_plans,
)
from repro.core.types import Measurement
from repro.hw.sensors import SensorReadError


class ConstantSensor:
    """A perfect inner sensor: reads exactly the true power."""

    def read(self, true_package_power_w):
        return true_package_power_w


def measurement(tag):
    return Measurement(
        work=1.0, energy_j=float(tag), rate=30.0, power_w=18.0
    )


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"dropout_prob": -0.1},
        {"dropout_prob": 1.5},
        {"stuck_prob": 2.0},
        {"spike_prob": -1.0},
        {"stuck_hold": 0},
        {"spike_magnitude": 0.0},
    ])
    def test_sensor_faults_reject_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SensorFaults(**kwargs)

    def test_channel_faults_reject_bad_values(self):
        with pytest.raises(ValueError):
            ChannelFaults(stale_prob=1.1)
        with pytest.raises(ValueError):
            ChannelFaults(max_age=0)

    def test_budget_revision_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BudgetRevision(at_step=-1, scale=0.5)
        with pytest.raises(ValueError):
            BudgetRevision(at_step=1, scale=0.0)

    def test_network_faults_reject_bad_values(self):
        with pytest.raises(ValueError):
            NetworkFaults(drop_request_prob=1.2)
        with pytest.raises(ValueError):
            NetworkFaults(delay_s=-1.0)

    def test_crash_faults_reject_bad_step(self):
        with pytest.raises(ValueError):
            CrashFaults(at_step=0)

    def test_plan_rejects_negative_severity(self):
        with pytest.raises(ValueError):
            FaultPlan(name="x").scaled(-0.5)


class TestScaling:
    def test_severity_zero_disables_probabilistic_faults(self):
        plan = FaultPlan(
            name="x",
            sensor=SensorFaults(dropout_prob=0.5, spike_prob=0.2),
            channel=ChannelFaults(stale_prob=0.3),
            network=NetworkFaults(drop_request_prob=0.4),
        ).scaled(0.0)
        assert plan.sensor.dropout_prob == 0.0
        assert plan.sensor.spike_prob == 0.0
        assert plan.channel.stale_prob == 0.0
        assert plan.network.drop_request_prob == 0.0

    def test_probabilities_saturate_at_one(self):
        faults = SensorFaults(dropout_prob=0.6).scaled(5.0)
        assert faults.dropout_prob == 1.0

    def test_budget_revision_interpolates_toward_identity(self):
        revision = BudgetRevision(at_step=10, scale=0.5)
        assert revision.scaled(0.0).scale == pytest.approx(1.0)
        assert revision.scaled(0.5).scale == pytest.approx(0.75)
        assert revision.scaled(1.0).scale == pytest.approx(0.5)

    def test_severity_one_is_identity(self):
        plan = shipped_plans()["sensor-dropout"]
        assert plan.scaled(1.0) == plan

    def test_reseeded_changes_only_seed(self):
        plan = shipped_plans()["sensor-dropout"]
        other = plan.reseeded(99)
        assert other.seed == 99
        assert other.sensor == plan.sensor
        assert other.name == plan.name


class TestFaultyPowerSensor:
    def plan(self, seed=0, **sensor_kwargs):
        return FaultPlan(
            name="t", seed=seed, sensor=SensorFaults(**sensor_kwargs)
        )

    def readings(self, plan, n=60, power=20.0):
        sensor = plan.wrap_sensor(ConstantSensor())
        out = []
        for _ in range(n):
            try:
                out.append(sensor.read(power))
            except SensorReadError:
                out.append(None)
        return out, sensor

    def test_dropout_raises_and_counts(self):
        readings, sensor = self.readings(
            self.plan(dropout_prob=0.3), n=100
        )
        dropped = sum(1 for value in readings if value is None)
        assert dropped == sensor.dropouts
        assert 10 <= dropped <= 50  # ~30 expected

    def test_same_seed_same_fault_schedule(self):
        first, _ = self.readings(self.plan(seed=7, dropout_prob=0.3))
        second, _ = self.readings(self.plan(seed=7, dropout_prob=0.3))
        assert first == second

    def test_different_seed_different_schedule(self):
        first, _ = self.readings(self.plan(seed=1, dropout_prob=0.3))
        second, _ = self.readings(self.plan(seed=2, dropout_prob=0.3))
        assert first != second

    def test_stuck_window_repeats_last_good_value(self):
        plan = self.plan(stuck_prob=1.0, stuck_hold=3)
        sensor = plan.wrap_sensor(ConstantSensor())
        first = sensor.read(10.0)  # good read, starts a stuck window
        held = [sensor.read(10.0 + step) for step in range(1, 4)]
        assert held == [first] * 3
        assert sensor.stuck_windows >= 1

    def test_spike_multiplies_reading(self):
        plan = self.plan(spike_prob=1.0, spike_magnitude=4.0)
        sensor = plan.wrap_sensor(ConstantSensor())
        assert sensor.read(10.0) == pytest.approx(40.0)
        assert sensor.spikes == 1

    def test_composing_channel_does_not_shift_sensor_stream(self):
        # Fixed SeedSequence spawn indices: adding an unrelated fault
        # component must not perturb the sensor's fault schedule.
        bare = FaultPlan(
            name="t", seed=3, sensor=SensorFaults(dropout_prob=0.3)
        )
        composed = FaultPlan(
            name="t",
            seed=3,
            sensor=SensorFaults(dropout_prob=0.3),
            channel=ChannelFaults(stale_prob=0.5),
        )
        first, _ = self.readings(bare)
        second, _ = self.readings(composed)
        assert first == second

    def test_no_sensor_component_is_passthrough(self):
        plan = FaultPlan(name="t")
        inner = ConstantSensor()
        assert plan.wrap_sensor(inner) is inner


class TestMeasurementChannel:
    def test_transparent_without_faults(self):
        channel = MeasurementChannel()
        sent = measurement(1)
        assert channel.transmit(sent) is sent

    def test_stale_delivery_replays_older_measurement(self):
        plan = FaultPlan(
            name="t", channel=ChannelFaults(stale_prob=1.0, max_age=3)
        )
        channel = plan.measurement_channel()
        first = channel.transmit(measurement(1))
        assert first.energy_j == 1.0  # queue of one: nothing older
        second = channel.transmit(measurement(2))
        assert second.energy_j == 1.0  # oldest queued delivered
        assert channel.stale_deliveries == 1

    def test_staleness_bounded_by_max_age(self):
        plan = FaultPlan(
            name="t", channel=ChannelFaults(stale_prob=1.0, max_age=2)
        )
        channel = plan.measurement_channel()
        for tag in range(1, 6):
            delivered = channel.transmit(measurement(tag))
        assert delivered.energy_j >= 4.0  # at most max_age behind

    def test_seeded_channel_replays(self):
        def deliveries(seed):
            plan = FaultPlan(
                name="t",
                seed=seed,
                channel=ChannelFaults(stale_prob=0.5, max_age=3),
            )
            channel = plan.measurement_channel()
            return [
                channel.transmit(measurement(tag)).energy_j
                for tag in range(40)
            ]

        assert deliveries(5) == deliveries(5)


class TestRequestChaos:
    def test_actions_replay_under_same_seed(self):
        def actions(seed):
            chaos = FaultPlan(
                name="t",
                seed=seed,
                network=NetworkFaults(
                    drop_request_prob=0.2, drop_response_prob=0.2
                ),
            ).request_chaos()
            return [chaos.on_request() for _ in range(50)]

        assert actions(11) == actions(11)

    def test_counters_match_actions(self):
        chaos = FaultPlan(
            name="t",
            network=NetworkFaults(
                drop_request_prob=0.3, drop_response_prob=0.3
            ),
        ).request_chaos()
        actions = [chaos.on_request() for _ in range(100)]
        counters = chaos.counters()
        assert counters["delivered"] == actions.count("deliver")
        assert counters["dropped_requests"] == actions.count(
            "drop_request"
        )
        assert counters["dropped_responses"] == actions.count(
            "drop_response"
        )

    def test_delay_only_with_positive_probability(self):
        quiet = FaultPlan(
            name="t", network=NetworkFaults(drop_request_prob=0.1)
        ).request_chaos()
        assert all(quiet.delay_for() == 0.0 for _ in range(20))
        slow = FaultPlan(
            name="t",
            network=NetworkFaults(delay_prob=1.0, delay_s=0.25),
        ).request_chaos()
        assert slow.delay_for() == pytest.approx(0.25)
        assert slow.delays == 1

    def test_no_network_component_means_no_chaos(self):
        assert FaultPlan(name="t").request_chaos() is None


class TestShippedPlans:
    def test_expected_catalogue(self):
        plans = shipped_plans()
        assert set(plans) == {
            "sensor-dropout",
            "sensor-stuck",
            "sensor-spike",
            "stale-measurements",
            "budget-cut",
            "network-drop",
            "crash-restart",
        }
        for name, plan in plans.items():
            assert plan.name == name

    def test_seed_threads_through(self):
        plans = shipped_plans(seed=42)
        assert all(plan.seed == 42 for plan in plans.values())
