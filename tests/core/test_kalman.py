"""Tests for the scalar Kalman-filter estimator."""

import numpy as np
import pytest

from repro.core.ewma import Ewma
from repro.core.kalman import (
    ScalarKalmanFilter,
    variances_for_alpha,
)


class TestBasics:
    def test_first_measurement_adopted(self):
        kf = ScalarKalmanFilter()
        assert kf.update(7.0) == 7.0
        assert kf.initialized

    def test_converges_to_constant_signal(self):
        kf = ScalarKalmanFilter(value=100.0, prior_variance=1.0)
        for _ in range(100):
            kf.update(5.0)
        assert kf.value == pytest.approx(5.0, rel=1e-3)

    def test_variance_shrinks_with_measurements(self):
        kf = ScalarKalmanFilter(
            process_variance=0.0, measurement_variance=1.0,
            value=0.0, prior_variance=10.0,
        )
        variances = []
        for _ in range(10):
            kf.update(0.0)
            variances.append(kf.variance)
        assert variances == sorted(variances, reverse=True)

    def test_gain_adapts_high_to_steady(self):
        kf = ScalarKalmanFilter(
            process_variance=0.01, measurement_variance=1.0,
            value=0.0, prior_variance=100.0,
        )
        initial_gain = kf.gain
        for _ in range(200):
            kf.update(1.0)
        assert initial_gain > 0.9
        assert kf.gain == pytest.approx(kf.steady_state_gain(), rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScalarKalmanFilter(measurement_variance=0.0)
        with pytest.raises(ValueError):
            ScalarKalmanFilter(process_variance=-1.0)
        with pytest.raises(ValueError):
            ScalarKalmanFilter(prior_variance=0.0)


class TestSteadyStateGain:
    @pytest.mark.parametrize("ratio", [0.01, 0.5, 2.0, 20.0])
    def test_formula_matches_iteration(self, ratio):
        kf = ScalarKalmanFilter(
            process_variance=ratio, measurement_variance=1.0,
            value=0.0, prior_variance=1.0,
        )
        for _ in range(500):
            kf.update(0.0)
        assert kf.gain == pytest.approx(kf.steady_state_gain(), rel=1e-6)

    def test_zero_process_noise_gain_zero(self):
        kf = ScalarKalmanFilter(
            process_variance=0.0, measurement_variance=1.0
        )
        assert kf.steady_state_gain() == 0.0


class TestAlphaEquivalence:
    @pytest.mark.parametrize("alpha", [0.3, 0.85, 0.95])
    def test_variances_for_alpha_yield_matching_gain(self, alpha):
        q = variances_for_alpha(alpha, measurement_variance=2.0)
        kf = ScalarKalmanFilter(
            process_variance=q, measurement_variance=2.0,
            value=0.0, prior_variance=1.0,
        )
        for _ in range(500):
            kf.update(0.0)
        assert kf.gain == pytest.approx(alpha, rel=1e-6)

    def test_steady_state_tracks_like_paper_ewma(self):
        # Configured for the paper's alpha, the KF tracks a step change
        # like the EWMA does once settled.
        q = variances_for_alpha(0.85)
        kf = ScalarKalmanFilter(
            process_variance=q, measurement_variance=1.0,
            value=0.0, prior_variance=1.0,
        )
        ewma = Ewma(alpha=0.85, value=0.0)
        for _ in range(200):
            kf.update(0.0)
        for _ in range(10):
            kf.update(10.0)
            ewma.update(10.0)
        assert kf.value == pytest.approx(ewma.value, rel=0.02)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            variances_for_alpha(1.0)

    def test_startup_faster_than_ewma_with_bad_prior(self):
        # The adaptive gain discards a wrong prior in one step; a
        # low-alpha EWMA drags it along.
        q = variances_for_alpha(0.3)
        kf = ScalarKalmanFilter(
            process_variance=q, measurement_variance=1.0,
            value=100.0, prior_variance=1e6,
        )
        ewma = Ewma(alpha=0.3, value=100.0)
        kf.update(5.0)
        ewma.update(5.0)
        assert abs(kf.value - 5.0) < abs(ewma.value - 5.0)


class TestNoiseRejection:
    def test_smooths_noisy_constant(self):
        rng = np.random.default_rng(5)
        kf = ScalarKalmanFilter(
            process_variance=0.001, measurement_variance=1.0,
            value=0.0, prior_variance=1.0,
        )
        samples = 10.0 + rng.normal(0, 1.0, size=2000)
        estimates = [kf.update(float(s)) for s in samples]
        tail = np.array(estimates[-500:])
        assert tail.std() < samples.std() * 0.5
        assert tail.mean() == pytest.approx(10.0, abs=0.3)
