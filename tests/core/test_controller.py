"""Tests for the speedup controller (Eqns. 4–5)."""

import pytest

from repro.core.controller import (
    SpeedupController,
    required_rate,
    speedup_target,
)


class TestRequiredRate:
    def test_rate_covers_target(self):
        # At 100 W, hitting 2 J/work needs 50 work/s.
        assert required_rate(2.0, 100.0) == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_rate(0.0, 100.0)
        with pytest.raises(ValueError):
            required_rate(1.0, 0.0)


class TestSpeedupTarget:
    def test_eqn4_literal(self):
        # s = f · (r_d/p_d) · (p̂/r̂)
        assert speedup_target(2.0, 100.0, 200.0, 50.0, 150.0) == pytest.approx(
            2.0 * (100.0 / 200.0) * (150.0 / 50.0)
        )

    def test_no_reduction_efficient_system_needs_no_speedup(self):
        # f=1 and a system config twice as efficient as default → s = 0.5.
        assert speedup_target(1.0, 100.0, 200.0, 100.0, 100.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup_target(0.0, 1.0, 1.0, 1.0, 1.0)


class TestSpeedupController:
    def test_deadbeat_correction(self):
        # With pole 0 and an exact rate model, one step closes the error:
        # new speedup satisfies required = est_rate * speedup.
        controller = SpeedupController(max_speedup=10.0)
        est_rate = 10.0
        speedup = controller.step(
            required=30.0, measured_rate=10.0, est_system_rate=est_rate, pole=0.0
        )
        assert est_rate * speedup == pytest.approx(30.0)

    def test_pole_slows_correction(self):
        fast = SpeedupController(max_speedup=10.0)
        slow = SpeedupController(max_speedup=10.0)
        fast.step(30.0, 10.0, 10.0, pole=0.0)
        slow.step(30.0, 10.0, 10.0, pole=0.8)
        assert slow.speedup < fast.speedup

    def test_integral_action_accumulates(self):
        controller = SpeedupController(max_speedup=10.0)
        previous = controller.speedup
        for _ in range(5):
            controller.step(30.0, 10.0, 10.0, pole=0.8)
            assert controller.speedup > previous
            previous = controller.speedup

    def test_negative_error_reduces_speedup(self):
        controller = SpeedupController(
            min_speedup=0.5, max_speedup=10.0, initial_speedup=5.0
        )
        controller.step(required=10.0, measured_rate=50.0, est_system_rate=10.0, pole=0.0)
        assert controller.speedup < 5.0

    def test_clamping_and_saturation_flag(self):
        controller = SpeedupController(min_speedup=1.0, max_speedup=2.0)
        controller.step(1000.0, 1.0, 1.0, pole=0.0)
        assert controller.speedup == 2.0
        assert controller.saturated

    def test_anti_windup(self):
        # After heavy saturation, a small reversal should move the signal
        # immediately (no accumulated windup to burn off).
        controller = SpeedupController(min_speedup=1.0, max_speedup=2.0)
        for _ in range(20):
            controller.step(1000.0, 1.0, 1.0, pole=0.0)
        controller.step(required=1.0, measured_rate=10.0, est_system_rate=10.0, pole=0.0)
        assert controller.speedup < 2.0

    def test_closed_loop_converges_on_simple_plant(self):
        # Plant: measured rate = est_rate * speedup (exact model).
        controller = SpeedupController(min_speedup=0.5, max_speedup=20.0)
        est_rate, required = 4.0, 26.0
        measured = est_rate * controller.speedup
        for _ in range(10):
            speedup = controller.step(required, measured, est_rate, pole=0.3)
            measured = est_rate * speedup
        assert measured == pytest.approx(required, rel=0.01)

    def test_closed_loop_stable_under_model_error_within_bound(self):
        # True rate is δ× the estimate with δ < 2: still converges at
        # pole 0 (Eqn. 9).
        controller = SpeedupController(min_speedup=0.1, max_speedup=100.0)
        est_rate, delta, required = 4.0, 1.8, 26.0
        measured = est_rate * delta * controller.speedup
        for _ in range(60):
            speedup = controller.step(required, measured, est_rate, pole=0.0)
            measured = est_rate * delta * speedup
        assert measured == pytest.approx(required, rel=0.05)

    def test_closed_loop_oscillates_beyond_bound_without_pole(self):
        # δ > 2 with pole 0: the loop never converges — it oscillates
        # (clamped into a limit cycle), the instability Eqn. 9 predicts.
        controller = SpeedupController(min_speedup=1e-6, max_speedup=1e9)
        est_rate, delta, required = 4.0, 2.5, 26.0
        measured = est_rate * delta * controller.speedup
        errors = []
        for _ in range(40):
            speedup = controller.step(required, measured, est_rate, pole=0.0)
            measured = est_rate * delta * speedup
            errors.append(abs(required - measured))
        assert min(errors[-6:]) > 0.3 * required  # still far off, forever

    def test_adaptive_pole_restores_stability_beyond_bound(self):
        # Same δ > 2 but with the Eqn. 11 pole (plus margin — the literal
        # rule is marginally stable at exactly the measured δ): converges.
        from repro.core.pole import pole_for_error

        controller = SpeedupController(min_speedup=1e-6, max_speedup=1e9)
        est_rate, delta, required = 4.0, 2.5, 26.0
        pole = pole_for_error(delta, margin=2.0)
        measured = est_rate * delta * controller.speedup
        for _ in range(200):
            speedup = controller.step(required, measured, est_rate, pole=pole)
            measured = est_rate * delta * speedup
        assert measured == pytest.approx(required, rel=0.05)

    def test_reset(self):
        controller = SpeedupController(min_speedup=1.0, max_speedup=4.0)
        controller.step(1000.0, 1.0, 1.0, pole=0.0)
        controller.reset(2.0)
        assert controller.speedup == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeedupController(min_speedup=0.0)
        with pytest.raises(ValueError):
            SpeedupController(min_speedup=2.0, max_speedup=1.0)
        controller = SpeedupController()
        with pytest.raises(ValueError):
            controller.step(1.0, 1.0, 1.0, pole=1.0)
        with pytest.raises(ValueError):
            controller.step(1.0, 1.0, 0.0, pole=0.0)
