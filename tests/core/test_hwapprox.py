"""Tests for the approximate-hardware variant (Sec. 3.7)."""

import pytest

from repro.core.hwapprox import (
    HardwareApproxLevel,
    HardwareApproxTable,
    PowerReductionController,
)


def make_table():
    return HardwareApproxTable(
        [
            HardwareApproxLevel(index=0, power_factor=1.0, accuracy=1.0),
            HardwareApproxLevel(index=1, power_factor=0.9, accuracy=0.98),
            HardwareApproxLevel(index=2, power_factor=0.8, accuracy=0.93),
            HardwareApproxLevel(index=3, power_factor=0.85, accuracy=0.90),  # dominated
            HardwareApproxLevel(index=4, power_factor=0.6, accuracy=0.80),
        ]
    )


class TestTable:
    def test_requires_exact_level(self):
        with pytest.raises(ValueError, match="exact level"):
            HardwareApproxTable(
                [HardwareApproxLevel(index=0, power_factor=0.9, accuracy=1.0)]
            )

    def test_frontier_drops_dominated(self):
        frontier = make_table().frontier
        assert all(level.index != 3 for level in frontier)

    def test_frontier_ordered_by_power_factor(self):
        factors = [l.power_factor for l in make_table().frontier]
        assert factors == sorted(factors)

    def test_min_power_factor(self):
        assert make_table().min_power_factor == 0.6

    def test_level_validation(self):
        with pytest.raises(ValueError):
            HardwareApproxLevel(index=0, power_factor=0.0, accuracy=1.0)
        with pytest.raises(ValueError):
            HardwareApproxLevel(index=0, power_factor=1.0, accuracy=1.5)


class TestSelection:
    """The Eqn. 6 dual: most accurate level within a power allowance."""

    def test_generous_allowance_gives_exact_hardware(self):
        level = make_table().best_accuracy_for_power_factor(1.0)
        assert level.power_factor == 1.0

    def test_tight_allowance_gives_frugal_level(self):
        level = make_table().best_accuracy_for_power_factor(0.7)
        assert level.power_factor == 0.6

    def test_exact_boundary_included(self):
        level = make_table().best_accuracy_for_power_factor(0.8)
        assert level.power_factor == 0.8

    def test_impossible_allowance_returns_lowest_power(self):
        level = make_table().best_accuracy_for_power_factor(0.1)
        assert level.power_factor == 0.6

    def test_monotone_accuracy_in_allowance(self):
        table = make_table()
        accuracies = [
            table.best_accuracy_for_power_factor(f).accuracy
            for f in (0.5, 0.65, 0.8, 0.9, 1.0)
        ]
        assert accuracies == sorted(accuracies)


class TestPowerReductionController:
    def test_overconsumption_reduces_factor(self):
        controller = PowerReductionController(min_factor=0.5)
        controller.step(
            target_power=80.0, measured_power=100.0, est_system_power=100.0, pole=0.0
        )
        assert controller.factor < 1.0

    def test_headroom_raises_factor(self):
        controller = PowerReductionController(min_factor=0.5, initial_factor=0.6)
        controller.step(100.0, 60.0, 100.0, pole=0.0)
        assert controller.factor > 0.6

    def test_clamped_to_range(self):
        controller = PowerReductionController(min_factor=0.5)
        for _ in range(10):
            controller.step(0.0, 100.0, 100.0, pole=0.0)
        assert controller.factor == 0.5
        for _ in range(10):
            controller.step(1000.0, 0.0, 100.0, pole=0.0)
        assert controller.factor == 1.0

    def test_closed_loop_converges_to_power_target(self):
        # Plant: power = 100 * factor.
        controller = PowerReductionController(min_factor=0.3)
        measured = 100.0 * controller.factor
        for _ in range(20):
            factor = controller.step(70.0, measured, 100.0, pole=0.2)
            measured = 100.0 * factor
        assert measured == pytest.approx(70.0, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerReductionController(min_factor=0.0)
        controller = PowerReductionController(min_factor=0.5)
        with pytest.raises(ValueError):
            controller.step(1.0, 1.0, 0.0, pole=0.0)
        with pytest.raises(ValueError):
            controller.step(1.0, 1.0, 1.0, pole=1.0)
