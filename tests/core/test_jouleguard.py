"""Tests for the Algorithm 1 runtime on a toy analytic plant.

The plant here is pure Python (two system configurations, a small
application table) so these tests exercise the runtime's logic in
isolation from the platform models.
"""

import numpy as np
import pytest

from repro.apps.base import AppConfig, ConfigTable
from repro.core.bandit import SystemEnergyOptimizer
from repro.core.budget import EnergyGoal
from repro.core.jouleguard import JouleGuardRuntime, build_runtime
from repro.core.types import Measurement


def make_table():
    return ConfigTable(
        [
            AppConfig(index=0, speedup=1.0, accuracy=1.0),
            AppConfig(index=1, speedup=1.5, accuracy=0.9),
            AppConfig(index=2, speedup=2.0, accuracy=0.8),
            AppConfig(index=3, speedup=3.0, accuracy=0.6),
        ]
    )


# Toy plant: two system configs.  Config 0: rate 10, power 100 (epw 10).
# Config 1: rate 6, power 30 (epw 5 — twice as efficient).
TRUE_RATES = (10.0, 6.0)
TRUE_POWERS = (100.0, 30.0)


def run_plant(runtime, n_iterations, rng=None, rate_noise=0.0):
    """Drive the runtime against the toy plant; return energy history."""
    rng = rng or np.random.default_rng(0)
    energies, accuracies = [], []
    for _ in range(n_iterations):
        decision = runtime.current_decision
        rate = TRUE_RATES[decision.system_index] * decision.app_config.speedup
        if rate_noise:
            rate *= float(rng.lognormal(0, rate_noise))
        power = TRUE_POWERS[decision.system_index]
        time_s = 1.0 / rate
        energy = power * time_s
        energies.append(energy)
        accuracies.append(decision.app_config.accuracy)
        runtime.step(
            Measurement(work=1.0, energy_j=energy, rate=rate, power_w=power)
        )
    return energies, accuracies


def make_runtime(factor, n_iterations, **seo_kwargs):
    default_epw = TRUE_POWERS[0] / TRUE_RATES[0]
    goal = EnergyGoal.from_factor(factor, n_iterations, default_epw)
    return build_runtime(
        prior_rate_shape=[1.0, 0.6],
        prior_power_shape=[3.0, 1.0],
        table=make_table(),
        goal=goal,
        seed=1,
        **seo_kwargs,
    )


class TestMeetsGoals:
    @pytest.mark.parametrize("factor", [1.1, 1.5, 2.0, 3.0])
    def test_energy_within_budget(self, factor):
        n = 300
        runtime = make_runtime(factor, n)
        energies, _ = run_plant(runtime, n, rate_noise=0.02)
        overshoot = sum(energies) / runtime.accountant.goal.budget_j
        assert overshoot < 1.03

    def test_easy_goal_preserves_full_accuracy(self):
        # f=1.5 with a 2x-efficient config available: no approximation
        # needed once the learner settles.
        n = 300
        runtime = make_runtime(1.5, n)
        _, accuracies = run_plant(runtime, n)
        assert np.mean(accuracies[-50:]) == pytest.approx(1.0)

    def test_hard_goal_sacrifices_accuracy(self):
        # f=3 requires epw 10/3 ≈ 3.33; best system epw is 5, so the app
        # must deliver ~1.5x → steady-state accuracy ≈ 0.9.
        n = 400
        runtime = make_runtime(3.0, n)
        _, accuracies = run_plant(runtime, n)
        steady = np.mean(accuracies[-50:])
        assert 0.75 <= steady <= 0.95

    def test_learner_finds_efficient_config(self):
        n = 200
        runtime = make_runtime(2.0, n)
        run_plant(runtime, n)
        assert runtime.seo.best_index == 1


class TestInfeasibleGoals:
    def test_impossible_goal_reported(self):
        # f=10 needs epw 1.0; best possible is 5/3 ≈ 1.67 → impossible.
        n = 200
        runtime = make_runtime(10.0, n)
        _, accuracies = run_plant(runtime, n)
        assert runtime.goal_reported_infeasible
        # Minimum-energy operation: fastest app config.
        assert accuracies[-1] == 0.6

    def test_feasible_goal_not_flagged(self):
        n = 300
        runtime = make_runtime(1.2, n)
        run_plant(runtime, n)
        assert not runtime.goal_reported_infeasible


class TestRuntimeMechanics:
    def test_initial_decision_available_before_feedback(self):
        runtime = make_runtime(2.0, 10)
        decision = runtime.current_decision
        assert decision.system_index in (0, 1)
        assert decision.app_config.speedup >= 1.0

    def test_decisions_logged(self):
        n = 50
        runtime = make_runtime(2.0, n)
        run_plant(runtime, n)
        assert len(runtime.decisions) == n + 1  # initial + one per step

    def test_work_complete_freezes_operating_point(self):
        n = 10
        runtime = make_runtime(2.0, n)
        run_plant(runtime, n)
        before = runtime.current_decision
        # One more measurement after all work is accounted.
        runtime.step(Measurement(work=1.0, energy_j=1.0, rate=10.0, power_w=10.0))
        after = runtime.current_decision
        assert after.app_config is before.app_config

    def test_pole_reacts_to_model_error(self):
        runtime = make_runtime(2.0, 100)
        # Feed a measurement wildly inconsistent with the rate estimate.
        decision = runtime.current_decision
        est = runtime.seo.rate_estimate(decision.system_index)
        runtime.step(
            Measurement(
                work=1.0,
                energy_j=1.0,
                rate=est * decision.app_config.speedup * 10.0,
                power_w=50.0,
            )
        )
        assert runtime.current_decision.pole > 0.0

    def test_feasibility_slack_validation(self):
        with pytest.raises(ValueError):
            JouleGuardRuntime(
                seo=SystemEnergyOptimizer([1.0], [1.0]),
                table=make_table(),
                goal=EnergyGoal(total_work=1.0, budget_j=1.0),
                feasibility_slack=0.9,
            )

    def test_app_selection_respects_eqn6(self):
        n = 300
        runtime = make_runtime(3.0, n)
        run_plant(runtime, n)
        for decision in runtime.decisions[20:]:
            if decision.feasible:
                assert (
                    decision.app_config.speedup
                    >= decision.speedup_setpoint - 1e-9
                )


class TestSafeFallback:
    def settled_runtime(self):
        runtime = make_runtime(1.5, 50)
        run_plant(runtime, 20)
        return runtime

    def test_pin_safe_fallback_is_min_energy_operation(self):
        runtime = self.settled_runtime()
        decision = runtime.pin_safe_fallback()
        assert decision.speedup_setpoint == runtime.table.max_speedup
        assert decision.system_index == runtime.seo.best_index
        assert not decision.explored
        assert runtime.current_decision == decision

    def test_pin_safe_fallback_preserves_learned_state(self):
        runtime = self.settled_runtime()
        epsilon = runtime.seo.epsilon
        visited = runtime.seo.visited_count
        runtime.pin_safe_fallback()
        assert runtime.seo.epsilon == epsilon
        assert runtime.seo.visited_count == visited
