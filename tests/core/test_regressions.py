"""Regression tests for specific failure modes found while building.

Each test documents a bug that existed during development and guards
the fix; see EXPERIMENTS.md "Documented deviations" for the narrative.
"""

import numpy as np

from repro.apps import build_application
from repro.hw import get_machine, system_power, work_rate
from repro.runtime.harness import prior_shapes, run_jouleguard


class TestPriorFloorRegression:
    """Without the static-power floor, the prior efficiency ranking
    inverted on Server (the pure-dynamic prior rated 16 slow cores ~6x
    better than the true optimum) and the learner settled on
    configurations ~2x worse than optimal, overshooting budgets by ~18%.
    """

    def test_power_prior_ranks_true_best_region_highly(self, apps):
        server = get_machine("server")
        app = apps["x264"]
        rates, powers = prior_shapes(server)
        prior_eff = rates / powers
        true_eff = np.array(
            [
                work_rate(server, c, app.resource_profile)
                / system_power(server, c, app.resource_profile)
                for c in server.space
            ]
        )
        true_best = int(true_eff.argmax())
        # The true best must sit in the prior's top 15% — close enough
        # for exploitation to find it quickly.
        rank = int((prior_eff > prior_eff[true_best]).sum())
        assert rank < len(prior_eff) * 0.15

    def test_server_x264_budget_met(self, apps):
        result = run_jouleguard(
            get_machine("server"), apps["x264"], factor=2.0,
            n_iterations=300, seed=1,
        )
        assert result.relative_error_pct < 2.0
        assert result.effective_acc > 0.97


class TestOptimismSweepRegression:
    """With optimism > 1 the bandit's argmax cycled through unvisited
    configurations indefinitely on the 1024-arm Server space (each
    visited once, deflated, next proposed), never settling; canneal at
    f=2.5 overshot ~23%.  The default optimism of 1.0 must settle."""

    def test_seo_settles_on_server(self, apps):
        result = run_jouleguard(
            get_machine("server"), apps["canneal"], factor=2.0,
            n_iterations=400, seed=2,
        )
        # Settling = the tail concentrates on a handful of near-tied
        # configurations (the sweep bug visited ~75 distinct configs in
        # the last 100 iterations, each once or twice).
        tail = result.trace.system_index[-100:]
        distinct = len(set(tail))
        assert distinct < 60
        top3 = sum(
            count
            for _, count in sorted(
                ((v, tail.count(v)) for v in set(tail)),
                key=lambda kv: -kv[1],
            )[:3]
        )
        assert top3 / len(tail) > 0.3

    def test_canneal_near_edge_bounded_error(self, apps):
        result = run_jouleguard(
            get_machine("server"), apps["canneal"], factor=2.0,
            n_iterations=400, seed=2,
        )
        assert result.relative_error_pct < 5.0


class TestEpsilonDecayRegression:
    """With the literal 1/|Sys| VDBE weight, epsilon stayed ~1 for
    hundreds of iterations on Server (75% random exploration at
    iteration 300), contradicting the paper's own Fig. 4 convergence.
    The floored weight must reach low epsilon within tens of
    iterations when models are accurate."""

    def test_epsilon_low_within_fifty_iterations(self, apps):
        result = run_jouleguard(
            get_machine("server"), apps["bodytrack"], factor=2.0,
            n_iterations=100, seed=3,
        )
        assert result.trace.epsilon[50] < 0.15


class TestInfeasibleSaturationRegression:
    """Transient infeasibility (budget debt after exploration) used to
    reset the controller's integral state, amplifying oscillation near
    the feasibility edge.  Saturation must preserve recovery: a run
    that dips infeasible early can still finish within a few percent."""

    def test_near_edge_recovers(self, apps):
        result = run_jouleguard(
            get_machine("server"), apps["swish"], factor=1.75,
            n_iterations=1500, seed=4,
        )
        assert result.relative_error_pct < 5.0
