"""Tests for the multi-application budget coordinator."""

import numpy as np
import pytest

from repro.apps.base import AppConfig, ConfigTable
from repro.core.budget import BudgetAccountant, EnergyGoal
from repro.core.jouleguard import build_runtime
from repro.core.multi import (
    ApplicationKilled,
    MultiAppCoordinator,
    split_budget,
)
from repro.core.types import Measurement
from repro.enforce.ladder import LadderPolicy, Tier


def make_table(max_speedup=3.0):
    return ConfigTable(
        [
            AppConfig(index=0, speedup=1.0, accuracy=1.0),
            AppConfig(index=1, speedup=1.5, accuracy=0.9),
            AppConfig(index=2, speedup=2.0, accuracy=0.8),
            AppConfig(index=3, speedup=max_speedup, accuracy=0.6),
        ]
    )


# Toy plants per app: (rates per sys config, powers per sys config).
PLANTS = {
    "video": ((10.0, 6.0), (100.0, 30.0)),
    "search": ((8.0, 5.0), (80.0, 40.0)),
}


def make_runtime(name, budget_j, n_iterations, seed=0):
    rates, powers = PLANTS[name]
    return build_runtime(
        prior_rate_shape=[1.0, 0.6],
        prior_power_shape=[3.0, 1.0],
        table=make_table(),
        goal=EnergyGoal(total_work=n_iterations, budget_j=budget_j),
        seed=seed,
    )


def drive(coordinator, n_iterations, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n_iterations):
        for name in PLANTS:
            decision = coordinator.current_decision(name)
            rates, powers = PLANTS[name]
            rate = rates[decision.system_index] * decision.app_config.speedup
            if noise:
                rate *= float(rng.lognormal(0, noise))
            power = powers[decision.system_index]
            energy = power / rate
            coordinator.step(
                name,
                Measurement(work=1.0, energy_j=energy, rate=rate, power_w=power),
            )


class TestSplitBudget:
    def test_proportional_to_need(self):
        shares = split_budget(100.0, {"a": 30.0, "b": 10.0})
        assert shares["a"] == pytest.approx(75.0)
        assert shares["b"] == pytest.approx(25.0)
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_priorities_scale_shares(self):
        shares = split_budget(
            100.0, {"a": 10.0, "b": 10.0}, priorities={"a": 3.0}
        )
        assert shares["a"] == pytest.approx(75.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_budget(0.0, {"a": 1.0})
        with pytest.raises(ValueError):
            split_budget(10.0, {})
        with pytest.raises(ValueError):
            split_budget(10.0, {"a": -1.0})
        with pytest.raises(ValueError):
            split_budget(10.0, {"a": 1.0}, priorities={"a": 0.0})


class TestBudgetAdjustment:
    def test_adjustment_extends_remaining(self):
        accountant = BudgetAccountant(EnergyGoal(10.0, 100.0))
        accountant.adjust_budget(50.0)
        assert accountant.effective_budget_j == 150.0
        assert accountant.remaining_energy_j == 150.0

    def test_cannot_reclaim_spent_budget(self):
        accountant = BudgetAccountant(EnergyGoal(10.0, 100.0))
        accountant.record(5.0, 90.0)
        with pytest.raises(ValueError):
            accountant.adjust_budget(-20.0)

    def test_reclaim_unspent_is_fine(self):
        accountant = BudgetAccountant(EnergyGoal(10.0, 100.0))
        accountant.record(5.0, 10.0)
        accountant.adjust_budget(-50.0)
        assert accountant.remaining_energy_j == pytest.approx(40.0)


class TestCoordinator:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiAppCoordinator({})
        runtime = make_runtime("video", 100.0, 10)
        with pytest.raises(ValueError):
            MultiAppCoordinator({"v": runtime}, rebalance_period=0)
        with pytest.raises(ValueError):
            MultiAppCoordinator({"v": runtime}, transfer_fraction=0.0)

    def test_budget_conserved_across_rebalances(self):
        n = 200
        runtimes = {
            "video": make_runtime("video", 1200.0, n, seed=1),
            "search": make_runtime("search", 1200.0, n, seed=2),
        }
        coordinator = MultiAppCoordinator(runtimes, rebalance_period=20)
        total_before = coordinator.total_effective_budget_j
        drive(coordinator, n, noise=0.02)
        assert coordinator.total_effective_budget_j == pytest.approx(
            total_before
        )

    def test_global_budget_respected(self):
        n = 300
        runtimes = {
            "video": make_runtime("video", 1500.0, n, seed=3),
            "search": make_runtime("search", 1500.0, n, seed=4),
        }
        coordinator = MultiAppCoordinator(runtimes, rebalance_period=25)
        drive(coordinator, n, noise=0.02)
        assert (
            coordinator.total_energy_used_j
            <= coordinator.total_effective_budget_j * 1.03
        )

    def test_surplus_flows_to_straining_app(self):
        n = 300
        # video gets a generous share; search gets a share that is
        # infeasible on its own (search min epw = 40/(5*3) = 2.67/iter,
        # so 500 J for 300 iterations cannot be met alone).
        runtimes = {
            "video": make_runtime("video", 2500.0, n, seed=5),
            "search": make_runtime("search", 500.0, n, seed=6),
        }
        coordinator = MultiAppCoordinator(runtimes, rebalance_period=20)
        drive(coordinator, n, noise=0.02)
        report = coordinator.summary()
        assert report["search"]["effective_budget_j"] > 500.0
        assert report["video"]["effective_budget_j"] < 2500.0
        # And the combined run still lands inside the global budget.
        assert coordinator.total_energy_used_j <= 3000.0 * 1.03

    def test_transfer_improves_straining_apps_accuracy(self):
        n = 300

        def final_accuracy(coordinated):
            runtimes = {
                "video": make_runtime("video", 2500.0, n, seed=7),
                "search": make_runtime("search", 500.0, n, seed=8),
            }
            coordinator = MultiAppCoordinator(
                runtimes,
                rebalance_period=20 if coordinated else 10**9,
            )
            accuracies = []
            rng = np.random.default_rng(9)
            for _ in range(n):
                for name in PLANTS:
                    decision = coordinator.current_decision(name)
                    rates, powers = PLANTS[name]
                    rate = (
                        rates[decision.system_index]
                        * decision.app_config.speedup
                        * float(rng.lognormal(0, 0.02))
                    )
                    power = powers[decision.system_index]
                    coordinator.step(
                        name,
                        Measurement(
                            work=1.0,
                            energy_j=power / rate,
                            rate=rate,
                            power_w=power,
                        ),
                    )
                    if name == "search":
                        accuracies.append(decision.app_config.accuracy)
            return float(np.mean(accuracies[n // 2 :]))

        assert final_accuracy(True) > final_accuracy(False)

    def test_no_transfer_when_everyone_is_fine(self):
        n = 100
        runtimes = {
            "video": make_runtime("video", 5000.0, n, seed=10),
            "search": make_runtime("search", 5000.0, n, seed=11),
        }
        coordinator = MultiAppCoordinator(runtimes, rebalance_period=10)
        drive(coordinator, n)
        for deltas in coordinator.transfers:
            assert all(abs(d) < 1e-9 for d in deltas.values())


def runaway_feed(coordinator, name, budget_j, burn=0.15, steps=20):
    """Heartbeats burning ``burn`` of the app's grant per unit work."""
    energy = burn * budget_j
    for _ in range(steps):
        coordinator.step(
            name,
            Measurement(
                work=1.0, energy_j=energy, rate=10.0, power_w=energy
            ),
        )


class TestEnforcement:
    def make_coordinator(self, rebalance_period=1000):
        runtimes = {
            "video": make_runtime("video", 1000.0, 1000, seed=1),
            "search": make_runtime("search", 100.0, 100, seed=2),
        }
        return MultiAppCoordinator(
            runtimes,
            rebalance_period=rebalance_period,
            enforcement=LadderPolicy(),
        )

    def test_runaway_app_is_killed(self):
        coordinator = self.make_coordinator()
        with pytest.raises(ApplicationKilled) as excinfo:
            runaway_feed(coordinator, "video", 1000.0)
        assert excinfo.value.name == "video"
        summary = excinfo.value.summary
        assert summary["killed"] is True
        assert summary["tier"] == "kill"
        # The hard guarantee: the kill fired before the bound.
        assert (
            summary["energy_used_j"] <= summary["effective_budget_j"]
        )

    def test_step_after_kill_keeps_raising(self):
        coordinator = self.make_coordinator()
        with pytest.raises(ApplicationKilled):
            runaway_feed(coordinator, "video", 1000.0)
        with pytest.raises(ApplicationKilled):
            coordinator.step(
                "video",
                Measurement(
                    work=1.0, energy_j=1.0, rate=10.0, power_w=1.0
                ),
            )
        assert coordinator.tier_of("video") is Tier.KILL

    def test_killed_app_donates_its_budget_zero_sum(self):
        coordinator = self.make_coordinator()
        # Make search a needer first: energy per work twice its grant.
        runaway_feed(coordinator, "search", 100.0, burn=0.02, steps=2)
        with pytest.raises(ApplicationKilled):
            runaway_feed(coordinator, "video", 1000.0)
        total_before = coordinator.total_effective_budget_j
        before = coordinator.summary()
        coordinator.rebalance()
        after = coordinator.summary()
        # The killed app's grant drains to the strainer, zero-sum:
        # nothing is deleted, so the global guarantee survives.
        assert (
            after["video"]["effective_budget_j"]
            < before["video"]["effective_budget_j"]
        )
        assert (
            after["search"]["effective_budget_j"]
            > before["search"]["effective_budget_j"]
        )
        assert coordinator.total_effective_budget_j == pytest.approx(
            total_before
        )

    def test_throttle_surfaces_to_the_caller(self):
        coordinator = self.make_coordinator()
        # Four runaway heartbeats climb to THROTTLE (one rung each).
        runaway_feed(coordinator, "video", 1000.0, steps=4)
        assert coordinator.tier_of("video") is Tier.THROTTLE
        assert coordinator.throttle_s("video") > 0.0
        assert coordinator.throttle_s("search") == 0.0

    def test_degrade_pins_safe_fallback(self):
        coordinator = self.make_coordinator()
        runaway_feed(coordinator, "video", 1000.0, steps=2)
        assert coordinator.tier_of("video") is Tier.DEGRADE
        decision = coordinator.current_decision("video")
        # The pinned fallback is minimum-energy operation: the app's
        # maximum speedup (lowest energy per work, Sec. 3.4.3).
        assert decision.speedup_setpoint == pytest.approx(3.0)
        assert decision.app_config.index == 3
        assert decision.explored is False

    def test_no_enforcement_by_default(self):
        runtimes = {
            "video": make_runtime("video", 1000.0, 1000, seed=1),
            "search": make_runtime("search", 100.0, 100, seed=2),
        }
        coordinator = MultiAppCoordinator(
            runtimes, rebalance_period=1000
        )
        runaway_feed(coordinator, "video", 1000.0)  # must not raise
        assert coordinator.tier_of("video") is Tier.NOMINAL
        assert coordinator.throttle_s("video") == 0.0
        assert coordinator.summary()["video"]["killed"] is False
