"""Tests for the Eqn. 1 estimators."""

import pytest

from repro.core.ewma import DEFAULT_ALPHA, Ewma


class TestEwma:
    def test_paper_alpha(self):
        assert DEFAULT_ALPHA == 0.85

    def test_first_update_without_prior_takes_sample(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.update(10.0) == 10.0

    def test_update_with_prior_blends(self):
        ewma = Ewma(alpha=0.85, value=10.0)
        # Eqn. 1: (1 - α)·old + α·new
        assert ewma.update(20.0) == pytest.approx(0.15 * 10 + 0.85 * 20)

    def test_converges_to_constant_signal(self):
        ewma = Ewma(alpha=0.85, value=100.0)
        for _ in range(30):
            ewma.update(5.0)
        assert ewma.value == pytest.approx(5.0, rel=1e-6)

    def test_alpha_one_tracks_exactly(self):
        ewma = Ewma(alpha=1.0, value=3.0)
        assert ewma.update(7.0) == 7.0

    def test_update_count(self):
        ewma = Ewma()
        ewma.update(1.0)
        ewma.update(2.0)
        assert ewma.updates == 2

    def test_initialized_flag(self):
        ewma = Ewma()
        assert not ewma.initialized
        ewma.update(1.0)
        assert ewma.initialized

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)

    def test_geometric_error_decay(self):
        # After n updates with constant signal, the residual error decays
        # as (1 - α)^n — the convergence rate the paper's α=0.85 buys.
        ewma = Ewma(alpha=0.85, value=1.0)
        for n in range(1, 6):
            ewma.update(0.0)
            assert ewma.value == pytest.approx(0.15**n)


class TestHold:
    def test_hold_returns_estimate_unchanged(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(10.0)
        ewma.update(20.0)
        before = ewma.value
        assert ewma.hold() == before
        assert ewma.value == before
        assert ewma.holds == 1

    def test_hold_does_not_count_as_update(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(10.0)
        ewma.hold()
        assert ewma.updates == 1
        assert ewma.holds == 1

    def test_hold_before_any_sample_raises(self):
        with pytest.raises(ValueError):
            Ewma().hold()
