"""Tests for energy goals and budget accounting."""

import pytest

from repro.core.budget import PAPER_FACTORS, BudgetAccountant, EnergyGoal


class TestEnergyGoal:
    def test_paper_factor_sweep(self):
        assert PAPER_FACTORS == (1.1, 1.2, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0)

    def test_from_factor(self):
        goal = EnergyGoal.from_factor(
            2.0, total_work=100.0, default_energy_per_work=4.0
        )
        assert goal.budget_j == pytest.approx(200.0)
        assert goal.energy_per_work == pytest.approx(2.0)

    def test_factor_one_is_default_energy(self):
        goal = EnergyGoal.from_factor(1.0, 10.0, 3.0)
        assert goal.budget_j == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyGoal.from_factor(0.5, 10.0, 1.0)
        with pytest.raises(ValueError):
            EnergyGoal.from_factor(2.0, 10.0, 0.0)
        with pytest.raises(ValueError):
            EnergyGoal(total_work=0.0, budget_j=1.0)


class TestBudgetAccountant:
    @pytest.fixture
    def accountant(self):
        return BudgetAccountant(EnergyGoal(total_work=10.0, budget_j=100.0))

    def test_initial_target_is_average(self, accountant):
        assert accountant.target_energy_per_work() == pytest.approx(10.0)

    def test_underspending_raises_target(self, accountant):
        accountant.record(work=5.0, energy_j=20.0)
        # 80 J left for 5 work units.
        assert accountant.target_energy_per_work() == pytest.approx(16.0)

    def test_overspending_lowers_target(self, accountant):
        accountant.record(work=5.0, energy_j=80.0)
        assert accountant.target_energy_per_work() == pytest.approx(4.0)

    def test_exhausted_budget_gives_zero_target(self, accountant):
        accountant.record(work=5.0, energy_j=150.0)
        assert accountant.target_energy_per_work() == 0.0
        assert accountant.exhausted

    def test_complete_run_gives_none(self, accountant):
        accountant.record(work=10.0, energy_j=50.0)
        assert accountant.target_energy_per_work() is None
        assert accountant.complete
        assert not accountant.exhausted

    def test_remaining_clamped_at_zero(self, accountant):
        accountant.record(work=12.0, energy_j=120.0)
        assert accountant.remaining_work == 0.0
        assert accountant.remaining_energy_j == 0.0

    def test_overall_energy_per_work(self, accountant):
        accountant.record(2.0, 30.0)
        accountant.record(2.0, 10.0)
        assert accountant.overall_energy_per_work == pytest.approx(10.0)

    def test_overall_requires_work(self, accountant):
        with pytest.raises(ValueError):
            _ = accountant.overall_energy_per_work

    def test_energy_trace_records_each_iteration(self, accountant):
        accountant.record(1.0, 5.0)
        accountant.record(1.0, 7.0)
        assert accountant.energy_trace == [5.0, 7.0]

    def test_negative_inputs_rejected(self, accountant):
        with pytest.raises(ValueError):
            accountant.record(-1.0, 1.0)
        with pytest.raises(ValueError):
            accountant.record(1.0, -1.0)

    def test_meeting_target_exactly_preserves_target(self, accountant):
        for _ in range(5):
            target = accountant.target_energy_per_work()
            accountant.record(1.0, target)
        assert accountant.target_energy_per_work() == pytest.approx(10.0)
