"""Tests for the Z-domain analysis (Eqns. 7–9) — the formal guarantees
are executed, not just quoted."""

import pytest

from repro.core.analysis import (
    nominal_loop,
    perturbed_loop,
    settling_time,
    stability_bound,
)


class TestNominalLoop:
    """Eqn. 7: F(z) = (1 - pole)/(z - pole)."""

    @pytest.mark.parametrize("pole", [0.0, 0.1, 0.5, 0.9])
    def test_stable_for_legal_poles(self, pole):
        assert nominal_loop(pole).stable

    @pytest.mark.parametrize("pole", [0.0, 0.1, 0.5, 0.9])
    def test_convergent_f1_equals_one(self, pole):
        loop = nominal_loop(pole)
        assert loop.dc_gain == pytest.approx(1.0)
        assert loop.convergent

    def test_step_response_reaches_setpoint(self):
        response = nominal_loop(0.5).step_response(60)
        assert response[-1] == pytest.approx(1.0, rel=1e-6)

    def test_step_response_monotone_no_overshoot(self):
        response = nominal_loop(0.3).step_response(30)
        assert all(a <= b + 1e-12 for a, b in zip(response, response[1:]))
        assert max(response) <= 1.0 + 1e-9

    def test_deadbeat_settles_in_one_step(self):
        assert nominal_loop(0.0).step_response(3) == pytest.approx(
            [1.0, 1.0, 1.0]
        )

    def test_illegal_pole_rejected(self):
        with pytest.raises(ValueError):
            nominal_loop(1.0)
        with pytest.raises(ValueError):
            nominal_loop(-0.1)


class TestPerturbedLoop:
    """Eqn. 8–9: robustness to multiplicative model error δ."""

    def test_exact_model_recovers_nominal(self):
        assert perturbed_loop(0.5, 1.0).pole_location == pytest.approx(0.5)

    @pytest.mark.parametrize("pole", [0.0, 0.2, 0.6])
    def test_stable_inside_bound(self, pole):
        bound = stability_bound(pole)
        for delta in (0.1, 1.0, bound * 0.99):
            assert perturbed_loop(pole, delta).stable

    @pytest.mark.parametrize("pole", [0.0, 0.2, 0.6])
    def test_unstable_outside_bound(self, pole):
        bound = stability_bound(pole)
        assert not perturbed_loop(pole, bound * 1.01).stable

    def test_convergent_whenever_stable(self):
        # Even with model error, F(1) = 1: zero steady-state error.
        loop = perturbed_loop(0.4, 1.7)
        assert loop.dc_gain == pytest.approx(1.0)

    def test_unstable_step_response_grows(self):
        loop = perturbed_loop(0.0, 2.5)
        response = loop.step_response(20)
        assert abs(response[-1] - 1.0) > abs(response[5] - 1.0)

    def test_paper_example_pole_01_delta_22(self):
        # Sec. 3.4.2: pole = 0.1 tolerates rsys off by a factor of 2.2.
        assert perturbed_loop(0.1, 2.2).stable
        assert not perturbed_loop(0.1, 2.3).stable

    def test_validation(self):
        with pytest.raises(ValueError):
            perturbed_loop(0.5, 0.0)


class TestSettlingTime:
    def test_deadbeat(self):
        assert settling_time(0.0) == 1

    def test_slower_pole_settles_later(self):
        assert settling_time(0.9) > settling_time(0.3)

    def test_matches_step_response(self):
        pole = 0.6
        steps = settling_time(pole, tolerance=0.02)
        response = nominal_loop(pole).step_response(steps + 1)
        assert abs(response[steps - 1] - 1.0) <= 0.02 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            settling_time(1.0)
        with pytest.raises(ValueError):
            settling_time(0.5, tolerance=0.0)
