"""Contracts: predicates, require/invariant decorators, ContractError."""

from dataclasses import dataclass

import pytest

from repro.core.contracts import (
    ContractError,
    check,
    invariant,
    non_negative,
    positive,
    require,
    stable_pole,
    unit_interval,
)


class TestPredicates:
    def test_stable_pole(self):
        assert stable_pole(0.0) and stable_pole(0.999)
        assert not stable_pole(1.0) and not stable_pole(-0.1)

    def test_unit_interval(self):
        assert unit_interval(0.0) and unit_interval(1.0)
        assert not unit_interval(1.0001) and not unit_interval(-0.0001)

    def test_signs(self):
        assert non_negative(0.0) and not non_negative(-1e-9)
        assert positive(1e-9) and not positive(0.0)


class TestCheck:
    def test_passes_silently(self):
        check(True, "never raised")

    def test_raises_contract_error(self):
        with pytest.raises(ContractError, match="budget must be positive"):
            check(False, "budget must be positive")

    def test_contract_error_is_value_error(self):
        with pytest.raises(ValueError):
            check(False, "compatible with existing callers")


class TestRequire:
    def test_accepts_valid_argument(self):
        @require("pole", stable_pole, "pole must be in [0, 1)")
        def f(pole):
            return pole

        assert f(0.5) == 0.5
        assert f(pole=0.0) == 0.0

    def test_rejects_invalid_argument_with_value_in_message(self):
        @require("pole", stable_pole, "pole must be in [0, 1)")
        def f(pole):
            return pole

        with pytest.raises(ContractError, match=r"pole=1\.5"):
            f(1.5)

    def test_checks_defaults(self):
        @require("rate", positive, "rate must be positive")
        def f(rate=-1.0):
            return rate

        with pytest.raises(ContractError):
            f()
        assert f(2.0) == 2.0

    def test_stacking_checks_all_parameters(self):
        @require("a", positive, "a must be positive")
        @require("b", non_negative, "b cannot be negative")
        def f(a, b):
            return a + b

        assert f(1.0, 0.0) == 1.0
        with pytest.raises(ContractError, match="a must be positive"):
            f(0.0, 0.0)
        with pytest.raises(ContractError, match="b cannot be negative"):
            f(1.0, -1.0)

    def test_contracts_are_introspectable(self):
        @require("a", positive, "a must be positive")
        @require("b", non_negative, "b cannot be negative")
        def f(a, b):
            return a + b

        assert [entry[0] for entry in f.__contracts__] == ["a", "b"]

    def test_unknown_parameter_fails_at_decoration_time(self):
        with pytest.raises(TypeError, match="no such parameter"):

            @require("missing", positive, "?")
            def f(a):
                return a

    def test_works_on_methods(self):
        class Box:
            @require("amount", positive, "amount must be positive")
            def add(self, amount):
                return amount

        assert Box().add(3.0) == 3.0
        with pytest.raises(ContractError):
            Box().add(0.0)


class TestInvariant:
    def build(self):
        @invariant(
            lambda self: self.level >= 0.0, "level cannot go negative"
        )
        @dataclass
        class Tank:
            level: float = 0.0

            def drain(self, amount):
                self.level -= amount
                return self.level

            def _internal_set(self, value):
                self.level = value

        return Tank

    def test_checked_at_construction(self):
        Tank = self.build()
        assert Tank(1.0).level == 1.0
        with pytest.raises(ContractError, match="level cannot go negative"):
            Tank(-1.0)

    def test_checked_after_public_mutation(self):
        Tank = self.build()
        tank = Tank(5.0)
        assert tank.drain(2.0) == 3.0
        with pytest.raises(ContractError):
            tank.drain(10.0)

    def test_private_methods_not_wrapped(self):
        Tank = self.build()
        tank = Tank(1.0)
        tank._internal_set(-4.0)  # intermediate states are allowed
        assert tank.level == -4.0

    def test_stacked_invariants_all_enforced(self):
        @invariant(lambda self: self.x >= 0, "x negative")
        @invariant(lambda self: self.x < 10, "x too large")
        @dataclass
        class Bounded:
            x: int = 0

            def set(self, value):
                self.x = value

        bounded = Bounded()
        bounded.set(5)
        with pytest.raises(ContractError, match="x negative"):
            bounded.set(-1)
        bounded.x = 5
        with pytest.raises(ContractError, match="x too large"):
            bounded.set(12)


class TestAppliedContracts:
    """The core classes actually carry the contracts."""

    def test_adaptive_pole_declares_invariant(self):
        from repro.core.pole import AdaptivePole

        assert hasattr(AdaptivePole, "__invariants__")
        pole = AdaptivePole()
        pole.update_from_delta(1e9)
        assert 0.0 <= pole.pole < 1.0

    def test_vdbe_epsilon_stays_probability(self):
        from repro.core.vdbe import Vdbe

        assert hasattr(Vdbe, "__invariants__")
        vdbe = Vdbe(n_configs=8)
        for _ in range(50):
            vdbe.update(2.0, 1.0)
        assert 0.0 <= vdbe.epsilon <= 1.0

    def test_speedup_controller_precondition(self):
        from repro.core.controller import SpeedupController

        controller = SpeedupController(min_speedup=1.0, max_speedup=4.0)
        with pytest.raises(ContractError):
            controller.step(
                required=1.0,
                measured_rate=1.0,
                est_system_rate=1.0,
                pole=1.0,
            )

    def test_contract_error_importable_from_core(self):
        import repro.core

        assert repro.core.ContractError is ContractError


class TestKillSwitch:
    """The hot-path switch: contracts off skips every dynamic check."""

    @pytest.fixture(autouse=True)
    def _restore(self):
        from repro.core.contracts import set_contracts_enabled

        yield
        set_contracts_enabled(True)

    def test_default_is_enabled(self):
        from repro.core.contracts import contracts_enabled

        assert contracts_enabled() is True

    def test_toggle_returns_previous_state(self):
        from repro.core.contracts import (
            contracts_enabled,
            set_contracts_enabled,
        )

        assert set_contracts_enabled(False) is True
        assert contracts_enabled() is False
        assert set_contracts_enabled(True) is False

    def test_disabled_skips_require_and_check(self):
        from repro.core.contracts import set_contracts_enabled

        @require("rate", non_negative, "rate cannot be negative")
        def f(rate):
            return rate

        with pytest.raises(ContractError):
            f(-1.0)
        set_contracts_enabled(False)
        assert f(-1.0) == -1.0  # precondition skipped
        check(False, "inline check skipped too")
        set_contracts_enabled(True)
        with pytest.raises(ContractError):
            f(-1.0)

    def test_disabled_skips_invariant_reverification(self):
        from repro.core.contracts import set_contracts_enabled

        @invariant(lambda self: self.value >= 0, "value went negative")
        @dataclass
        class Counter:
            value: int = 0

            def add(self, delta):
                self.value += delta

        counter = Counter()
        with pytest.raises(ContractError):
            counter.add(-5)
        set_contracts_enabled(False)
        counter.add(-5)  # invariant not re-checked
        assert counter.value < 0

    def test_declaration_errors_survive_the_switch(self):
        from repro.core.contracts import set_contracts_enabled

        set_contracts_enabled(False)
        with pytest.raises(TypeError):

            @require("missing", positive, "no such parameter")
            def g(x):
                return x
