"""Tests for Value-Difference Based Exploration (Eqn. 2)."""

import pytest

from repro.core.vdbe import Vdbe


class TestVdbe:
    def test_epsilon_starts_at_one(self):
        assert Vdbe(n_configs=10).epsilon == 1.0

    def test_accurate_models_shrink_epsilon(self):
        vdbe = Vdbe(n_configs=10)
        for _ in range(50):
            vdbe.update(measured_eff=1.0, estimated_eff=1.0)
        assert vdbe.epsilon < 0.01

    def test_surprise_raises_epsilon(self):
        vdbe = Vdbe(n_configs=10)
        for _ in range(50):
            vdbe.update(1.0, 1.0)
        settled = vdbe.epsilon
        vdbe.update(measured_eff=5.0, estimated_eff=1.0)
        assert vdbe.epsilon > settled

    def test_epsilon_bounded_in_unit_interval(self):
        vdbe = Vdbe(n_configs=4)
        for measured in (0.1, 100.0, 1.0, 3.0):
            vdbe.update(measured, 1.0)
            assert 0.0 <= vdbe.epsilon <= 1.0

    def test_bigger_surprise_bigger_epsilon(self):
        small = Vdbe(n_configs=10)
        large = Vdbe(n_configs=10)
        for _ in range(30):
            small.update(1.0, 1.0)
            large.update(1.0, 1.0)
        small.update(1.2, 1.0)
        large.update(4.0, 1.0)
        assert large.epsilon > small.epsilon

    def test_paper_weight_rule(self):
        # Weight is max(1/|Sys|, min_weight): for small spaces the
        # literal 1/|Sys| dominates.
        assert Vdbe(n_configs=2, min_weight=0.2).weight == 0.5
        assert Vdbe(n_configs=1000, min_weight=0.2).weight == 0.2
        assert Vdbe(n_configs=1000, min_weight=0.0).weight == 0.001

    def test_relative_mode_is_scale_free(self):
        a = Vdbe(n_configs=10, relative=True)
        b = Vdbe(n_configs=10, relative=True)
        a.update(2.0, 1.0)
        b.update(2000.0, 1000.0)
        assert a.epsilon == pytest.approx(b.epsilon)

    def test_absolute_mode_is_scale_dependent(self):
        a = Vdbe(n_configs=10, relative=False)
        b = Vdbe(n_configs=10, relative=False)
        a.update(2.0, 1.0)
        b.update(2000.0, 1000.0)
        assert b.epsilon > a.epsilon

    def test_zero_estimate_treated_as_full_surprise(self):
        vdbe = Vdbe(n_configs=10)
        vdbe.update(1.0, 0.0)
        assert vdbe.epsilon <= 1.0

    def test_should_explore_threshold(self):
        vdbe = Vdbe(n_configs=10)
        vdbe.epsilon = 0.3
        assert vdbe.should_explore(0.29)
        assert not vdbe.should_explore(0.31)

    def test_should_explore_validates_rand(self):
        with pytest.raises(ValueError):
            Vdbe(n_configs=10).should_explore(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Vdbe(n_configs=0)
        with pytest.raises(ValueError):
            Vdbe(n_configs=10, sigma=0.0)
        with pytest.raises(ValueError):
            Vdbe(n_configs=10, min_weight=1.5)
        with pytest.raises(ValueError):
            Vdbe(n_configs=10).update(-1.0, 1.0)
