"""Tests for the UCB1 alternative learner."""

import numpy as np
import pytest

from repro.core.ucb import UcbSystemOptimizer


def make_ucb(n=5, **kwargs):
    rates = np.linspace(1.0, 5.0, n)
    powers = np.linspace(1.0, 3.0, n)
    return UcbSystemOptimizer(rates, powers, seed=0, **kwargs)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            UcbSystemOptimizer([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            UcbSystemOptimizer([1.0, -1.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            UcbSystemOptimizer([1.0], [1.0], exploration=-1.0)


class TestSelection:
    def test_pulls_every_arm_first(self):
        ucb = make_ucb(n=6)
        pulled = set()
        for _ in range(6):
            index = ucb.select().index
            pulled.add(index)
            ucb.update(index, rate=1.0, power=1.0)
        assert pulled == set(range(6))

    def test_initial_pull_order_follows_prior(self):
        ucb = make_ucb(n=5)
        first = ucb.select().index
        # Prior efficiency peaks at the last arm (5/3 ratio).
        priors = np.linspace(1, 5, 5) / np.linspace(1, 3, 5)
        assert first == int(priors.argmax())

    def test_capped_initial_pulls(self):
        ucb = make_ucb(n=50, max_initial_pulls=5)
        for _ in range(30):
            index = ucb.select().index
            ucb.update(index, rate=float(index + 1), power=1.0)
        # Far fewer than all 50 arms were forced.
        assert ucb.visited_count < 50

    def test_exploits_best_arm_eventually(self):
        rng = np.random.default_rng(1)
        true_eff = np.array([1.0, 5.0, 2.0, 3.0])
        ucb = UcbSystemOptimizer(np.ones(4), np.ones(4), seed=2)
        picks = []
        for _ in range(300):
            index = ucb.select().index
            rate = true_eff[index] * rng.lognormal(0, 0.05)
            ucb.update(index, rate, 1.0)
            picks.append(index)
        assert ucb.best_index == 1
        # The best arm dominates late selections.
        late = picks[-100:]
        assert late.count(1) > 60

    def test_update_validation(self):
        ucb = make_ucb()
        with pytest.raises(ValueError):
            ucb.update(0, rate=0.0, power=1.0)
        with pytest.raises(IndexError):
            ucb.update(99, rate=1.0, power=1.0)


class TestInterfaceCompatibility:
    """UCB must be a drop-in for SystemEnergyOptimizer in the runtime."""

    def test_estimates_exposed(self):
        ucb = make_ucb()
        ucb.update(0, rate=10.0, power=5.0)
        assert ucb.rate_estimate(0) == pytest.approx(10.0)
        assert ucb.power_estimate(0) == pytest.approx(5.0)
        assert ucb.efficiency_estimate(0) == pytest.approx(2.0)

    def test_epsilon_reported_zero(self):
        assert make_ucb().epsilon == 0.0

    def test_last_rate_delta_tracked(self):
        ucb = make_ucb()
        ucb.update(0, rate=10.0, power=5.0)
        ucb.update(0, rate=30.0, power=5.0)
        assert ucb.last_rate_delta == pytest.approx(2.0)

    def test_runs_inside_jouleguard_runtime(self, apps):
        from repro.core.budget import EnergyGoal
        from repro.core.jouleguard import JouleGuardRuntime
        from repro.core.types import Measurement
        from repro.hw import get_machine
        from repro.hw.simulator import PlatformSimulator
        from repro.runtime.harness import prior_shapes
        from repro.runtime.oracle import default_energy_per_work

        machine = get_machine("tablet")
        app = apps["x264"]
        rate_shape, power_shape = prior_shapes(machine)
        ucb = UcbSystemOptimizer(
            rate_shape, power_shape, max_initial_pulls=10, seed=3
        )
        epw = default_energy_per_work(machine, app)
        n = 200
        runtime = JouleGuardRuntime(
            seo=ucb,
            table=app.table,
            goal=EnergyGoal.from_factor(2.0, n, epw),
        )
        simulator = PlatformSimulator(machine, app.resource_profile, seed=4)
        total = 0.0
        for _ in range(n):
            decision = runtime.current_decision
            result = simulator.run_iteration(
                machine.space[decision.system_index],
                work=1.0,
                app_speedup=decision.app_config.speedup,
            )
            total += result.energy_j
            runtime.step(
                Measurement(
                    work=1.0,
                    energy_j=result.energy_j,
                    rate=result.measured_rate,
                    power_w=result.measured_power_w,
                )
            )
        assert total <= runtime.accountant.goal.budget_j * 1.1
