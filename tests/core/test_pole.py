"""Tests for adaptive pole placement (Eqns. 9–11)."""

import pytest

from repro.core.pole import (
    AdaptivePole,
    max_stable_error,
    multiplicative_error,
    pole_for_error,
)


class TestMultiplicativeError:
    def test_exact_prediction_is_zero(self):
        assert multiplicative_error(10.0, 10.0) == 0.0

    def test_overestimate_and_underestimate_symmetric_in_ratio(self):
        assert multiplicative_error(5.0, 10.0) == pytest.approx(0.5)
        assert multiplicative_error(20.0, 10.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            multiplicative_error(1.0, 0.0)
        with pytest.raises(ValueError):
            multiplicative_error(-1.0, 1.0)


class TestPoleForError:
    def test_small_error_gives_deadbeat(self):
        # Eqn. 11: δ ≤ 2 → pole 0.
        assert pole_for_error(0.0) == 0.0
        assert pole_for_error(1.9) == 0.0
        assert pole_for_error(2.0) == 0.0

    def test_large_error_gives_positive_pole(self):
        # δ = 4 → pole = 1 - 2/4 = 0.5.
        assert pole_for_error(4.0) == pytest.approx(0.5)

    def test_pole_always_in_unit_interval(self):
        for delta in (0.0, 1.0, 2.0, 5.0, 100.0, 1e6):
            assert 0.0 <= pole_for_error(delta) < 1.0

    def test_margin_tightens(self):
        assert pole_for_error(1.5, margin=2.0) > 0.0
        assert pole_for_error(1.5, margin=1.0) == 0.0

    def test_consistency_with_stability_bound(self):
        # The chosen pole's stability bound covers the measured error.
        for delta in (2.5, 5.0, 50.0):
            pole = pole_for_error(delta)
            assert max_stable_error(pole) == pytest.approx(delta)

    def test_validation(self):
        with pytest.raises(ValueError):
            pole_for_error(-1.0)
        with pytest.raises(ValueError):
            pole_for_error(1.0, margin=0.5)


class TestMaxStableError:
    def test_deadbeat_tolerates_factor_two(self):
        assert max_stable_error(0.0) == 2.0

    def test_paper_example(self):
        # Sec. 3.4.2: pole = 0.1 tolerates a factor of ~2.2.
        assert max_stable_error(0.1) == pytest.approx(2.222, rel=0.01)

    def test_bound_grows_with_pole(self):
        assert max_stable_error(0.9) > max_stable_error(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_stable_error(1.0)


class TestAdaptivePole:
    def test_memoryless_by_default(self):
        adaptive = AdaptivePole()
        adaptive.update(measured_rate=50.0, predicted_rate=10.0)  # δ = 4
        assert adaptive.pole == pytest.approx(0.5)
        adaptive.update(10.0, 10.0)  # δ = 0
        assert adaptive.pole == 0.0

    def test_smoothing_damps_single_spikes(self):
        adaptive = AdaptivePole(smoothing=0.9)
        adaptive.update_from_delta(10.0)
        memoryless = AdaptivePole()
        memoryless.update_from_delta(10.0)
        assert adaptive.pole < memoryless.pole

    def test_update_from_delta_matches_update(self):
        a, b = AdaptivePole(), AdaptivePole()
        a.update(measured_rate=30.0, predicted_rate=10.0)
        b.update_from_delta(2.0)
        assert a.pole == b.pole

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePole().update_from_delta(-0.1)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            AdaptivePole(smoothing=1.0)
