"""Tests for the System Energy Optimizer (Eqns. 1–3)."""

import numpy as np
import pytest

from repro.core.bandit import SystemEnergyOptimizer
from repro.core.vdbe import Vdbe


def make_seo(n=5, **kwargs):
    rates = np.linspace(1.0, 5.0, n)
    powers = np.linspace(1.0, 3.0, n)
    return SystemEnergyOptimizer(rates, powers, seed=0, **kwargs)


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SystemEnergyOptimizer([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            SystemEnergyOptimizer([], [])
        with pytest.raises(ValueError):
            SystemEnergyOptimizer([1.0, -1.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            SystemEnergyOptimizer([1.0], [1.0], alpha=0.0)
        with pytest.raises(ValueError):
            SystemEnergyOptimizer([1.0], [1.0], optimism=0.5)

    def test_initial_best_follows_prior_ratio(self):
        seo = SystemEnergyOptimizer([1.0, 10.0, 2.0], [1.0, 2.0, 4.0])
        assert seo.best_index == 1  # ratio 5 beats 1 and 0.5


class TestEstimates:
    def test_unvisited_uses_prior_shape(self):
        seo = make_seo()
        assert seo.rate_estimate(0) == pytest.approx(1.0)

    def test_scale_calibration_after_first_measurement(self):
        seo = make_seo()
        # Config 0 has shape rate 1.0; measuring 100 sets scale ≈ 100.
        seo.update(0, rate=100.0, power=10.0)
        # Unvisited config 4 (shape 5.0) now estimated near 500.
        assert seo.rate_estimate(4) == pytest.approx(500.0, rel=0.01)

    def test_visited_estimate_tracks_measurements(self):
        seo = make_seo()
        for _ in range(10):
            seo.update(2, rate=42.0, power=7.0)
        assert seo.rate_estimate(2) == pytest.approx(42.0, rel=0.01)
        assert seo.power_estimate(2) == pytest.approx(7.0, rel=0.01)

    def test_ewma_blends_with_alpha(self):
        seo = make_seo(alpha=0.5)
        seo.update(0, rate=10.0, power=1.0)
        first = seo.rate_estimate(0)
        seo.update(0, rate=20.0, power=1.0)
        assert seo.rate_estimate(0) == pytest.approx(0.5 * first + 0.5 * 20)

    def test_optimism_inflates_unvisited_rate(self):
        plain = make_seo(optimism=1.0)
        optimist = make_seo(optimism=1.5)
        plain.update(0, rate=10.0, power=5.0)
        optimist.update(0, rate=10.0, power=5.0)
        assert optimist.rate_estimate(4) > plain.rate_estimate(4)
        # ...and deflates unvisited power (optimistic efficiency).
        assert optimist.power_estimate(4) < plain.power_estimate(4)

    def test_last_rate_delta_is_multiplicative_error(self):
        seo = make_seo()
        seo.update(0, rate=10.0, power=5.0)
        before = seo.rate_estimate(0)
        seo.update(0, rate=before * 3.0, power=5.0)
        assert seo.last_rate_delta == pytest.approx(2.0)


class TestSelection:
    def test_exploit_returns_best_estimated_efficiency(self):
        seo = make_seo()
        seo.vdbe.epsilon = 0.0  # force exploitation
        decision = seo.select()
        assert not decision.explored
        assert decision.index == seo.best_index

    def test_explore_when_epsilon_one(self):
        seo = make_seo(n=50)
        seo.vdbe.epsilon = 1.0
        picks = {seo.select().index for _ in range(100)}
        assert len(picks) > 10  # uniform-ish random coverage

    def test_best_index_updates_with_evidence(self):
        seo = make_seo()
        # Prior favours high indices; measurements reveal arm 0 is great
        # and arm 4 (the prior favourite) is poor.
        for _ in range(5):
            seo.update(0, rate=1000.0, power=1.0)
            seo.update(4, rate=1.0, power=10.0)
            seo.update(3, rate=1.0, power=10.0)
            seo.update(2, rate=1.0, power=10.0)
            seo.update(1, rate=1.0, power=10.0)
        assert seo.best_index == 0

    def test_update_validation(self):
        seo = make_seo()
        with pytest.raises(ValueError):
            seo.update(0, rate=0.0, power=1.0)
        with pytest.raises(IndexError):
            seo.update(99, rate=1.0, power=1.0)

    def test_visited_count(self):
        seo = make_seo()
        seo.update(0, 1.0, 1.0)
        seo.update(0, 1.0, 1.0)
        seo.update(3, 1.0, 1.0)
        assert seo.visited_count == 2


class TestConvergence:
    def test_finds_best_arm_in_small_noisy_space(self):
        rng = np.random.default_rng(7)
        true_rates = np.array([2.0, 8.0, 4.0, 6.0, 3.0])
        true_powers = np.array([2.0, 2.0, 1.0, 3.0, 1.0])
        # True efficiencies: 1, 4, 4, 2, 3 — arms 1 and 2 tie at the top.
        seo = SystemEnergyOptimizer(
            np.ones(5), np.ones(5), seed=1, vdbe=Vdbe(5)
        )
        for _ in range(300):
            index = seo.select().index
            rate = true_rates[index] * rng.lognormal(0, 0.05)
            power = true_powers[index] * rng.lognormal(0, 0.02)
            seo.update(index, rate, power)
        assert seo.best_index in (1, 2)

    def test_epsilon_settles_after_convergence(self):
        rng = np.random.default_rng(8)
        seo = make_seo(n=8)
        for _ in range(400):
            index = seo.select().index
            seo.update(
                index,
                rate=(index + 1.0) * rng.lognormal(0, 0.02),
                power=1.0,
            )
        assert seo.epsilon < 0.1

    def test_adapts_to_regime_change(self):
        # After convergence, swap which arm is best; the learner should
        # discover the change (the Sec. 3.2 robustness claim).
        rng = np.random.default_rng(9)
        rates = {0: 10.0, 1: 1.0}
        seo = SystemEnergyOptimizer(
            np.ones(2), np.ones(2), seed=2, vdbe=Vdbe(2)
        )
        for _ in range(100):
            index = seo.select().index
            seo.update(index, rates[index] * rng.lognormal(0, 0.02), 1.0)
        assert seo.best_index == 0
        rates = {0: 1.0, 1: 10.0}
        for _ in range(300):
            index = seo.select().index
            seo.update(index, rates[index] * rng.lognormal(0, 0.02), 1.0)
        assert seo.best_index == 1
