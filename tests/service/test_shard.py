"""White-box tests for the shard layer's pure parts.

The process-spawning integration paths are covered by the lockstep rig
(:mod:`tests.service.test_lockstep`) and the chaos suite; these tests
pin down the deterministic plumbing — placement, prefix routing, and
the worker command line — that the equivalence argument leans on.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.shard import (
    LEASE_FLOOR_J,
    SESSION_PREFIX_RE,
    HashRing,
    ShardRouter,
)


class TestHashRing:
    def test_routing_is_deterministic(self):
        ring = HashRing([0, 1, 2])
        again = HashRing([0, 1, 2])
        keys = [f"client{i}:0:{i}" for i in range(200)]
        assert [ring.route(k) for k in keys] == [
            again.route(k) for k in keys
        ]

    def test_every_worker_gets_a_share(self):
        ring = HashRing([0, 1, 2, 3])
        owners = {ring.route(f"key-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_growing_the_pool_remaps_a_minority(self):
        # The "consistent" in consistent hashing: adding one worker to
        # four moves roughly 1/5 of the key space, not most of it.
        before = HashRing([0, 1, 2, 3])
        after = HashRing([0, 1, 2, 3, 4])
        keys = [f"key-{i}" for i in range(1000)]
        moved = sum(
            1 for k in keys if before.route(k) != after.route(k)
        )
        assert 0 < moved < len(keys) // 2

    def test_empty_ring_refused(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestSessionPrefix:
    @pytest.mark.parametrize(
        "session_id, index, epoch",
        [
            ("w0e0-s000001", 0, 0),
            ("w7e12-s000420", 7, 12),
            ("w10e3-whatever", 10, 3),
        ],
    )
    def test_round_trips_worker_and_epoch(self, session_id, index, epoch):
        match = SESSION_PREFIX_RE.match(session_id)
        assert match is not None
        assert (int(match.group(1)), int(match.group(2))) == (
            index,
            epoch,
        )

    @pytest.mark.parametrize(
        "session_id",
        ["s000001", "w0-s1", "we0-s1", "W0e0-s1", "", "w0e-s1"],
    )
    def test_foreign_ids_do_not_match(self, session_id):
        assert SESSION_PREFIX_RE.match(session_id) is None


class TestRouterConstruction:
    def test_validates_its_parameters(self):
        with pytest.raises(ValueError):
            ShardRouter(n_shards=0, budget_j=1.0, unix_path="/tmp/x")
        with pytest.raises(ValueError):
            ShardRouter(n_shards=1, budget_j=1.0)  # no listener
        with pytest.raises(ValueError):
            ShardRouter(
                n_shards=1, budget_j=1.0, unix_path="/tmp/x",
                rebalance_period=0,
            )
        with pytest.raises(ValueError):
            ShardRouter(
                n_shards=1, budget_j=1.0, unix_path="/tmp/x",
                transfer_fraction=1.5,
            )

    def test_worker_command_pins_the_shard_contract(self, tmp_path):
        # The worker must boot at the microjoule floor with external
        # rebalance and the admin listener — the three flags the whole
        # lease scheme assumes.
        router = ShardRouter(
            n_shards=2,
            budget_j=100.0,
            unix_path=str(tmp_path / "r.sock"),
            state_dir=str(tmp_path / "store"),
        )
        command = router._worker_command(
            str(tmp_path / "w0e0.sock"), "w0e0-"
        )
        assert "--external-rebalance" in command
        assert "--admin" in command
        assert repr(LEASE_FLOOR_J) in command
        assert "--session-prefix" in command
        assert command[command.index("--session-prefix") + 1] == "w0e0-"
        assert "--state-dir" in command

    def test_worker_command_carries_the_exec_backend(self, tmp_path):
        vector = ShardRouter(
            n_shards=1,
            budget_j=1.0,
            unix_path=str(tmp_path / "r.sock"),
            exec_mode="vector",
        )
        command = vector._worker_command(
            str(tmp_path / "w0e0.sock"), "w0e0-"
        )
        assert command[command.index("--exec") + 1] == "vector"
        scalar = ShardRouter(
            n_shards=1, budget_j=1.0, unix_path=str(tmp_path / "r.sock")
        )
        assert "--exec" not in scalar._worker_command(
            str(tmp_path / "w0e0.sock"), "w0e0-"
        )
        with pytest.raises(ValueError):
            ShardRouter(
                n_shards=1, budget_j=1.0, unix_path="/tmp/x",
                exec_mode="turbo",
            )

    def test_ledger_starts_with_the_full_budget_unleased(self):
        router = ShardRouter(
            n_shards=4, budget_j=250.0, unix_path="/tmp/unused.sock"
        )
        assert router.ledger.available_j == 250.0
        assert router.ledger.leased_uj == {}  # shards join on start()


class TestConcurrentAdmission:
    """Regression: racing opens must not fake budget exhaustion.

    The lease-on-demand admission path (open → budget_exhausted →
    lease shortfall → retry) used to interleave across concurrent
    opens on the same worker, so one open could consume the lease
    another had just taken and surface ``budget_exhausted`` while the
    unleased pool held gigajoules.  The per-worker admission lock
    makes the sequence atomic; this drives a 16-thread open storm at a
    deep budget and requires zero rejections.
    """

    def test_open_storm_never_fakes_exhaustion(self, tmp_path):
        import threading

        from repro.service import ServiceClient, ShardThread

        router = ShardRouter(
            n_shards=2,
            budget_j=1e9,
            unix_path=str(tmp_path / "router.sock"),
            run_dir=str(tmp_path / "run"),
        )
        failures = []

        def one(index):
            try:
                with ServiceClient(
                    unix_path=router.unix_path
                ) as client:
                    opened = client.open_session(
                        machine="tablet",
                        app="x264",
                        factor=1.5,
                        total_work=500.0,
                        seed=index,
                        client_name=f"storm{index}",
                    )
                    client.close(opened.session)
            except Exception as exc:  # collected, asserted below
                failures.append((index, repr(exc)))

        with ShardThread(router):
            threads = [
                threading.Thread(target=one, args=(i,))
                for i in range(16)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            router.ledger.assert_balanced()
        assert failures == []


class TestRidInflightCoalescing:
    """A duplicate rid arriving mid-execution must not re-execute.

    The router's dispatch suspends at the worker round-trip, so the
    response cache alone cannot make retries idempotent: a client that
    times out and reconnects can resend a rid while the original
    request is still in flight.  ``handle_line`` reserves the rid
    before its first await; the duplicate parks on the reservation and
    receives the original execution's response.
    """

    def _router(self):
        return ShardRouter(
            n_shards=1, budget_j=100.0, unix_path="/tmp/unused.sock"
        )

    def test_concurrent_duplicate_rid_executes_once(self):
        import asyncio
        import json

        router = self._router()
        calls = []
        release = None

        async def slow_step(message):
            calls.append(message)
            await release.wait()
            return {"ok": True, "type": "step", "decision": 7}

        async def scenario():
            nonlocal release
            release = asyncio.Event()
            router._handle_step = slow_step
            line = json.dumps(
                {"type": "step", "rid": "retry-1", "session": "s"}
            ).encode() + b"\n"
            first = asyncio.ensure_future(router.handle_line(line))
            await asyncio.sleep(0)  # first reserves the rid, parks
            second = asyncio.ensure_future(router.handle_line(line))
            await asyncio.sleep(0)
            release.set()
            return await asyncio.gather(first, second)

        first, second = asyncio.run(scenario())
        assert len(calls) == 1
        assert first["decision"] == second["decision"] == 7
        assert first["rid"] == second["rid"] == "retry-1"
        assert router.replayed_responses == 1

    def test_cached_response_still_replays_after_completion(self):
        import asyncio
        import json

        router = self._router()
        calls = []

        async def step(message):
            calls.append(message)
            return {"ok": True, "type": "step", "decision": 3}

        async def scenario():
            router._handle_step = step
            line = json.dumps(
                {"type": "step", "rid": "retry-2", "session": "s"}
            ).encode() + b"\n"
            first = await router.handle_line(line)
            second = await router.handle_line(line)
            return first, second

        first, second = asyncio.run(scenario())
        assert len(calls) == 1
        assert first == second
        assert router.replayed_responses == 1
        assert router._rid_inflight == {}

    def test_error_responses_are_not_coalesced_into_the_cache(self):
        import asyncio
        import json

        router = self._router()
        attempts = []

        async def flaky_step(message):
            attempts.append(message)
            if len(attempts) == 1:
                raise ConnectionError("worker went away")
            return {"ok": True, "type": "step", "decision": 1}

        async def scenario():
            router._handle_step = flaky_step
            line = json.dumps(
                {"type": "step", "rid": "retry-3", "session": "s"}
            ).encode() + b"\n"
            first = await router.handle_line(line)
            second = await router.handle_line(line)
            return first, second

        first, second = asyncio.run(scenario())
        assert first["ok"] is False
        assert second["ok"] is True
        assert len(attempts) == 2  # the error was never cached
        assert router._rid_inflight == {}

    def test_cancelled_execution_reexecutes_duplicate_waiters(self):
        # When the original execution is abandoned (its connection
        # died and expired the reservation), a parked retry is the
        # only interested party left: it must run fresh rather than
        # die with the original's CancelledError.
        import asyncio
        import json

        router = self._router()
        calls = []

        async def hung_step(message):
            calls.append(message)
            await asyncio.Event().wait()  # never returns

        async def scenario():
            router._handle_step = hung_step
            line = json.dumps(
                {"type": "step", "rid": "retry-4", "session": "s"}
            ).encode() + b"\n"
            first = asyncio.ensure_future(router.handle_line(line))
            await asyncio.sleep(0)
            second = asyncio.ensure_future(router.handle_line(line))
            await asyncio.sleep(0)
            first.cancel()
            with pytest.raises(asyncio.CancelledError):
                await first
            await asyncio.sleep(0)
            await asyncio.sleep(0)
            assert len(calls) == 2  # the retry re-executed
            assert "retry-4" in router._rid_inflight
            second.cancel()
            with pytest.raises(asyncio.CancelledError):
                await second
            assert router._rid_inflight == {}

        asyncio.run(scenario())


class TestRidExpiryOnConnectionClose:
    """A client gone mid-request must not leak its rid reservation.

    Reserved in-flight rids used to live until the worker round-trip
    returned — forever, for a wedged worker — because the connection
    loop could not see the close while awaiting the dispatch.  The
    read-ahead loop notices the close immediately, cancels the
    dispatch, and the unwind expires the reservation; read-ahead lines
    a vanished client pipelined behind the hung request are dropped
    unexecuted.
    """

    def _router(self):
        return ShardRouter(
            n_shards=1, budget_j=100.0, unix_path="/tmp/unused.sock"
        )

    def test_close_expires_the_inflight_reservation(self, tmp_path):
        import asyncio
        import json

        router = self._router()
        started = None
        unwound = []

        async def hung_step(message):
            started.set()
            try:
                await asyncio.Event().wait()
            except asyncio.CancelledError:
                unwound.append(message)
                raise

        async def scenario():
            nonlocal started
            started = asyncio.Event()
            router._handle_step = hung_step
            path = str(tmp_path / "router.sock")
            server = await asyncio.start_unix_server(
                router._serve_connection, path=path
            )
            try:
                _, writer = await asyncio.open_unix_connection(path)
                writer.write(
                    json.dumps(
                        {"type": "step", "rid": "gone-1", "session": "s"}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                await asyncio.wait_for(started.wait(), timeout=5.0)
                assert "gone-1" in router._rid_inflight
                writer.close()
                await writer.wait_closed()
                for _ in range(500):
                    if "gone-1" not in router._rid_inflight:
                        break
                    await asyncio.sleep(0.01)
                assert "gone-1" not in router._rid_inflight
                assert unwound, "dispatch was not cancelled"
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_pipelined_backlog_is_dropped_with_its_client(
        self, tmp_path
    ):
        import asyncio
        import json

        router = self._router()
        started = None
        calls = []

        async def hung_step(message):
            calls.append(message)
            started.set()
            await asyncio.Event().wait()

        async def scenario():
            nonlocal started
            started = asyncio.Event()
            router._handle_step = hung_step
            path = str(tmp_path / "router.sock")
            server = await asyncio.start_unix_server(
                router._serve_connection, path=path
            )
            try:
                _, writer = await asyncio.open_unix_connection(path)
                for i in range(3):
                    writer.write(
                        json.dumps(
                            {
                                "type": "step",
                                "rid": f"pipe-{i}",
                                "session": "s",
                            }
                        ).encode()
                        + b"\n"
                    )
                await writer.drain()
                await asyncio.wait_for(started.wait(), timeout=5.0)
                writer.close()
                await writer.wait_closed()
                for _ in range(500):
                    if not router._rid_inflight:
                        break
                    await asyncio.sleep(0.01)
                assert router._rid_inflight == {}
                await asyncio.sleep(0.05)
                # Only the request that was already executing ever
                # reached dispatch; the pipelined rest died with the
                # connection.
                assert len(calls) == 1
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_pipelined_responses_stay_ordered_while_connected(
        self, tmp_path
    ):
        import asyncio
        import json

        router = self._router()

        async def echo_step(message):
            # Finish out of submission order on purpose.
            await asyncio.sleep(
                0.02 if message["session"] == "s0" else 0.0
            )
            return {
                "ok": True,
                "type": "step",
                "decision": message["session"],
            }

        async def scenario():
            router._handle_step = echo_step
            path = str(tmp_path / "router.sock")
            server = await asyncio.start_unix_server(
                router._serve_connection, path=path
            )
            try:
                reader, writer = await asyncio.open_unix_connection(
                    path
                )
                for i in range(3):
                    writer.write(
                        json.dumps(
                            {
                                "type": "step",
                                "rid": f"ord-{i}",
                                "session": f"s{i}",
                            }
                        ).encode()
                        + b"\n"
                    )
                await writer.drain()
                answers = []
                for _ in range(3):
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=5.0
                    )
                    answers.append(json.loads(line)["decision"])
                writer.close()
                await writer.wait_closed()
                return answers
            finally:
                server.close()
                await server.wait_closed()

        assert asyncio.run(scenario()) == ["s0", "s1", "s2"]


@pytest.mark.skipif(
    not os.path.isdir("/proc"), reason="needs /proc to enumerate cmdlines"
)
class TestServeShardedShutdown:
    """SIGTERM must reap the worker pool, not orphan it.

    ``asyncio.run`` unwinds ``aclose()`` on KeyboardInterrupt, but the
    default SIGTERM disposition kills the router outright — exactly
    what ``kill <pid>`` in a CI teardown or a process supervisor sends.
    ``_serve_router`` converts SIGTERM into the same graceful path.
    """

    @staticmethod
    def _procs_mentioning(needle, exclude=()):
        pids = []
        skip = {os.getpid(), *exclude}
        for entry in os.listdir("/proc"):
            if not entry.isdigit() or int(entry) in skip:
                continue
            try:
                with open(f"/proc/{entry}/cmdline", "rb") as f:
                    if needle.encode() in f.read():
                        pids.append(int(entry))
            except OSError:
                continue
        return pids

    def test_sigterm_reaps_the_worker_pool(self, tmp_path):
        sock = tmp_path / "router.sock"
        state = str(tmp_path / "state")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--unix", str(sock), "--budget-j", "1e6",
                "--shards", "2", "--state-dir", state,
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while not sock.exists():
                assert proc.poll() is None, "serve died during startup"
                assert time.monotonic() < deadline, "socket never bound"
                time.sleep(0.1)
            # Workers carry --state-dir on their command line, so the
            # unique tmp path identifies the pool.
            workers = self._procs_mentioning(state, exclude=(proc.pid,))
            assert len(workers) == 2
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            deadline = time.monotonic() + 30
            while self._procs_mentioning(state, exclude=(proc.pid,)):
                assert (
                    time.monotonic() < deadline
                ), "workers survived SIGTERM"
                time.sleep(0.2)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
