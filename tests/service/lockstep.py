"""Cross-shard lockstep rig.

The shard router's core claim is *equivalence*: a client cannot tell a
``ShardRouter`` over N worker processes from one single-process daemon
— same admissions, same decisions, same enforcement tiers, same kill
events, same rebalance arithmetic.  This rig makes the claim testable:
it drives the SAME seeded session script through any daemon speaking
the service protocol and returns a flat *trace* of everything the
client observed, normalized so only genuine behavioral differences
survive comparison (session ids carry a per-worker prefix, so they are
mapped back to the script's slot numbers).

A script is a list of *waves*; each wave's slots are opened together
and then driven round-robin — slot order, frame by frame — until every
slot in the wave has finished (completed its steps, been killed, or
been rejected at admission).  Serial round-robin driving matters: the
router guarantees decision-for-decision equality only when requests
are serialized, because that fixes the global heartbeat order that the
rebalance cadence counts.

Measurement sources are *closed-loop*: each heartbeat is computed from
the previous decision the daemon returned, exactly like a real client.
Equality is therefore inductive — identical decisions yield identical
measurements yield identical next decisions — and a single divergent
float anywhere breaks every event after it, which is what makes the
comparison sharp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.types import Measurement
from repro.service import ServiceClient, ServiceError
from repro.service.client import _SimMeasurements

__all__ = [
    "SlotSpec",
    "assert_traces_equal",
    "run_script",
]


@dataclass(frozen=True)
class SlotSpec:
    """One scripted session slot.

    ``burn_per_step`` > 0 switches the slot from the full platform
    simulator to synthetic runaway heartbeats that each burn that
    fraction of the granted budget (work 1.0 per step) — the
    deterministic way to march a session up the enforcement ladder to
    KILL.  ``work_scale`` inflates ``total_work`` past what the pool
    can fund, turning the slot into an admission-rejection probe.
    ``snapshot_after`` asks for a learned-state snapshot once that many
    heartbeats have been applied, so a later wave can probe warm-start
    equality.
    """

    machine: str = "tablet"
    app: str = "x264"
    factor: float = 1.5
    steps: int = 40
    seed: int = 0
    batch: int = 1
    burn_per_step: float = 0.0
    work_scale: float = 1.0
    warm_start: bool = True
    snapshot_after: Optional[int] = None


class _RunawaySource:
    """Synthetic heartbeats burning a fixed fraction of the grant.

    The decision stream is ignored on purpose: a runaway client is one
    whose energy draw does not respond to the controller.
    """

    def __init__(self, granted_budget_j: float, burn_per_step: float) -> None:
        self._energy_j = burn_per_step * granted_budget_j

    def next(self, decision: Dict[str, Any]) -> Measurement:
        return Measurement(
            work=1.0,
            energy_j=self._energy_j,
            rate=10.0,
            power_w=self._energy_j,
        )


@dataclass
class _Slot:
    spec: SlotSpec
    session_id: str
    source: Any
    decision: Dict[str, Any]
    remaining: int
    applied: int = 0
    done: bool = False
    snapshotted: bool = False


def _total_work(spec: SlotSpec) -> float:
    if spec.burn_per_step > 0.0:
        # Work 1.0 per synthetic heartbeat; the scale knob still
        # applies so a runaway slot can also probe admission.
        return float(spec.steps) * spec.work_scale
    probe = _SimMeasurements(spec.machine, spec.app, spec.seed, None)
    return float(spec.steps) * probe.work_per_iteration * spec.work_scale


def _decision_sig(decision: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """A decision as a hashable, order-independent signature."""
    return tuple(sorted(decision.items(), key=lambda item: item[0]))


def _report_sig(report: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """A report signature with the daemon-specific id stripped.

    Session ids differ between daemons by construction (shard workers
    prefix theirs with ``w{i}e{e}-``); everything else in a report —
    budgets, spend, tier, overdraft, close reason — must match.
    """
    sig = []
    for key in sorted(report):
        if key == "session":
            continue
        value = report[key]
        if key == "enforcement" and isinstance(value, dict):
            value = tuple(sorted(
                (k, _freeze(v)) for k, v in value.items()
            ))
        sig.append((key, _freeze(value)))
    return tuple(sig)


def _freeze(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted(
            (key, _freeze(item)) for key, item in value.items()
        ))
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


def _open_slot(
    client: ServiceClient, index: int, spec: SlotSpec, trace: List[Tuple]
) -> Optional[_Slot]:
    try:
        opened = client.open_session(
            machine=spec.machine,
            app=spec.app,
            factor=spec.factor,
            total_work=_total_work(spec),
            seed=spec.seed,
            warm_start=spec.warm_start,
            client_name=f"slot{index}",
        )
    except ServiceError as exc:
        trace.append(("reject", index, exc.code))
        return None
    trace.append((
        "open",
        index,
        opened.warm,
        opened.granted_budget_j,
        _decision_sig(opened.decision),
    ))
    if spec.burn_per_step > 0.0:
        source: Any = _RunawaySource(
            opened.granted_budget_j, spec.burn_per_step
        )
    else:
        source = _SimMeasurements(spec.machine, spec.app, spec.seed, None)
    return _Slot(
        spec=spec,
        session_id=opened.session,
        source=source,
        decision=opened.decision,
        remaining=spec.steps,
    )


def _drive_frame(
    client: ServiceClient, index: int, slot: _Slot, trace: List[Tuple]
) -> None:
    """One batched frame for one slot; records every applied heartbeat."""
    n = min(slot.spec.batch, slot.remaining)
    measurements = [
        slot.source.next(slot.decision) for _ in range(n)
    ]
    result = client.step_batch(slot.session_id, measurements)
    for decision in result.decisions:
        enforcement = decision.get("enforcement", {})
        trace.append((
            "step",
            index,
            slot.applied,
            _decision_sig(
                {k: v for k, v in decision.items() if k != "enforcement"}
            ),
            enforcement.get("tier"),
            enforcement.get("throttle_s"),
        ))
        slot.decision = decision
        slot.applied += 1
    slot.remaining -= result.completed
    if result.killed:
        trace.append(("killed", index, _report_sig(result.report or {})))
        slot.done = True
        return
    after = slot.spec.snapshot_after
    if (
        after is not None
        and not slot.snapshotted
        and slot.applied >= after
    ):
        state = client.snapshot(slot.session_id)
        trace.append(("snapshot", index, _freeze(state)))
        slot.snapshotted = True
    if slot.remaining <= 0:
        report = client.close(slot.session_id)
        trace.append(("close", index, _report_sig(report)))
        slot.done = True


def run_script(
    client: ServiceClient, waves: Sequence[Sequence[SlotSpec]]
) -> List[Tuple]:
    """Drive a script through one daemon; return its observable trace."""
    trace: List[Tuple] = []
    base = 0
    for wave in waves:
        slots: List[Optional[_Slot]] = [
            _open_slot(client, base + offset, spec, trace)
            for offset, spec in enumerate(wave)
        ]
        while any(s is not None and not s.done for s in slots):
            for offset, slot in enumerate(slots):
                if slot is None or slot.done:
                    continue
                _drive_frame(client, base + offset, slot, trace)
        base += len(wave)
    return trace


def assert_traces_equal(
    reference: List[Tuple], candidate: List[Tuple]
) -> None:
    """Element-wise trace equality with a readable first-divergence."""
    for position, (expected, actual) in enumerate(
        zip(reference, candidate)
    ):
        assert expected == actual, (
            f"traces diverge at event {position}:\n"
            f"  single-process: {expected!r}\n"
            f"  sharded:        {actual!r}"
        )
    assert len(reference) == len(candidate), (
        f"trace lengths differ: single-process produced "
        f"{len(reference)} events, sharded {len(candidate)} "
        f"(first unmatched: "
        f"{(reference + candidate)[min(len(reference), len(candidate))]!r})"
    )
