"""Session manager: admission, budget pool, rebalance, reaping."""

import pytest

from repro.apps import build_application
from repro.core.types import Measurement
from repro.hw import get_machine
from repro.runtime.oracle import (
    default_energy_per_work,
    max_feasible_factor,
)
from repro.service.sessions import SessionError, SessionManager
from repro.service.state import SnapshotStore


MEASUREMENT = Measurement(
    work=1.0, energy_j=0.6, rate=30.0, power_w=18.0
)


def manager(budget_j=1e6, **kwargs):
    return SessionManager(global_budget_j=budget_j, **kwargs)


def open_default(mgr, total_work=50.0, factor=1.5, seed=0, **kwargs):
    return mgr.open_session(
        "tablet", "x264", factor=factor, total_work=total_work,
        seed=seed, **kwargs,
    )


class TestAdmission:
    def test_grant_formula(self):
        mgr = manager()
        session = open_default(mgr, total_work=50.0, factor=2.0)
        epw = default_energy_per_work(
            get_machine("tablet"), build_application("x264")
        )
        assert session.granted_budget_j == pytest.approx(
            50.0 * epw / 2.0
        )
        assert mgr.committed_budget_j == pytest.approx(
            session.granted_budget_j
        )

    def test_unknown_machine(self):
        with pytest.raises(SessionError) as excinfo:
            manager().open_session("toaster", "x264", 1.5, 10.0)
        assert excinfo.value.code == "unknown_machine"

    def test_unknown_application(self):
        with pytest.raises(SessionError) as excinfo:
            manager().open_session("tablet", "doom", 1.5, 10.0)
        assert excinfo.value.code == "unknown_application"

    def test_platform_gating(self):
        # swish is a server-only application in Table 2.
        with pytest.raises(SessionError) as excinfo:
            manager().open_session("mobile", "swish", 1.5, 10.0)
        assert excinfo.value.code == "bad_request"

    def test_factor_below_one(self):
        with pytest.raises(SessionError) as excinfo:
            open_default(manager(), factor=0.5)
        assert excinfo.value.code == "bad_request"

    def test_infeasible_factor(self):
        mgr = manager()
        limit = max_feasible_factor(
            get_machine("tablet"), build_application("x264")
        )
        with pytest.raises(SessionError) as excinfo:
            open_default(mgr, factor=limit * 2)
        assert excinfo.value.code == "infeasible_goal"
        assert mgr.sessions_rejected == 1

    def test_feasibility_margin_tightens_the_limit(self):
        limit = max_feasible_factor(
            get_machine("tablet"), build_application("x264")
        )
        strict = manager(feasibility_margin=0.5)
        with pytest.raises(SessionError) as excinfo:
            open_default(strict, factor=limit * 0.9)
        assert excinfo.value.code == "infeasible_goal"

    def test_budget_exhausted(self):
        mgr = manager(budget_j=1.0)
        with pytest.raises(SessionError) as excinfo:
            open_default(mgr, total_work=1e6)
        assert excinfo.value.code == "budget_exhausted"

    def test_admission_never_overcommits(self):
        grant = open_default(manager(), total_work=50.0).granted_budget_j
        budget = 2.5 * grant  # room for two sessions, not three
        mgr = manager(budget_j=budget)
        opened = 0
        while True:
            try:
                open_default(mgr, total_work=50.0)
            except SessionError as exc:
                assert exc.code == "budget_exhausted"
                break
            opened += 1
            assert opened < 100  # must terminate
        assert opened == 2
        assert mgr.committed_budget_j <= budget + 1e-9


class TestLifecycle:
    def test_step_advances_the_decision(self):
        mgr = manager()
        session = open_default(mgr)
        decision = mgr.step(session.session_id, MEASUREMENT)
        assert decision is session.runtime.current_decision
        assert session.steps == 1

    def test_unknown_session(self):
        with pytest.raises(SessionError) as excinfo:
            manager().step("s999999", MEASUREMENT)
        assert excinfo.value.code == "unknown_session"

    def test_report_keys(self):
        mgr = manager()
        session = open_default(mgr)
        mgr.step(session.session_id, MEASUREMENT)
        report = mgr.report(session.session_id)
        for key in (
            "session", "machine", "app", "factor", "steps",
            "granted_budget_j", "effective_budget_j",
            "energy_used_j", "work_done", "epsilon",
        ):
            assert key in report
        assert report["steps"] == 1

    def test_close_returns_unspent_budget_to_the_pool(self):
        mgr = manager(budget_j=100.0)
        session = open_default(mgr, total_work=50.0)
        granted = session.granted_budget_j
        mgr.step(session.session_id, MEASUREMENT)
        final = mgr.close(session.session_id)
        assert final["closed"] is True
        # Only the spent joules are retired for good.
        spent = final["energy_used_j"]
        assert mgr.available_budget_j == pytest.approx(100.0 - spent)
        assert granted > spent  # one step cannot burn the whole grant

    def test_close_all(self):
        mgr = manager()
        open_default(mgr, seed=1)
        open_default(mgr, seed=2)
        assert mgr.close_all() == 2
        assert mgr.live_sessions == []

    def test_reap_idle_uses_the_injected_clock(self):
        now = [0.0]
        mgr = manager(idle_timeout_s=10.0, clock=lambda: now[0])
        session = open_default(mgr)
        now[0] = 5.0
        assert mgr.reap_idle() == []
        now[0] = 20.0
        assert mgr.reap_idle() == [session.session_id]
        assert mgr.live_sessions == []


class TestBudgetInvariant:
    def test_rebalance_conserves_the_sum_of_effective_budgets(self):
        mgr = manager(rebalance_period=5)
        sessions = [open_default(mgr, seed=seed) for seed in range(3)]
        total_before = mgr.committed_budget_j
        for _ in range(10):
            for session in sessions:
                mgr.step(session.session_id, MEASUREMENT)
        assert len(mgr.transfers) >= 1
        assert mgr.committed_budget_j == pytest.approx(
            total_before, rel=1e-9
        )
        # Every recorded transfer round is itself zero-sum.
        for deltas in mgr.transfers:
            assert sum(deltas.values()) == pytest.approx(0.0, abs=1e-9)

    def test_rebalance_skips_underwater_needers(self):
        mgr = manager(rebalance_period=10_000)
        donor = open_default(mgr, seed=1, total_work=100.0)
        needer = open_default(mgr, seed=2, total_work=100.0)
        # Drown the needer: burn several times its whole grant, so any
        # conservative grant would be smaller than its overdraft (the
        # accountant rejects grants that leave spend above budget).
        splurge = Measurement(
            work=1.0,
            energy_j=needer.granted_budget_j,
            rate=30.0,
            power_w=18.0,
        )
        for _ in range(3):
            mgr.step(needer.session_id, splurge)
        mgr.step(
            donor.session_id,
            Measurement(
                work=1.0, energy_j=0.01, rate=30.0, power_w=18.0
            ),
        )
        total = mgr.committed_budget_j
        deltas = mgr.rebalance()  # must not raise ContractError
        assert deltas[needer.session_id] == 0.0
        assert mgr.committed_budget_j == pytest.approx(total)


class TestWarmStart:
    def test_second_session_restores_from_the_store(self):
        store = SnapshotStore()
        mgr = manager(store=store)
        first = open_default(mgr, seed=1)
        for _ in range(20):
            mgr.step(first.session_id, MEASUREMENT)
        mgr.snapshot(first.session_id)
        mgr.close(first.session_id)

        second = open_default(mgr, seed=2)
        assert second.warm_started is True
        assert second.runtime.seo.epsilon < 1.0

    def test_warm_start_can_be_declined(self):
        store = SnapshotStore()
        mgr = manager(store=store)
        first = open_default(mgr, seed=1)
        mgr.step(first.session_id, MEASUREMENT)
        mgr.snapshot(first.session_id)
        mgr.close(first.session_id)

        cold = open_default(mgr, seed=2, warm_start=False)
        assert cold.warm_started is False
        assert cold.runtime.seo.epsilon == 1.0

    def test_stale_snapshot_falls_back_to_cold(self):
        store = SnapshotStore()
        mgr = manager(store=store)
        first = open_default(mgr, seed=1)
        mgr.snapshot(first.session_id)
        mgr.close(first.session_id)
        state = store.get("tablet", "x264")
        state["learned"] = {"seo": {}}  # corrupt it in place

        second = open_default(mgr, seed=2)
        assert second.warm_started is False


class TestStats:
    def test_stats_shape(self):
        mgr = manager()
        session = open_default(mgr)
        stats = mgr.stats()
        assert stats["sessions"] == 1
        assert stats["sessions_opened"] == 1
        assert stats["committed_budget_j"] == pytest.approx(
            session.granted_budget_j
        )
        assert stats["available_budget_j"] < stats["global_budget_j"]


class TestSensorLossDegradation:
    def warm_epw(self, mgr, session, n=3):
        for _ in range(n):
            mgr.step(session.session_id, MEASUREMENT)

    def test_degrades_after_consecutive_sensor_failures(self):
        mgr = manager(degrade_after=3)
        session = open_default(mgr)
        self.warm_epw(mgr, session)
        for _ in range(2):
            mgr.step(
                session.session_id, MEASUREMENT, sensor_ok=False
            )
        assert not session.degraded
        mgr.step(session.session_id, MEASUREMENT, sensor_ok=False)
        assert session.degraded
        assert mgr.sessions_degraded == 1

    def test_degraded_decision_is_known_safe_fallback(self):
        mgr = manager(degrade_after=1)
        session = open_default(mgr)
        self.warm_epw(mgr, session)
        decision = mgr.step(
            session.session_id, MEASUREMENT, sensor_ok=False
        )
        table = session.runtime.table
        assert decision.speedup_setpoint == table.max_speedup
        assert not decision.explored

    def test_healthy_heartbeat_clears_the_streak(self):
        mgr = manager(degrade_after=2)
        session = open_default(mgr)
        self.warm_epw(mgr, session)
        mgr.step(session.session_id, MEASUREMENT, sensor_ok=False)
        mgr.step(session.session_id, MEASUREMENT)  # sensor recovered
        mgr.step(session.session_id, MEASUREMENT, sensor_ok=False)
        assert not session.degraded
        assert session.sensor_failures == 1

    def test_degradation_reclaims_forecast_surplus(self):
        # A cheap workload (low measured epw) leaves a forecast
        # surplus; degrading must return it to the pool.
        mgr = manager(degrade_after=1)
        session = open_default(mgr, total_work=200.0, factor=1.2)
        cheap = Measurement(
            work=1.0, energy_j=0.05, rate=30.0, power_w=18.0
        )
        for _ in range(3):
            mgr.step(session.session_id, cheap)
        mgr.step(session.session_id, cheap, sensor_ok=False)
        assert session.degraded
        assert session.reclaimed_j > 0.0
        report = mgr.report(session.session_id)
        assert report["degraded"]
        assert report["reclaimed_j"] == pytest.approx(
            session.reclaimed_j
        )

    def test_blind_accounting_is_conservative(self):
        # Held-over heartbeats are charged at least the session's own
        # smoothed energy-per-work estimate, never the client's
        # (possibly optimistic) held-over number.
        mgr = manager(degrade_after=10)
        session = open_default(mgr)
        expensive = Measurement(
            work=1.0, energy_j=2.0, rate=30.0, power_w=18.0
        )
        for _ in range(3):
            mgr.step(session.session_id, expensive)
        accountant = session.runtime.accountant
        before = accountant.energy_used_j
        optimistic = Measurement(
            work=1.0, energy_j=0.01, rate=30.0, power_w=18.0
        )
        mgr.step(session.session_id, optimistic, sensor_ok=False)
        charged = accountant.energy_used_j - before
        assert charged >= session.recent_epw * 0.99

    def test_invalid_degrade_after_rejected(self):
        with pytest.raises(ValueError):
            manager(degrade_after=0)


class TestGlobalBudgetRevision:
    def test_pool_can_grow(self):
        mgr = manager(budget_j=1e6)
        applied = mgr.revise_global_budget(2e6)
        assert applied == 2e6
        assert mgr.global_budget_j == 2e6
        assert mgr.stats()["budget_revisions"] == 1

    def test_cut_clamped_to_commitments(self):
        mgr = manager(budget_j=1e6)
        session = open_default(mgr)
        applied = mgr.revise_global_budget(1.0)
        assert applied == pytest.approx(session.granted_budget_j)
        assert mgr.available_budget_j >= 0.0

    def test_revision_is_recorded(self):
        mgr = manager(budget_j=1e6)
        mgr.revise_global_budget(5e5)
        record = mgr.budget_revisions[-1]
        assert record["requested_j"] == 5e5
        assert record["previous_j"] == 1e6

    def test_nonpositive_budget_rejected(self):
        mgr = manager()
        with pytest.raises(ValueError):
            mgr.revise_global_budget(0.0)
