"""Wire-protocol framing, envelopes, and payload codecs."""

import json

import pytest

from repro.core.types import Measurement
from repro.service.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    measurement_from_payload,
    measurement_payload,
    ok_response,
    parse_request,
)


class TestFraming:
    def test_round_trip(self):
        message = {"type": "hello", "version": PROTOCOL_VERSION}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert decode_message(line) == message

    def test_one_line_per_message(self):
        line = encode_message({"a": "x", "b": [1, 2]})
        assert line.count(b"\n") == 1

    def test_compact_and_sorted(self):
        line = encode_message({"b": 1, "a": 2})
        assert line == b'{"a":2,"b":1}\n'

    def test_rejects_invalid_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_message(b"{nope\n")
        assert excinfo.value.code == "bad_request"

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2]\n")

    def test_rejects_oversized_line(self):
        blob = b'"' + b"x" * MAX_LINE_BYTES + b'"\n'
        with pytest.raises(ProtocolError):
            decode_message(blob)


class TestRequestEnvelope:
    def test_parse_splits_type_and_fields(self):
        kind, fields = parse_request(
            {"type": "step", "session": "s1", "measurement": {}}
        )
        assert kind == "step"
        assert fields == {"session": "s1", "measurement": {}}

    def test_every_request_type_parses(self):
        for kind in REQUEST_TYPES:
            assert parse_request({"type": kind}) == (kind, {})

    def test_unknown_type(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"type": "dance"})
        assert excinfo.value.code == "unknown_type"

    def test_missing_type(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"session": "s1"})
        assert excinfo.value.code == "bad_request"


class TestResponses:
    def test_ok_envelope(self):
        response = ok_response("hello", version=1)
        assert response == {"ok": True, "type": "hello", "version": 1}

    def test_error_envelope_is_structured(self):
        response = error_response("unknown_session", "gone")
        assert response["ok"] is False
        assert response["error"]["code"] == "unknown_session"

    def test_unknown_code_degrades_to_internal(self):
        response = error_response("martian", "what")
        assert response["error"]["code"] == "internal"
        assert "martian" in response["error"]["message"]

    def test_protocol_error_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            ProtocolError("martian", "nope")

    def test_error_codes_are_unique(self):
        assert len(set(ERROR_CODES)) == len(ERROR_CODES)


class TestMeasurementCodec:
    def test_round_trip(self):
        measurement = Measurement(
            work=1.0, energy_j=0.5, rate=30.0, power_w=15.0
        )
        payload = measurement_payload(measurement)
        json.dumps(payload)  # must be JSON-able
        assert measurement_from_payload(payload) == measurement

    def test_missing_field(self):
        with pytest.raises(ProtocolError) as excinfo:
            measurement_from_payload({"work": 1.0})
        assert "energy_j" in str(excinfo.value)

    def test_non_object(self):
        with pytest.raises(ProtocolError):
            measurement_from_payload([1, 2, 3])

    def test_non_numeric_field(self):
        with pytest.raises(ProtocolError):
            measurement_from_payload(
                {"work": 1, "energy_j": "a lot", "rate": 1, "power_w": 1}
            )
