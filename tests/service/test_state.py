"""Snapshot capture/restore: round trips, rejection, and the store."""

import pytest

from repro.apps import build_application
from repro.core.budget import EnergyGoal
from repro.core.bandit import SystemEnergyOptimizer
from repro.core.jouleguard import JouleGuardRuntime
from repro.core.types import Measurement
from repro.hw import PlatformSimulator, get_machine
from repro.runtime.harness import prior_shapes
from repro.service.state import (
    STATE_VERSION,
    SnapshotError,
    SnapshotStore,
    SnapshotVersionError,
    apply_state,
    capture_state,
    dumps_state,
    loads_state,
    validate_state,
)


def make_runtime(seed=1, total_work=100.0, budget_j=120.0):
    machine = get_machine("tablet")
    app = build_application("x264")
    rate_shape, power_shape = prior_shapes(machine)
    seo = SystemEnergyOptimizer(rate_shape, power_shape, seed=seed)
    goal = EnergyGoal(total_work=total_work, budget_j=budget_j)
    return machine, app, JouleGuardRuntime(
        seo=seo, table=app.table, goal=goal
    )


def run_steps(machine, app, runtime, steps, seed=1):
    """Drive the runtime against the simulator; return the decisions."""
    simulator = PlatformSimulator(
        machine, app.resource_profile, seed=seed
    )
    decisions = [runtime.current_decision]
    for _ in range(steps):
        decision = decisions[-1]
        result = simulator.run_iteration(
            config=machine.space[decision.system_index],
            work=app.work_per_iteration,
            app_speedup=decision.app_config.speedup,
            app_power_factor=decision.app_config.power_factor,
        )
        decisions.append(
            runtime.step(
                Measurement(
                    work=result.work,
                    energy_j=result.measured_power_w * result.time_s,
                    rate=result.measured_rate,
                    power_w=result.measured_power_w,
                )
            )
        )
    return decisions


class TestCaptureAndValidate:
    def test_envelope_fields(self):
        machine, app, runtime = make_runtime()
        state = capture_state(runtime, "tablet", "x264")
        assert state["version"] == STATE_VERSION
        assert state["machine"] == "tablet"
        assert state["app"] == "x264"
        assert state["n_configs"] == runtime.seo.n_configs
        assert validate_state(state) == state

    def test_json_round_trip(self):
        machine, app, runtime = make_runtime()
        run_steps(machine, app, runtime, 15)
        state = capture_state(runtime, "tablet", "x264")
        assert loads_state(dumps_state(state)) == state

    def test_version_mismatch_rejected(self):
        machine, app, runtime = make_runtime()
        state = capture_state(runtime, "tablet", "x264")
        state["version"] = STATE_VERSION + 1
        with pytest.raises(SnapshotVersionError):
            validate_state(state)

    def test_missing_fields_rejected(self):
        with pytest.raises(SnapshotError) as excinfo:
            validate_state({"version": STATE_VERSION})
        assert "machine" in str(excinfo.value)

    def test_non_object_rejected(self):
        with pytest.raises(SnapshotError):
            validate_state([1, 2, 3])

    def test_invalid_json_rejected(self):
        with pytest.raises(SnapshotError):
            loads_state("{broken")


class TestApplyState:
    def test_restores_learned_tables(self):
        machine, app, source = make_runtime(seed=1)
        run_steps(machine, app, source, 25)
        state = loads_state(
            dumps_state(capture_state(source, "tablet", "x264"))
        )

        _, _, target = make_runtime(seed=1)
        assert target.seo.epsilon == 1.0
        apply_state(target, state, machine="tablet", app="x264")
        assert target.seo.epsilon == source.seo.epsilon
        assert target.seo.best_index == source.seo.best_index
        assert target.seo.visited_count == source.seo.visited_count
        # The committed decision carries the restored (converged) ε.
        assert target.current_decision.epsilon < 1.0

    def test_identity_mismatch_rejected(self):
        machine, app, runtime = make_runtime()
        state = capture_state(runtime, "tablet", "x264")
        _, _, target = make_runtime()
        with pytest.raises(SnapshotError):
            apply_state(target, state, machine="server", app="x264")
        with pytest.raises(SnapshotError):
            apply_state(target, state, machine="tablet", app="swish")

    def test_config_space_mismatch_rejected(self):
        machine, app, runtime = make_runtime()
        state = capture_state(runtime, "tablet", "x264")
        state["n_configs"] = 7
        _, _, target = make_runtime()
        with pytest.raises(SnapshotError):
            apply_state(target, state)

    def test_corrupt_learned_state_rejected(self):
        machine, app, runtime = make_runtime()
        state = capture_state(runtime, "tablet", "x264")
        state["learned"] = {"seo": {}}
        _, _, target = make_runtime()
        with pytest.raises(SnapshotError):
            apply_state(target, state)

    def test_reseeded_restore_is_deterministic(self):
        machine, app, source = make_runtime(seed=1)
        run_steps(machine, app, source, 20)
        state = capture_state(source, "tablet", "x264")

        traces = []
        for _ in range(2):
            _, _, target = make_runtime(seed=1)
            apply_state(target, state, seed=99)
            decisions = run_steps(machine, app, target, 15, seed=99)
            traces.append(
                [decision.system_index for decision in decisions]
            )
        assert traces[0] == traces[1]


class TestSnapshotStore:
    def test_put_get(self):
        machine, app, runtime = make_runtime()
        store = SnapshotStore()
        assert store.get("tablet", "x264") is None
        store.put(capture_state(runtime, "tablet", "x264"))
        assert store.get("tablet", "x264") is not None
        assert ("tablet", "x264") in store
        assert len(store) == 1
        assert store.keys() == [("tablet", "x264")]

    def test_persists_and_reloads(self, tmp_path):
        machine, app, runtime = make_runtime()
        run_steps(machine, app, runtime, 10)
        store = SnapshotStore(directory=tmp_path)
        store.put(capture_state(runtime, "tablet", "x264"))
        assert (tmp_path / "tablet__x264.json").is_file()

        reloaded = SnapshotStore(directory=tmp_path)
        assert reloaded.get("tablet", "x264") == store.get(
            "tablet", "x264"
        )

    def test_ignores_foreign_files(self, tmp_path):
        (tmp_path / "junk.json").write_text("{not json")
        (tmp_path / "other.json").write_text('{"version": 999}')
        store = SnapshotStore(directory=tmp_path)
        assert len(store) == 0

    def test_put_validates(self):
        store = SnapshotStore()
        with pytest.raises(SnapshotError):
            store.put({"version": STATE_VERSION})


class TestSharedDirectoryStore:
    """Multi-process semantics: shard workers sharing one --state-dir."""

    def test_get_falls_through_to_disk_on_memory_miss(self, tmp_path):
        # Worker A snapshots after worker B booted: B's store never saw
        # the file at load time and must re-read the directory.
        machine, app, runtime = make_runtime()
        store_b = SnapshotStore(directory=tmp_path)  # boots first, empty
        store_a = SnapshotStore(directory=tmp_path)
        run_steps(machine, app, runtime, steps=5)
        store_a.put(capture_state(runtime, machine.name, app.name))
        revived = store_b.get(machine.name, app.name)
        assert revived is not None
        assert revived["machine"] == machine.name
        # The fall-through caches: a second get is a memory hit.
        assert store_b.get(machine.name, app.name) is revived

    def test_memory_miss_without_directory_stays_none(self):
        store = SnapshotStore()
        assert store.get("tablet", "x264") is None

    def test_concurrent_writers_never_tear_a_document(self, tmp_path):
        # Two stores hammer the same (machine, app) file while a third
        # reads: every read must parse as one complete document
        # (os.replace is atomic), never a half-written hybrid.
        import threading

        machine, app, runtime = make_runtime()
        run_steps(machine, app, runtime, steps=3)
        state = capture_state(runtime, machine.name, app.name)
        writers = [SnapshotStore(directory=tmp_path) for _ in range(2)]
        errors = []

        def hammer(store):
            try:
                for _ in range(50):
                    store.put(dict(state))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(store,))
            for store in writers
        ]
        for thread in threads:
            thread.start()
        reader = SnapshotStore(directory=tmp_path)
        for _ in range(100):
            revived = reader.get(machine.name, app.name)
            if revived is not None:
                validate_state(revived)
            reader._states.clear()  # force the disk path every read
        for thread in threads:
            thread.join()
        assert errors == []
        final = SnapshotStore(directory=tmp_path)
        assert final.get(machine.name, app.name) is not None

    def test_leaked_scratch_files_are_ignored(self, tmp_path):
        # A writer killed between write and rename leaves a tmp file;
        # it must be invisible to every loader.
        machine, app, runtime = make_runtime()
        run_steps(machine, app, runtime, steps=3)
        store = SnapshotStore(directory=tmp_path)
        store.put(capture_state(runtime, machine.name, app.name))
        (tmp_path / "tablet__x264.tmp-999-123").write_text("{trunc")
        fresh = SnapshotStore(directory=tmp_path)
        assert fresh.get(machine.name, app.name) is not None
        assert fresh.skipped_files == 0  # tmp files are not *.json

    def test_corrupt_disk_file_yields_none_not_crash(self, tmp_path):
        store = SnapshotStore(directory=tmp_path)
        (tmp_path / "tablet__x264.json").write_text("not json at all")
        assert store.get("tablet", "x264") is None
