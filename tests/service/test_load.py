"""Smoke tests for the load generator's measurement discipline.

``benchmarks/bench_service_throughput.py`` compares 1-client and
32-client rows, which is only meaningful because ``run_load`` starts
its clock *after* every client has connected and handshaken (setup
scales with client count; the measurement window must not).  These
tests pin that invariant — and the batched/fast load paths the bench
leans on — in the tier-1 suite, where a regression fails fast instead
of silently poisoning the next trajectory file.
"""

import time

import pytest

from repro.service import (
    ServerThread,
    ServiceClient,
    SessionManager,
    SnapshotStore,
    run_load,
)

SETUP_DELAY_S = 0.15


@pytest.fixture()
def daemon(tmp_path):
    manager = SessionManager(global_budget_j=1e9, store=SnapshotStore())
    sock = str(tmp_path / "load.sock")
    with ServerThread(manager, unix_path=sock):
        yield sock


def test_connection_setup_is_excluded_from_the_window(
    daemon, monkeypatch
):
    """A slow connect inflates ``setup_s``, never ``elapsed_s``.

    Each of the three clients sleeps ``SETUP_DELAY_S`` inside its
    connect; the threads set up concurrently, so the measured window
    would absorb at least one full delay if the clock started before
    the barrier.  It must not: the steps themselves take well under a
    delay's worth of wall clock.
    """
    real_connect = ServiceClient._connect

    def slow_connect(self):
        time.sleep(SETUP_DELAY_S)
        real_connect(self)

    monkeypatch.setattr(ServiceClient, "_connect", slow_connect)
    report = run_load(3, steps=2, unix_path=daemon)
    assert report.errors == 0
    assert report.total_steps == 6
    assert report.setup_s >= SETUP_DELAY_S
    assert report.elapsed_s < SETUP_DELAY_S
    # The derived rates therefore describe the steady state, not the
    # connect storm.
    assert report.steps_per_s == pytest.approx(
        report.total_steps / report.elapsed_s
    )


def test_report_carries_the_window_split(daemon):
    report = run_load(2, steps=3, unix_path=daemon, batch=2, fast=True)
    row = report.as_dict()
    assert row["setup_s"] >= 0.0
    assert row["batch"] == 2
    assert row["n_clients"] == 2
    assert row["total_steps"] == 6
    assert report.steps_per_client == 3


def test_batched_and_fast_load_completes_exactly(daemon):
    report = run_load(
        4, steps=10, unix_path=daemon, batch=4, fast=True
    )
    assert report.errors == 0
    assert report.total_steps == 40
    assert len(report.client_steps_per_s) == 4
    assert all(rate > 0 for rate in report.client_steps_per_s)
    # Per-frame latencies: 10 steps in frames of 4 is 3 round trips.
    assert report.p99_step_latency_s >= report.p50_step_latency_s


def test_failed_connections_are_counted_not_hung(tmp_path):
    report = run_load(
        2, steps=2, unix_path=str(tmp_path / "nobody-home.sock")
    )
    assert report.errors == 2
    assert report.total_steps == 0
