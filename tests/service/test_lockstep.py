"""Cross-shard lockstep: the sharded daemon is behaviorally identical.

One seeded script — mixed batch sizes, a mid-run snapshot, a runaway
slot that climbs the enforcement ladder to KILL, a warm-started second
wave, and an admission rejection — runs through a single-process
daemon and through a two-worker :class:`ShardRouter`.  The traces must
match event for event: every decision float, every enforcement tier,
every kill report, every grant.  The script is long enough (> 100
heartbeats at the default rebalance period of 25) that several
cross-session rebalances happen mid-run, so the router's
scatter/merge/plan/apply pipeline is exercised against the manager's
in-line cadence, not just the easy steady state.

The same script also runs through the vectorized execution backend
(``--exec vector``) — single-process and sharded — and must again
match the single-process *scalar* trace exactly: adopt/evict around
the mid-run snapshot, a kill landing while the session is pooled, the
warm-started second wave, and every rebalance boundary.
"""

import pytest

from repro.service import (
    ServerThread,
    ServiceClient,
    ShardRouter,
    ShardThread,
    SessionManager,
    SnapshotStore,
)

from .lockstep import SlotSpec, assert_traces_equal, run_script

BUDGET_J = 1e4

#: Two waves: the second opens only after the first fully retires, so
#: its x264 slot warm-starts from the snapshot slot 0 took at step 30.
SCRIPT = [
    [
        SlotSpec(
            machine="tablet", app="x264", steps=48, seed=3,
            batch=8, snapshot_after=30,
        ),
        SlotSpec(
            machine="tablet", app="bodytrack", steps=40, seed=5,
            batch=1,
        ),
        SlotSpec(
            machine="tablet", app="x264", steps=30, seed=9,
            batch=4, burn_per_step=0.15, warm_start=False,
        ),
    ],
    [
        SlotSpec(
            machine="tablet", app="x264", steps=20, seed=11,
            batch=8, factor=1.2,
        ),
        SlotSpec(
            machine="tablet", app="radar", steps=10, seed=13,
            work_scale=1e9,
        ),
    ],
]


@pytest.fixture(scope="module")
def single_trace(tmp_path_factory):
    store = SnapshotStore(
        directory=tmp_path_factory.mktemp("single-store")
    )
    sock = str(tmp_path_factory.mktemp("single") / "jg.sock")
    manager = SessionManager(global_budget_j=BUDGET_J, store=store)
    with ServerThread(manager, unix_path=sock):
        with ServiceClient(unix_path=sock) as client:
            yield run_script(client, SCRIPT)


@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("shard-run")
    router = ShardRouter(
        n_shards=2,
        budget_j=BUDGET_J,
        unix_path=str(run_dir / "router.sock"),
        state_dir=str(tmp_path_factory.mktemp("shard-store")),
        run_dir=str(run_dir),
    )
    with ShardThread(router):
        with ServiceClient(unix_path=router.unix_path) as client:
            trace = run_script(client, SCRIPT)
        yield router, trace


@pytest.fixture(scope="module")
def single_vector(tmp_path_factory):
    store = SnapshotStore(
        directory=tmp_path_factory.mktemp("vsingle-store")
    )
    sock = str(tmp_path_factory.mktemp("vsingle") / "jg.sock")
    manager = SessionManager(global_budget_j=BUDGET_J, store=store)
    # Lockstep drives are serial (one heartbeat in flight), which is
    # exactly the regime the solo fast path short-circuits scalar-side.
    # Disable it so the equivalence claim covers the pooled numpy step.
    with ServerThread(
        manager, unix_path=sock, exec_mode="vector", vexec_solo_after=-1
    ) as thread:
        with ServiceClient(unix_path=sock) as client:
            trace = run_script(client, SCRIPT)
        vexec = thread.server.vexec
        yield trace, vexec.flushes, vexec.fallbacks


@pytest.fixture(scope="module")
def sharded_vector(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("vshard-run")
    router = ShardRouter(
        n_shards=2,
        budget_j=BUDGET_J,
        unix_path=str(run_dir / "router.sock"),
        state_dir=str(tmp_path_factory.mktemp("vshard-store")),
        run_dir=str(run_dir),
        exec_mode="vector",
        # Serial drive: keep sessions pool-resident (see single_vector).
        vexec_solo_after=-1,
    )
    with ShardThread(router):
        with ServiceClient(unix_path=router.unix_path) as client:
            trace = run_script(client, SCRIPT)
        yield router, trace


def test_traces_identical_decision_for_decision(single_trace, sharded):
    _, shard_trace = sharded
    assert_traces_equal(single_trace, shard_trace)


def test_vector_single_process_matches_scalar(
    single_trace, single_vector
):
    trace, flushes, fallbacks = single_vector
    assert_traces_equal(single_trace, trace)
    assert flushes > 0, "the vector engine never actually ran"
    assert fallbacks == 0, (
        "the script needs no scalar fallbacks; any here means a "
        "session failed adoption"
    )


def test_vector_sharded_matches_scalar(single_trace, sharded_vector):
    _, trace = sharded_vector
    assert_traces_equal(single_trace, trace)


def test_vector_sharded_ledger_stayed_balanced(sharded_vector):
    router, _ = sharded_vector
    router.ledger.assert_balanced()
    assert router.ledger.forfeited_uj == 0


def test_script_reached_every_interesting_event(single_trace):
    kinds = [event[0] for event in single_trace]
    assert kinds.count("open") == 4
    assert "snapshot" in kinds
    assert kinds.count("killed") == 1
    assert kinds.count("reject") == 1

    killed = next(e for e in single_trace if e[0] == "killed")
    report = dict(killed[2])
    assert report["close_reason"] == "killed"
    assert report["tier"] == "kill"
    # The hard guarantee survives the wire: a killed session never
    # overdraws, in either deployment (trace equality extends this to
    # the sharded run).
    assert report["hard_overdraft_j"] == 0.0

    # Wave two's x264 slot warm-started from slot 0's snapshot.
    warm_open = next(
        e for e in single_trace if e[0] == "open" and e[1] == 3
    )
    assert warm_open[2] is True
    # And the oversized slot was refused at admission.
    reject = next(e for e in single_trace if e[0] == "reject")
    assert reject[1] == 4 and reject[2] == "budget_exhausted"


def test_sharded_run_spread_sessions_and_rebalanced(sharded):
    router, _ = sharded
    placed = {
        dict(sample.labels)["worker"]: sample.value
        for sample in router.registry.samples()
        if sample.name == "jg_shard_sessions_placed_total"
    }
    assert sum(placed.values()) == 4
    assert len([v for v in placed.values() if v > 0]) == 2, (
        f"script placed every session on one worker: {placed}"
    )
    rebalances = next(
        sample.value
        for sample in router.registry.samples()
        if sample.name == "jg_shard_rebalances_total"
    )
    assert rebalances >= 3


def test_sharded_ledger_stayed_balanced(sharded):
    router, _ = sharded
    router.ledger.assert_balanced()
    assert router.ledger.forfeited_uj == 0
    # Every session retired; each worker should be back near its
    # microjoule floor lease, the spent joules accounted in the
    # ledger's leased buckets rather than leaked.
    for name, leased_uj in router.ledger.leased_uj.items():
        assert leased_uj >= 0
