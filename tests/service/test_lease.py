"""Unit tests for the lease ledger's movements and refusals.

The exhaustive interleaving coverage lives in
:mod:`tests.property.test_lease_props`; these are the example-based
specs of each movement's edge behavior.
"""

import pytest

from repro.service.lease import (
    UJ_PER_J,
    LeaseLedger,
    LedgerError,
    joules_to_uj,
    uj_to_joules,
)


def test_conversion_scale():
    assert joules_to_uj(1.0) == UJ_PER_J
    assert joules_to_uj(1e-6) == 1
    assert uj_to_joules(UJ_PER_J) == 1.0


def test_fresh_ledger_is_fully_unleased():
    ledger = LeaseLedger(100.0, shards=("w0", "w1"))
    assert ledger.unleased_uj == joules_to_uj(100.0)
    assert ledger.leased_total_uj == 0
    assert ledger.balance_j("w0") == 0.0
    ledger.assert_balanced()


def test_lease_and_reclaim_are_inverse():
    ledger = LeaseLedger(100.0, shards=("w0",))
    ledger.lease("w0", joules_to_uj(30.0))
    assert ledger.balance_j("w0") == 30.0
    assert ledger.available_j == 70.0
    ledger.reclaim("w0", joules_to_uj(30.0))
    assert ledger.balance_j("w0") == 0.0
    assert ledger.available_j == 100.0
    ledger.assert_balanced()


def test_overdrawn_lease_refused():
    ledger = LeaseLedger(10.0, shards=("w0",))
    with pytest.raises(LedgerError):
        ledger.lease("w0", joules_to_uj(10.0) + 1)


def test_reclaim_beyond_balance_refused():
    ledger = LeaseLedger(10.0, shards=("w0",))
    ledger.lease("w0", 5)
    with pytest.raises(LedgerError):
        ledger.reclaim("w0", 6)


def test_negative_amounts_refused():
    ledger = LeaseLedger(10.0, shards=("w0",))
    with pytest.raises(LedgerError):
        ledger.lease("w0", -1)
    with pytest.raises(LedgerError):
        ledger.reclaim("w0", -1)


def test_unknown_shard_refused():
    ledger = LeaseLedger(10.0)
    for movement in (
        lambda: ledger.lease("ghost", 1),
        lambda: ledger.reclaim("ghost", 1),
        lambda: ledger.forfeit("ghost"),
    ):
        with pytest.raises(LedgerError):
            movement()


def test_duplicate_registration_refused():
    ledger = LeaseLedger(10.0, shards=("w0",))
    with pytest.raises(LedgerError):
        ledger.add_shard("w0")


def test_forfeit_moves_the_whole_lease_to_the_sink():
    ledger = LeaseLedger(100.0, shards=("w0", "w1"))
    ledger.lease("w0", joules_to_uj(40.0))
    ledger.lease("w1", joules_to_uj(10.0))
    assert ledger.forfeit("w0") == joules_to_uj(40.0)
    assert ledger.balance_j("w0") == 0.0
    assert ledger.forfeited_uj == joules_to_uj(40.0)
    assert ledger.forfeits == 1
    # The crash sink is terminal: the successor leases fresh joules,
    # and the books still balance.
    ledger.lease("w0", joules_to_uj(5.0))
    ledger.assert_balanced()
    assert ledger.available_j == 45.0


def test_history_records_every_movement_in_order():
    ledger = LeaseLedger(100.0, shards=("w0",))
    ledger.lease("w0", 7)
    ledger.reclaim("w0", 3)
    ledger.forfeit("w0")
    assert ledger.history == [
        ("lease", "w0", 7),
        ("reclaim", "w0", 3),
        ("forfeit", "w0", 4),
    ]


def test_assert_balanced_catches_corruption():
    ledger = LeaseLedger(10.0, shards=("w0",))
    ledger.leased_uj["w0"] += 1  # simulate a bookkeeping bug
    with pytest.raises(LedgerError):
        ledger.assert_balanced()


def test_as_dict_snapshot():
    ledger = LeaseLedger(10.0, shards=("w0",))
    ledger.lease("w0", 4)
    snapshot = ledger.as_dict()
    assert snapshot["total_uj"] == joules_to_uj(10.0)
    assert snapshot["leased_uj"] == {"w0": 4}
    assert snapshot["forfeits"] == 0


def test_non_positive_total_refused():
    with pytest.raises(ValueError):
        LeaseLedger(0.0)
    with pytest.raises(ValueError):
        LeaseLedger(-5.0)
