"""Unit tests for the vectorized execution engine.

End-to-end exactness (vector ≡ scalar through real sockets, sharded
and single-process, kills and rebalances included) lives in the
lockstep rig (:mod:`tests.service.test_lockstep`).  These tests pin
the engine's mechanics in isolation: the gather window actually
batches, scalar fallbacks fire for the right reasons and count
themselves, the ``scalar_sync`` hook keeps every scalar read current,
and the async server path keeps the rid idempotency contract.
"""

import asyncio

import pytest

from repro.core.types import Measurement
from repro.service import (
    ServiceServer,
    SessionError,
    SessionManager,
    SnapshotStore,
    VexecEngine,
    encode_message,
)


def _manager(**kwargs):
    kwargs.setdefault("global_budget_j", 1e6)
    kwargs.setdefault("store", SnapshotStore())
    return SessionManager(**kwargs)


def _hb(energy_j=0.5):
    return Measurement(work=1.0, energy_j=energy_j, rate=10.0, power_w=5.0)


def _open(manager, seed=0, total_work=1e4):
    return manager.open_session(
        machine_name="tablet",
        app_name="x264",
        factor=1.5,
        total_work=total_work,
        seed=seed,
    )


class TestEngineLifecycle:
    def test_parameter_validation(self):
        manager = _manager()
        with pytest.raises(ValueError):
            VexecEngine(manager, max_batch=0)
        with pytest.raises(ValueError):
            VexecEngine(manager, max_delay_us=-1.0)

    def test_step_before_start_refused(self):
        manager = _manager()
        engine = VexecEngine(manager)

        async def scenario():
            with pytest.raises(RuntimeError):
                await engine.step_one("s1", _hb())

        asyncio.run(scenario())

    def test_close_detaches_the_scalar_sync_hook(self):
        manager = _manager()
        engine = VexecEngine(manager)
        assert manager.scalar_sync is not None

        async def scenario():
            engine.start()
            await engine.aclose()

        asyncio.run(scenario())
        assert manager.scalar_sync is None


class TestGatherWindow:
    def test_concurrent_heartbeats_share_flushes(self):
        manager = _manager()
        sessions = [_open(manager, seed=i) for i in range(8)]
        engine = VexecEngine(manager, max_batch=8, max_delay_us=2000.0)

        async def scenario():
            engine.start()
            try:
                for _ in range(5):
                    await asyncio.gather(*[
                        engine.step_one(s.session_id, _hb())
                        for s in sessions
                    ])
            finally:
                await engine.aclose()

        asyncio.run(scenario())
        # 40 heartbeats; simultaneous arrival means far fewer flushes
        # than steps (worst realistic case: one warm-up flush per
        # round plus one gathered flush).
        assert engine.flushes < 20
        assert engine.fallbacks == 0

    def test_lone_heartbeat_skips_the_delay_window(self):
        manager = _manager()
        session = _open(manager)
        # An absurd window: if the lone-heartbeat fast path regressed,
        # this test times out instead of passing slowly.
        engine = VexecEngine(manager, max_batch=64, max_delay_us=2e6)

        async def scenario():
            engine.start()
            try:
                entry = await asyncio.wait_for(
                    engine.step_one(session.session_id, _hb()),
                    timeout=1.0,
                )
            finally:
                await engine.aclose()
            return entry

        entry = asyncio.run(scenario())
        assert "decision" in entry

    def test_duplicate_session_in_one_window_carries_over(self):
        manager = _manager()
        session = _open(manager)
        engine = VexecEngine(manager, max_batch=8, max_delay_us=0.0)

        async def scenario():
            engine.start()
            try:
                entries = await asyncio.gather(*[
                    engine.step_one(session.session_id, _hb())
                    for _ in range(4)
                ])
            finally:
                await engine.aclose()
            return entries

        entries = asyncio.run(scenario())
        assert len(entries) == 4
        assert session.steps == 4  # every heartbeat applied, in order


class TestScalarFallback:
    def test_sensor_loss_falls_back_and_counts(self):
        manager = _manager()
        session = _open(manager)
        engine = VexecEngine(manager)

        async def scenario():
            engine.start()
            try:
                await engine.step_one(session.session_id, _hb())
                assert engine.pooled_count == 1
                entry = await engine.step_one(
                    session.session_id, _hb(), sensor_ok=False
                )
            finally:
                await engine.aclose()
            return entry

        entry = asyncio.run(scenario())
        assert "decision" in entry
        assert engine.fallbacks == 1
        samples = {
            (s.name, tuple(sorted(s.labels))): s.value
            for s in manager.telemetry.registry.samples()
        }
        key = (
            "jg_vexec_fallbacks_total",
            tuple(sorted({"reason": "sensor_loss"}.items())),
        )
        assert samples.get(key) == 1.0

    def test_unknown_session_raises_the_scalar_error(self):
        manager = _manager()
        engine = VexecEngine(manager)

        async def scenario():
            engine.start()
            try:
                with pytest.raises(SessionError) as excinfo:
                    await engine.step_one("nope", _hb())
            finally:
                await engine.aclose()
            return excinfo.value

        error = asyncio.run(scenario())
        assert error.code == "unknown_session"


class TestScalarSync:
    def test_scalar_reads_evict_first(self):
        manager = _manager()
        session = _open(manager)
        engine = VexecEngine(manager)

        async def scenario():
            engine.start()
            try:
                await engine.step_one(session.session_id, _hb())
                assert engine.pooled_count == 1
                # Any scalar read of the session must sync it out of
                # the pool so the numbers it reports are current.
                report = manager.report(session.session_id)
                assert engine.pooled_count == 0
                assert report["steps"] == 1
                # The next heartbeat re-adopts transparently.
                await engine.step_one(session.session_id, _hb())
                assert engine.pooled_count == 1
            finally:
                await engine.aclose()

        asyncio.run(scenario())

    def test_pooled_energy_is_visible_to_scalar_reports(self):
        manager = _manager()
        session = _open(manager)
        engine = VexecEngine(manager)

        async def scenario():
            engine.start()
            try:
                for _ in range(5):
                    await engine.step_one(session.session_id, _hb(0.25))
            finally:
                await engine.aclose()

        asyncio.run(scenario())
        report = manager.report(session.session_id)
        assert report["steps"] == 5
        assert report["energy_used_j"] == pytest.approx(1.25)


class TestSoloFastPath:
    def _drive(self, solo_after, steps=6, seed=0):
        manager = _manager()
        session = _open(manager, seed=seed)
        engine = VexecEngine(manager, solo_after=solo_after)
        entries = []
        pooled = []

        async def scenario():
            engine.start()
            try:
                for _ in range(steps):
                    entries.append(
                        await engine.step_one(session.session_id, _hb())
                    )
                pooled.append(engine.pooled_count)
            finally:
                await engine.aclose()

        asyncio.run(scenario())
        return manager, engine, entries, pooled[0]

    def test_streak_of_single_flushes_goes_scalar_side(self):
        manager, engine, _, pooled = self._drive(solo_after=2, steps=6)
        # Flushes 1-2 build the streak in the pool; from the third
        # single-session flush on, heartbeats are served scalar-side
        # and the session is evicted from the pool.
        assert engine.solos == 4
        assert pooled == 0
        assert engine.fallbacks == 0  # a regime, not a fallback
        samples = {
            s.name: s.value
            for s in manager.telemetry.registry.samples()
        }
        assert samples.get("jg_vexec_solo_steps_total") == 4.0

    def test_negative_solo_after_always_pools(self):
        manager, engine, _, pooled = self._drive(solo_after=-1, steps=6)
        assert engine.solos == 0
        assert pooled == 1

    def test_solo_decisions_match_the_pooled_path(self):
        # Same seed, same heartbeats: the solo regime must be
        # decision-for-decision identical to staying in the pool.
        _, _, pooled, _ = self._drive(solo_after=-1, steps=8, seed=3)
        _, _, soloed, _ = self._drive(solo_after=0, steps=8, seed=3)
        for a, b in zip(pooled, soloed):
            assert a["decision"] == b["decision"]
            assert a["enforcement"] == b["enforcement"]

    def test_contended_wave_resets_the_streak_and_repools(self):
        manager = _manager()
        first = _open(manager, seed=0)
        second = _open(manager, seed=1)
        engine = VexecEngine(
            manager, max_batch=8, max_delay_us=2000.0, solo_after=1
        )

        async def scenario():
            engine.start()
            try:
                for _ in range(3):
                    await engine.step_one(first.session_id, _hb())
                assert engine.solos > 0
                assert engine.pooled_count == 0
                # A two-session wave must re-adopt and step the pool.
                await asyncio.gather(
                    engine.step_one(first.session_id, _hb()),
                    engine.step_one(second.session_id, _hb()),
                )
                assert engine.pooled_count == 2
            finally:
                await engine.aclose()

        asyncio.run(scenario())


class TestAsyncServerPath:
    def _line(self, payload):
        return encode_message(payload)

    def test_duplicate_rid_mid_flight_executes_once(self):
        manager = _manager()
        session = _open(manager)
        server = ServiceServer(
            manager, unix_path="/tmp/unused-vexec.sock",
            exec_mode="vector",
        )
        line = self._line({
            "type": "step",
            "rid": "v-retry",
            "session": session.session_id,
            "measurement": {
                "work": 1.0, "energy_j": 0.5,
                "rate": 10.0, "power_w": 5.0,
            },
        })

        async def scenario():
            server.vexec = VexecEngine(manager)
            server.vexec.start()
            try:
                first = asyncio.ensure_future(
                    server.handle_line_async(line)
                )
                await asyncio.sleep(0)
                second = asyncio.ensure_future(
                    server.handle_line_async(line)
                )
                return await asyncio.gather(first, second)
            finally:
                await server.vexec.aclose()

        first, second = asyncio.run(scenario())
        assert first == second
        assert first["rid"] == "v-retry"
        assert session.steps == 1  # the duplicate never re-stepped
        assert server.replayed_responses == 1

    def test_error_responses_are_not_cached(self):
        manager = _manager()
        server = ServiceServer(
            manager, unix_path="/tmp/unused-vexec.sock",
            exec_mode="vector",
        )
        line = self._line({
            "type": "step",
            "rid": "v-err",
            "session": "missing",
            "measurement": {
                "work": 1.0, "energy_j": 0.5,
                "rate": 10.0, "power_w": 5.0,
            },
        })

        async def scenario():
            server.vexec = VexecEngine(manager)
            server.vexec.start()
            try:
                first = await server.handle_line_async(line)
                second = await server.handle_line_async(line)
            finally:
                await server.vexec.aclose()
            return first, second

        first, second = asyncio.run(scenario())
        assert first["ok"] is False and second["ok"] is False
        assert server.replayed_responses == 0
        assert server._rid_inflight == {}
