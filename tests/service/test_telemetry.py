"""Tests for the daemon's telemetry sink (registry + event log)."""

from repro.enforce.ladder import Tier, TierTransition
from repro.service.telemetry import ServiceTelemetry


def _value(telemetry, name, **labels):
    for sample in telemetry.registry.samples():
        if sample.name == name and dict(sample.labels) == labels:
            return sample.value
    return None


def _transition(frm, to, step=5):
    return TierTransition(
        step=step,
        from_tier=frm,
        to_tier=to,
        projected_overrun=0.61,
        burn_fraction=0.55,
        headroom_steps=12.0,
    )


class TestRecorders:
    def test_open_close_lifecycle(self):
        telemetry = ServiceTelemetry()
        telemetry.record_open("s1", open_count=1)
        telemetry.record_open("s2", open_count=2)
        telemetry.record_close("s1", reason="client", open_count=1)
        assert _value(telemetry, "jg_sessions_opened_total") == 2.0
        assert _value(telemetry, "jg_sessions_open") == 1.0
        assert (
            _value(
                telemetry,
                "jg_sessions_closed_total",
                reason="client",
            )
            == 1.0
        )
        kinds = [e.kind for e in telemetry.events.since(0)]
        assert kinds == [
            "session_opened",
            "session_opened",
            "session_closed",
        ]

    def test_step_updates_session_gauges(self):
        telemetry = ServiceTelemetry()
        telemetry.record_step(
            "s1",
            energy_j=2.5,
            pole=0.8,
            epsilon=0.05,
            burn_fraction=0.4,
            tier=Tier.DEGRADE,
            overdraft_j=0.0,
        )
        telemetry.record_step(
            "s1",
            energy_j=1.5,
            pole=0.7,
            epsilon=0.04,
            burn_fraction=0.5,
            tier=Tier.DEGRADE,
            overdraft_j=0.0,
        )
        assert _value(telemetry, "jg_steps_total") == 2.0
        assert (
            _value(telemetry, "jg_energy_spent_joules_total") == 4.0
        )
        assert (
            _value(telemetry, "jg_session_pole", session="s1") == 0.7
        )
        assert (
            _value(telemetry, "jg_session_tier", session="s1") == 2.0
        )

    def test_close_drops_session_series(self):
        telemetry = ServiceTelemetry()
        telemetry.record_step(
            "s1",
            energy_j=1.0,
            pole=0.9,
            epsilon=0.1,
            burn_fraction=0.1,
            tier=Tier.NOMINAL,
            overdraft_j=0.0,
        )
        telemetry.record_close("s1", reason="killed", open_count=0)
        assert (
            _value(telemetry, "jg_session_pole", session="s1") is None
        )

    def test_transition_counts_edges_and_logs(self):
        telemetry = ServiceTelemetry()
        telemetry.record_transition(
            "s1", _transition(Tier.ADVISE, Tier.DEGRADE)
        )
        telemetry.record_transition(
            "s1", _transition(Tier.DEGRADE, Tier.THROTTLE, step=9)
        )
        assert (
            _value(
                telemetry,
                "jg_enforcement_transitions_total",
                from_tier="advise",
                to_tier="degrade",
            )
            == 1.0
        )
        last = telemetry.events.tail(1)[0]
        assert last.kind == "tier_transition"
        assert last.fields["edge"] == "degrade->throttle"
        assert last.fields["step"] == 9

    def test_pool_and_request_recorders(self):
        telemetry = ServiceTelemetry()
        telemetry.record_pool(
            global_j=100.0, committed_j=40.0, available_j=60.0
        )
        telemetry.record_request("step", ok=True, seconds=0.002)
        telemetry.record_request("step", ok=False, seconds=0.001)
        assert (
            _value(telemetry, "jg_budget_available_joules") == 60.0
        )
        assert (
            _value(
                telemetry, "jg_requests_total", type="step", ok="true"
            )
            == 1.0
        )
        assert _value(telemetry, "jg_request_seconds_count") == 2.0


class TestDisabled:
    def test_disabled_recorders_are_noops(self):
        telemetry = ServiceTelemetry.disabled()
        telemetry.record_open("s1", open_count=1)
        telemetry.record_step(
            "s1",
            energy_j=1.0,
            pole=0.9,
            epsilon=0.1,
            burn_fraction=0.1,
            tier=Tier.NOMINAL,
            overdraft_j=0.0,
        )
        telemetry.record_transition(
            "s1", _transition(Tier.NOMINAL, Tier.ADVISE)
        )
        telemetry.record_pool(1.0, 1.0, 0.0)
        telemetry.record_request("step", ok=True, seconds=0.0)
        telemetry.record_event("anything", detail=1)
        assert telemetry.registry.samples() == []
        assert len(telemetry.events) == 0
