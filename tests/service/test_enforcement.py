"""Tests for enforcement-ladder integration in the session manager.

These drive the manager directly with hand-crafted heartbeats whose
per-step energy is a chosen fraction of the session's grant, so tier
trajectories are deterministic and independent of the simulator.
"""

import pytest

from repro.core.types import Measurement
from repro.enforce.ladder import monotone_transitions
from repro.service.sessions import (
    SessionError,
    SessionKilled,
    SessionManager,
)


def open_session(manager, total_work=1000.0):
    return manager.open_session(
        machine_name="tablet",
        app_name="x264",
        factor=1.5,
        total_work=total_work,
        seed=0,
        warm_start=False,
    )


def heartbeat(manager, session, energy_j):
    measurement = Measurement(
        work=1.0,
        energy_j=energy_j,
        rate=10.0,
        power_w=energy_j,
    )
    return manager.step(session.session_id, measurement)


def drive_runaway(manager, session, burn_per_step=0.15, steps=20):
    """Feed constant heartbeats burning ``burn_per_step`` of the grant."""
    energy_j = burn_per_step * session.granted_budget_j
    for _ in range(steps):
        heartbeat(manager, session, energy_j)


class TestKillPath:
    def test_runaway_session_is_killed_with_zero_overdraft(self):
        manager = SessionManager(global_budget_j=1e6)
        session = open_session(manager)
        with pytest.raises(SessionKilled) as excinfo:
            drive_runaway(manager, session)
        killed = excinfo.value
        assert killed.code == "session_killed"
        report = killed.report
        assert report["close_reason"] == "killed"
        assert report["tier"] == "kill"
        # The hard guarantee: a killed session never overdraws.
        assert report["hard_overdraft_j"] == 0.0
        assert report["energy_used_j"] <= report["effective_budget_j"]
        # Every rung of the ladder was climbed, one at a time.
        ok, reason = monotone_transitions(
            report["enforcement"]["transitions"]
        )
        assert ok, reason
        labels = [
            t["to"] for t in report["enforcement"]["transitions"]
        ]
        assert labels == ["advise", "degrade", "throttle", "kill"]

    def test_kill_retires_budget_zero_sum(self):
        manager = SessionManager(global_budget_j=1e6)
        session = open_session(manager)
        with pytest.raises(SessionKilled) as excinfo:
            drive_runaway(manager, session)
        spent = excinfo.value.report["energy_used_j"]
        # The session is gone; only what it burned left the pool.
        assert manager.live_sessions == []
        assert manager.committed_budget_j == 0.0
        assert manager.available_budget_j == pytest.approx(
            1e6 - spent
        )
        assert manager.stats()["sessions_killed"] == 1

    def test_step_after_kill_is_unknown_session(self):
        manager = SessionManager(global_budget_j=1e6)
        session = open_session(manager)
        with pytest.raises(SessionKilled):
            drive_runaway(manager, session)
        with pytest.raises(SessionError) as excinfo:
            heartbeat(manager, session, 1.0)
        assert excinfo.value.code == "unknown_session"


class TestSoftTiers:
    def test_enforced_degrade_pins_without_reclaiming(self):
        manager = SessionManager(global_budget_j=1e6)
        session = open_session(manager)
        energy_j = 0.15 * session.granted_budget_j
        # Two runaway heartbeats: burn 0.30 >= the degrade gate.
        heartbeat(manager, session, energy_j)
        decision = heartbeat(manager, session, energy_j)
        report = manager.report(session.session_id)
        assert report["tier"] == "degrade"
        assert report["degraded"] is True
        # Pin-only: unlike sensor-loss degradation, no joules move.
        assert report["reclaimed_j"] == 0.0
        assert report["effective_budget_j"] == pytest.approx(
            session.granted_budget_j
        )
        # The pinned decision is the runtime's safe fallback.
        assert (
            decision.system_index
            == session.runtime.current_decision.system_index
        )

    def test_throttle_sets_duty_cycle_sleep(self):
        manager = SessionManager(global_budget_j=1e6)
        session = open_session(manager)
        energy_j = 0.15 * session.granted_budget_j
        for _ in range(4):
            heartbeat(manager, session, energy_j)
        enforcement = manager.enforcement_of(session.session_id)
        assert enforcement["tier"] == "throttle"
        assert enforcement["throttle_s"] > 0.0

    def test_healthy_session_stays_nominal(self):
        manager = SessionManager(global_budget_j=1e6)
        session = open_session(manager, total_work=100.0)
        # Spend exactly the granted energy-per-work: no forecast
        # overrun, no burn ahead of progress.
        energy_j = session.granted_budget_j / 100.0
        for _ in range(30):
            heartbeat(manager, session, energy_j)
        report = manager.report(session.session_id)
        assert report["tier"] == "nominal"
        assert report["throttle_s"] == 0.0
        assert report["enforcement"]["transitions"] == []


class TestDisabledEnforcement:
    def test_none_policy_never_intervenes(self):
        manager = SessionManager(global_budget_j=1e6, enforcement=None)
        session = open_session(manager)
        drive_runaway(manager, session)  # must not raise
        report = manager.report(session.session_id)
        assert report["tier"] == "nominal"
        assert report["enforcement"] is None
        assert manager.stats()["sessions_killed"] == 0
