"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main


class TestListing:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in ("mobile", "tablet", "server"):
            assert name in out
        assert "1024" in out  # server space size

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("x264", "swish", "streamcluster"):
            assert name in out
        assert "560" in out  # x264 config count


class TestCharacterize:
    def test_csv_output(self, capsys):
        assert main(["characterize", "tablet", "x264", "--points", "8"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l and not l.startswith("#")]
        assert lines[0] == "index,efficiency,rate,power_w"
        assert len(lines) > 3

    def test_platform_gating(self, capsys):
        assert main(["characterize", "mobile", "swish"]) == 2
        assert "does not run" in capsys.readouterr().err


class TestRun:
    def test_summary_printed(self, capsys):
        code = main(
            ["run", "tablet", "x264", "1.5", "--iterations", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "relative_error_pct" in out
        assert "mean_accuracy" in out

    def test_controller_choice(self, capsys):
        code = main(
            [
                "run", "server", "swish", "1.5",
                "--controller", "system-only", "--iterations", "30",
            ]
        )
        assert code == 0
        assert "system_only" in capsys.readouterr().out

    def test_exports(self, tmp_path, capsys):
        trace = tmp_path / "t.csv"
        summary = tmp_path / "s.json"
        code = main(
            [
                "run", "tablet", "x264", "1.5",
                "--iterations", "20",
                "--trace-csv", str(trace),
                "--summary-json", str(summary),
            ]
        )
        assert code == 0
        assert trace.exists()
        loaded = json.loads(summary.read_text())
        assert loaded["iterations"] == 20

    def test_unknown_app_raises(self):
        with pytest.raises(ValueError):
            main(["run", "tablet", "doom", "1.5"])

    def test_plot_renders_charts(self, capsys):
        code = main(
            ["run", "tablet", "x264", "1.5", "--iterations", "40", "--plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "energy per work unit" in out
        assert "accuracy" in out
        assert "*" in out


class TestSweepAndOracle:
    def test_sweep_with_csv(self, tmp_path, capsys):
        out_csv = tmp_path / "sweep.csv"
        code = main(
            [
                "sweep", "tablet",
                "--iterations", "25",
                "--margin", "0.3",
                "--csv", str(out_csv),
            ]
        )
        assert code == 0
        assert out_csv.exists()
        out = capsys.readouterr().out
        assert "rel err %" in out

    def test_oracle(self, capsys):
        assert main(["oracle", "server", "swish", "1.5"]) == 0
        out = capsys.readouterr().out
        assert "oracle accuracy" in out
        assert "max feasible factor" in out

    def test_racepace(self, capsys):
        assert main(["racepace", "mobile", "--slacks", "2", "8"]) == 0
        out = capsys.readouterr().out
        assert "winner" in out
        assert "pace" in out or "race" in out

    def test_racepace_infeasible_slack(self, capsys):
        assert main(["racepace", "tablet", "--slacks", "0.0001"]) == 0
        assert "infeasible" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestService:
    def test_serve_requires_an_address(self, capsys):
        assert main(["serve"]) == 2
        assert "--unix" in capsys.readouterr().err

    def test_client_requires_one_address(self, capsys):
        assert main(["client"]) == 2
        assert "--unix" in capsys.readouterr().err
        assert main(
            ["client", "--host", "127.0.0.1", "--unix", "/tmp/x.sock"]
        ) == 2

    def test_client_against_live_daemon(self, tmp_path, capsys):
        from repro.service import ServerThread, SessionManager

        sock = str(tmp_path / "jg.sock")
        manager = SessionManager(global_budget_j=1e8)
        with ServerThread(manager, unix_path=sock):
            code = main(
                [
                    "client", "--unix", sock,
                    "--steps", "12", "--snapshot",
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "convergence step" in out
            assert "snapshot" in out

            code = main(
                ["client", "--unix", sock, "--steps", "12",
                 "--clients", "2"]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "p95_step_latency_ms" in out
            assert "errors: 0" in out

    def test_client_reports_connection_failure(self, tmp_path, capsys):
        code = main(
            ["client", "--unix", str(tmp_path / "missing.sock"),
             "--steps", "5"]
        )
        assert code == 1
        assert "client failed" in capsys.readouterr().err


class TestChaos:
    def test_list_plans(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "sensor-dropout" in out
        assert "crash-restart" in out

    def test_single_plan_passes(self, capsys):
        code = main(
            ["chaos", "--plan", "sensor-dropout",
             "--iterations", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sensor-dropout" in out and "PASS" in out

    def test_json_report(self, capsys):
        code = main(
            ["chaos", "--plan", "budget-cut",
             "--iterations", "40", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is True
        assert "budget-cut" in report["plans"]

    def test_unknown_plan_is_an_error(self, capsys):
        assert main(["chaos", "--plan", "nope"]) == 2
        assert "unknown plan" in capsys.readouterr().err

    def test_client_retry_flag(self, tmp_path, capsys):
        from repro.service import ServerThread, SessionManager

        sock = str(tmp_path / "jg.sock")
        manager = SessionManager(global_budget_j=1e8)
        with ServerThread(manager, unix_path=sock):
            code = main(
                ["client", "--unix", sock, "--steps", "8",
                 "--retry"]
            )
            assert code == 0
            assert "convergence step" in capsys.readouterr().out
