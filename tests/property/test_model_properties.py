"""Property-based tests on the platform models and oracle.

Complements test_properties.py (core data structures) with invariants of
the hardware substrate: energy accounting, model monotonicity, and
oracle consistency, over randomly drawn configurations and profiles.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_application
from repro.hw import (
    AppResourceProfile,
    GENERIC_PROFILE,
    NoiseModel,
    PlatformSimulator,
    get_machine,
    system_power,
    work_rate,
)
from repro.runtime.oracle import (
    best_system_energy_per_work,
    default_energy_per_work,
    oracle_accuracy,
)

TABLET = get_machine("tablet")
SERVER = get_machine("server")
SERVER_CONFIGS = list(SERVER.space)
TABLET_CONFIGS = list(TABLET.space)


profiles = st.builds(
    AppResourceProfile,
    name=st.just("prop"),
    base_rate=st.floats(min_value=0.1, max_value=100.0),
    parallel_fraction=st.floats(min_value=0.0, max_value=0.99),
    clock_sensitivity=st.floats(min_value=0.3, max_value=1.2),
    memory_boundness=st.floats(min_value=0.0, max_value=1.0),
    ht_gain=st.floats(min_value=0.0, max_value=1.0),
    activity_factor=st.floats(min_value=0.3, max_value=1.5),
)


@given(
    profiles,
    st.integers(min_value=0, max_value=len(SERVER_CONFIGS) - 1),
)
@settings(max_examples=50)
def test_rate_and_power_always_positive(profile, index):
    config = SERVER_CONFIGS[index]
    assert work_rate(SERVER, config, profile) > 0
    assert (
        system_power(SERVER, config, profile)
        >= SERVER.external_w + SERVER.idle_w
    )


@given(
    profiles,
    st.integers(min_value=0, max_value=len(SERVER_CONFIGS) - 1),
)
@settings(max_examples=50)
def test_default_config_is_fastest_or_equal_modulo_thrash(profile, index):
    # Monotonicity only holds without thrashing; assert the weaker,
    # always-true invariant: no config beats default by more than the
    # thrash mechanism can explain for compute-bound profiles.
    if profile.memory_boundness > 0.0:
        return
    config = SERVER_CONFIGS[index]
    assert work_rate(SERVER, config, profile) <= work_rate(
        SERVER, SERVER.default_config, profile
    ) * (1.0 + 1e-9)


@given(
    profiles,
    st.integers(min_value=0, max_value=len(TABLET_CONFIGS) - 1),
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=0.25, max_value=4.0),
)
@settings(max_examples=50)
def test_simulator_energy_accounting(profile, index, work, speedup):
    simulator = PlatformSimulator(
        TABLET,
        profile,
        noise=NoiseModel(sigma_rate=0.0, sigma_power=0.0),
        seed=0,
    )
    config = TABLET_CONFIGS[index]
    result = simulator.run_iteration(config, work, app_speedup=speedup)
    assert math.isclose(
        result.energy_j, result.true_power_w * result.time_s, rel_tol=1e-9
    )
    assert math.isclose(
        result.time_s, work / result.true_rate, rel_tol=1e-9
    )
    assert math.isclose(
        result.true_rate,
        simulator.ideal_rate(config) * speedup,
        rel_tol=1e-9,
    )


@given(
    st.floats(min_value=1.0, max_value=6.0),
    st.floats(min_value=1.0, max_value=6.0),
)
@settings(max_examples=25, deadline=None)
def test_oracle_accuracy_monotone_in_factor(f1, f2):
    app = build_application("bodytrack")
    lo, hi = sorted((f1, f2))
    acc_lo = oracle_accuracy(SERVER, app, lo).accuracy
    acc_hi = oracle_accuracy(SERVER, app, hi).accuracy
    assert acc_lo >= acc_hi - 1e-12


@given(st.floats(min_value=1.0, max_value=10.0))
@settings(max_examples=25, deadline=None)
def test_oracle_never_beats_full_accuracy(factor):
    app = build_application("x264")
    result = oracle_accuracy(SERVER, app, factor)
    assert 0.0 <= result.accuracy <= 1.0


def test_best_epw_is_global_minimum():
    # Deterministic exhaustive cross-check of the oracle's argmin.
    app = build_application("x264")
    best, config = best_system_energy_per_work(TABLET, app)
    for candidate in TABLET.space:
        epw = system_power(
            TABLET, candidate, app.resource_profile
        ) / work_rate(TABLET, candidate, app.resource_profile)
        assert best <= epw + 1e-12


@given(profiles)
@settings(max_examples=30, deadline=None)
def test_default_epw_at_least_best_epw(profile):
    from repro.apps.base import ApproximateApplication, AppConfig, ConfigTable

    app = ApproximateApplication(
        name="prop",
        framework="powerdial",
        accuracy_metric="m",
        table=ConfigTable([AppConfig(index=0, speedup=1.0, accuracy=1.0)]),
        resource_profile=profile,
    )
    best, _ = best_system_energy_per_work(TABLET, app)
    assert best <= default_energy_per_work(TABLET, app) + 1e-12
