"""Property-based tests (hypothesis) on the shard lease ledger.

The sharded daemon's budget coherence reduces to one conservation law
on an integer ledger::

    unleased + sum(leased per shard) + forfeited == total

These tests drive arbitrary interleavings of the four movements the
router ever performs — lease (admission top-up), reclaim (retired
session's residual grant), forfeit (worker crash), and late shard
registration — and check the law holds *exactly* (integer equality,
no epsilon) after every step, and that every refused movement leaves
the books untouched.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.service.lease import (
    UJ_PER_J,
    LeaseLedger,
    LedgerError,
    joules_to_uj,
    uj_to_joules,
)

SHARDS = ("w0", "w1", "w2", "w3")

amounts = st.integers(min_value=0, max_value=10**12)
shard_names = st.sampled_from(SHARDS)


# -- arbitrary interleavings ---------------------------------------------------

operations = st.lists(
    st.one_of(
        st.tuples(st.just("lease"), shard_names, amounts),
        st.tuples(st.just("reclaim"), shard_names, amounts),
        st.tuples(st.just("forfeit"), shard_names, st.just(0)),
    ),
    max_size=60,
)


@given(operations)
@settings(max_examples=200)
def test_any_interleaving_conserves_the_total_exactly(ops):
    ledger = LeaseLedger(total_j=1e6, shards=SHARDS)
    for op, shard, amount in ops:
        try:
            if op == "lease":
                ledger.lease(shard, amount)
            elif op == "reclaim":
                ledger.reclaim(shard, amount)
            else:
                ledger.forfeit(shard)
        except LedgerError:
            pass  # refused movements must leave the books untouched
        ledger.assert_balanced()
    # The law, spelled out: integer equality, not approximation.
    assert (
        ledger.unleased_uj
        + sum(ledger.leased_uj.values())
        + ledger.forfeited_uj
        == ledger.total_uj
    )


@given(operations)
@settings(max_examples=100)
def test_refused_movements_change_nothing(ops):
    ledger = LeaseLedger(total_j=1e3, shards=SHARDS)
    for op, shard, amount in ops:
        before = ledger.as_dict()
        try:
            if op == "lease":
                ledger.lease(shard, amount)
            elif op == "reclaim":
                ledger.reclaim(shard, amount)
            else:
                ledger.forfeit(shard)
        except LedgerError:
            assert ledger.as_dict() == before
        ledger.assert_balanced()


# -- the router's actual lifecycle, modeled ------------------------------------


@given(
    st.lists(
        st.tuples(
            shard_names,
            st.integers(min_value=1, max_value=10**9),  # grant
            st.floats(min_value=0.0, max_value=1.0),    # spend fraction
            st.booleans(),                              # crash?
        ),
        max_size=30,
    )
)
@settings(max_examples=100)
def test_session_lifecycles_sum_to_the_budget(lifecycles):
    """Grant → spend → retire-or-crash, any interleaving, any shard.

    A retired session donates its residual grant back (reclaim); a
    crashed worker forfeits grant and spend alike.  Whatever the
    interleaving, spent-and-forfeited joules plus live leases plus the
    unleased pool reproduce the budget to the microjoule.
    """
    ledger = LeaseLedger(total_j=1e6, shards=SHARDS)
    for shard, grant_uj, spend_fraction, crash in lifecycles:
        grant_uj = min(grant_uj, ledger.unleased_uj)
        ledger.lease(shard, grant_uj)
        if crash:
            ledger.forfeit(shard)
        else:
            spent_uj = int(grant_uj * spend_fraction)
            # The residual (unspent) part of the grant flows back.
            ledger.reclaim(shard, grant_uj - spent_uj)
        ledger.assert_balanced()


# -- stateful machine ----------------------------------------------------------


class LedgerMachine(RuleBasedStateMachine):
    """Hypothesis explores ledger op sequences; the law is invariant."""

    @initialize()
    def fresh_ledger(self):
        self.ledger = LeaseLedger(total_j=100.0)
        self.registered = set()

    @rule(shard=st.text(min_size=1, max_size=4))
    def register(self, shard):
        if shard in self.registered:
            with pytest.raises(LedgerError):
                self.ledger.add_shard(shard)
        else:
            self.ledger.add_shard(shard)
            self.registered.add(shard)

    @rule(shard=st.text(min_size=1, max_size=4), amount=amounts)
    def lease(self, shard, amount):
        if shard in self.registered and amount <= self.ledger.unleased_uj:
            self.ledger.lease(shard, amount)
        else:
            with pytest.raises(LedgerError):
                self.ledger.lease(shard, amount)

    @rule(shard=st.text(min_size=1, max_size=4), amount=amounts)
    def reclaim(self, shard, amount):
        if (
            shard in self.registered
            and amount <= self.ledger.leased_uj[shard]
        ):
            self.ledger.reclaim(shard, amount)
        else:
            with pytest.raises(LedgerError):
                self.ledger.reclaim(shard, amount)

    @rule(shard=st.text(min_size=1, max_size=4))
    def forfeit(self, shard):
        if shard in self.registered:
            balance = self.ledger.leased_uj[shard]
            forfeited = self.ledger.forfeit(shard)
            assert forfeited == balance
            assert self.ledger.leased_uj[shard] == 0
        else:
            with pytest.raises(LedgerError):
                self.ledger.forfeit(shard)

    @invariant()
    def conservation(self):
        if hasattr(self, "ledger"):
            self.ledger.assert_balanced()


TestLedgerMachine = LedgerMachine.TestCase


# -- fixed-point conversion ----------------------------------------------------


@given(st.integers(min_value=0, max_value=10**15))
def test_uj_round_trips_through_joules(value_uj):
    # Microjoule integers below ~2**53 survive the float excursion.
    assert joules_to_uj(uj_to_joules(value_uj)) == value_uj


@given(st.floats(min_value=1e-6, max_value=1e9))
def test_joules_quantize_within_half_a_microjoule(value_j):
    assert abs(uj_to_joules(joules_to_uj(value_j)) - value_j) <= (
        0.5 / UJ_PER_J
    ) + 1e-9 * value_j
