"""Property-based tests (hypothesis) on the service wire protocol.

The codec invariants the daemon's liveness rests on: every encodable
message round-trips bit-exactly through one frame, and *no* byte
sequence a client can send produces anything but a well-formed message
or a stable ``bad_request`` error — the dispatcher never sees garbage
and the connection loop never dies on a malformed frame.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Measurement
from repro.service.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    REQUEST_TYPES,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    measurement_from_payload,
    measurement_payload,
    parse_request,
    request_id_of,
)

# -- strategies ----------------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)

messages = st.dictionaries(st.text(max_size=20), json_values, max_size=8)

finite_positive = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)

measurements = st.builds(
    Measurement,
    work=finite_positive,
    energy_j=finite_positive,
    rate=finite_positive,
    power_w=finite_positive,
)


# -- framing round trip --------------------------------------------------------


@given(messages)
def test_encode_decode_round_trip(message):
    assert decode_message(encode_message(message)) == message


@given(messages)
def test_encoding_is_one_complete_line(message):
    frame = encode_message(message)
    assert frame.endswith(b"\n")
    assert b"\n" not in frame[:-1]


@given(messages)
def test_encoding_is_canonical(message):
    # Key order in the input never changes the bytes on the wire.
    shuffled = dict(reversed(list(message.items())))
    assert encode_message(message) == encode_message(shuffled)


# -- malformed frames ----------------------------------------------------------


@given(st.binary(max_size=200))
def test_arbitrary_bytes_decode_or_raise_bad_request(data):
    try:
        message = decode_message(data)
    except ProtocolError as exc:
        assert exc.code == "bad_request"
    else:
        assert isinstance(message, dict)


@given(json_values)
def test_non_object_payloads_rejected(value):
    line = json.dumps(value).encode() + b"\n"
    if isinstance(value, dict):
        assert decode_message(line) == value
    else:
        with pytest.raises(ProtocolError) as excinfo:
            decode_message(line)
        assert excinfo.value.code == "bad_request"


def test_oversized_line_rejected_before_parsing():
    with pytest.raises(ProtocolError) as excinfo:
        decode_message(b" " * (MAX_LINE_BYTES + 1))
    assert excinfo.value.code == "bad_request"


@given(messages)
def test_parse_request_total_over_arbitrary_messages(message):
    # parse_request either yields a known type or a coded error; it
    # must never raise anything else, whatever the envelope holds.
    try:
        request_type, fields = parse_request(message)
    except ProtocolError as exc:
        assert exc.code in ("bad_request", "unknown_type")
    else:
        assert request_type in REQUEST_TYPES
        assert "type" not in fields and "rid" not in fields


# -- error envelope stability --------------------------------------------------


@given(st.text(max_size=30), st.text(max_size=100))
def test_error_envelope_always_well_formed(code, message):
    envelope = error_response(code, message)
    assert envelope["ok"] is False
    assert envelope["error"]["code"] in ERROR_CODES
    # Unknown codes collapse to "internal" but keep the original code
    # visible in the message for debugging.
    if code not in ERROR_CODES:
        assert envelope["error"]["code"] == "internal"
        assert code in envelope["error"]["message"]
    # The envelope itself must survive the wire.
    assert decode_message(encode_message(envelope)) == envelope


# -- request ids ---------------------------------------------------------------


@given(st.text(min_size=1, max_size=128))
def test_valid_rid_passes_through(rid):
    assert request_id_of({"rid": rid}) == rid


@given(json_values)
def test_rid_validation_is_total(value):
    message = {"rid": value}
    if value is None:
        assert request_id_of(message) is None
    elif isinstance(value, str) and 1 <= len(value) <= 128:
        assert request_id_of(message) == value
    else:
        with pytest.raises(ProtocolError) as excinfo:
            request_id_of(message)
        assert excinfo.value.code == "bad_request"


# -- measurement codec ---------------------------------------------------------


@given(measurements)
@settings(max_examples=50)
def test_measurement_round_trip(measurement):
    decoded = measurement_from_payload(
        measurement_payload(measurement)
    )
    assert math.isclose(decoded.work, measurement.work)
    assert math.isclose(decoded.energy_j, measurement.energy_j)
    assert math.isclose(decoded.rate, measurement.rate)
    assert math.isclose(decoded.power_w, measurement.power_w)


@given(measurements)
@settings(max_examples=50)
def test_measurement_survives_the_wire(measurement):
    payload = measurement_payload(measurement)
    revived = decode_message(encode_message(payload))
    decoded = measurement_from_payload(revived)
    assert decoded == measurement_from_payload(payload)


@given(json_values)
def test_measurement_decoder_is_total(payload):
    # Any JSON value either decodes to a Measurement or raises the
    # stable bad_request error — never a bare KeyError/TypeError.
    try:
        decoded = measurement_from_payload(payload)
    except ProtocolError as exc:
        assert exc.code == "bad_request"
    else:
        assert isinstance(decoded, Measurement)


# -- protocol v3: batch codec, negotiation, pipelining -------------------------

import math as _math

from repro.service.protocol import (
    MAX_BATCH_STEPS,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    batch_measurements_from_payload,
    sensor_ok_from_payload,
)

batch_entries = st.lists(
    st.tuples(measurements, st.booleans()), min_size=1, max_size=12
)


@given(batch_entries)
@settings(max_examples=50)
def test_batch_codec_round_trips_entrywise(entries):
    payload = [
        measurement_payload(measurement, sensor_ok=flag)
        for measurement, flag in entries
    ]
    decoded = batch_measurements_from_payload(payload)
    assert len(decoded) == len(entries)
    for (measurement, flag), (revived, revived_flag) in zip(
        entries, decoded
    ):
        assert revived_flag == flag
        assert _math.isclose(revived.work, measurement.work)
        assert _math.isclose(revived.energy_j, measurement.energy_j)
        assert _math.isclose(revived.rate, measurement.rate)
        assert _math.isclose(revived.power_w, measurement.power_w)


@given(batch_entries, st.data())
@settings(max_examples=50)
def test_batch_validation_names_the_first_bad_entry(entries, data):
    payload = [
        measurement_payload(measurement, sensor_ok=flag)
        for measurement, flag in entries
    ]
    position = data.draw(
        st.integers(min_value=0, max_value=len(payload) - 1)
    )
    payload[position] = {"work": 1.0}  # missing required fields
    with pytest.raises(ProtocolError) as excinfo:
        batch_measurements_from_payload(payload)
    assert excinfo.value.code == "bad_request"
    assert f"measurements[{position}]:" in excinfo.value.message


@given(json_values)
def test_batch_decoder_is_total(payload):
    # Like the single-measurement decoder: any JSON either decodes or
    # raises the stable bad_request error, never a bare TypeError.
    try:
        decoded = batch_measurements_from_payload(payload)
    except ProtocolError as exc:
        assert exc.code == "bad_request"
    else:
        assert 1 <= len(decoded) <= MAX_BATCH_STEPS


def test_batch_size_limits():
    one = measurement_payload(
        Measurement(work=1.0, energy_j=1.0, rate=1.0, power_w=1.0)
    )
    with pytest.raises(ProtocolError):
        batch_measurements_from_payload([])
    with pytest.raises(ProtocolError):
        batch_measurements_from_payload([one] * (MAX_BATCH_STEPS + 1))
    assert len(
        batch_measurements_from_payload([one] * MAX_BATCH_STEPS)
    ) == MAX_BATCH_STEPS


@given(json_values)
def test_version_negotiation_is_total(requested):
    # Every JSON value either negotiates to a supported version or
    # raises the stable version_mismatch error.
    from repro.service.protocol import negotiate_version

    try:
        negotiated = negotiate_version(requested)
    except ProtocolError as exc:
        assert exc.code == "version_mismatch"
        assert requested is not None
    else:
        assert negotiated in SUPPORTED_VERSIONS
        if requested is None:
            assert negotiated == PROTOCOL_VERSION
        else:
            assert negotiated == requested


@given(
    st.sampled_from(ERROR_CODES),
    st.text(max_size=60),
    st.dictionaries(
        st.text(min_size=1, max_size=10),
        st.floats(allow_nan=False, allow_infinity=False),
        max_size=4,
    ),
)
def test_error_data_rides_only_when_present(code, message, data):
    with_data = error_response(code, message, data)
    without = error_response(code, message)
    # Empty data keeps the frame byte-identical to a pre-v3 error.
    assert "data" not in without["error"]
    if data:
        assert with_data["error"]["data"] == dict(data)
    else:
        assert encode_message(with_data) == encode_message(without)
    assert decode_message(encode_message(with_data)) == with_data


@given(st.sampled_from([True, False, 0.5, "3", [3], {}]))
def test_non_integer_versions_are_refused(requested):
    from repro.service.protocol import negotiate_version

    with pytest.raises(ProtocolError) as excinfo:
        negotiate_version(requested)
    assert excinfo.value.code == "version_mismatch"


# -- pipelining and idempotency against a live daemon --------------------------

from hypothesis import HealthCheck

from repro.service import (
    ServerThread,
    ServiceClient,
    SessionManager,
)


@pytest.fixture(scope="module")
def live_daemon(tmp_path_factory):
    sock = str(tmp_path_factory.mktemp("props") / "jg.sock")
    manager = SessionManager(global_budget_j=1e8)
    with ServerThread(manager, unix_path=sock):
        yield sock


#: Pipelined verbs whose responses are recognizable without state:
#: each maps to a predicate over the response envelope.
_PIPELINE_VERBS = {
    "hello": lambda r: r.get("ok") and r.get("type") == "hello",
    "metrics": lambda r: r.get("ok") and r.get("type") == "metrics",
    "events": lambda r: r.get("ok") and r.get("type") == "events",
    "bogus": lambda r: (
        not r.get("ok")
        and r["error"]["code"] == "unknown_type"
    ),
    "report": lambda r: (
        not r.get("ok")
        and r["error"]["code"] == "unknown_session"
    ),
}


def _pipeline_request(verb):
    if verb == "bogus":
        return {"type": "no_such_verb"}
    if verb == "report":
        return {"type": "report", "session": "never-opened"}
    return {"type": verb}


@given(
    st.lists(
        st.sampled_from(sorted(_PIPELINE_VERBS)),
        min_size=1,
        max_size=10,
    )
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_pipelined_responses_arrive_in_request_order(live_daemon, verbs):
    # The v3 ordering contract: K requests written back-to-back are
    # answered positionally — error envelopes included, so a failure
    # mid-pipeline cannot shift later responses out of alignment.
    with ServiceClient(unix_path=live_daemon) as client:
        responses = client.request_pipeline(
            [_pipeline_request(verb) for verb in verbs]
        )
    assert len(responses) == len(verbs)
    for verb, response in zip(verbs, responses):
        assert _PIPELINE_VERBS[verb](response), (verb, response)


def test_errors_are_never_rid_cached(live_daemon):
    # A failed request under rid R must not poison R: the retry that
    # follows (same rid, now-valid request) executes for real, and
    # only *its* ok response is replayed thereafter.
    with ServiceClient(unix_path=live_daemon) as client:
        failed = client.request_pipeline(
            [{"type": "report", "session": "ghost", "rid": "rid-x"}]
        )[0]
        assert not failed["ok"] and "rid" not in failed
        opened = client.request_pipeline([
            {
                "type": "open_session", "machine": "tablet",
                "app": "x264", "factor": 1.5, "total_work": 50.0,
                "seed": 0, "rid": "rid-x",
            },
        ])[0]
        assert opened["ok"] and opened["rid"] == "rid-x"
        replayed = client.request_pipeline([
            {
                "type": "open_session", "machine": "tablet",
                "app": "x264", "factor": 1.5, "total_work": 50.0,
                "seed": 0, "rid": "rid-x",
            },
        ])[0]
        # Byte-for-byte the cached response: same session id, not a
        # second admission.
        assert replayed == opened
        client.close(opened["session"])


def test_v2_clients_are_still_served(live_daemon):
    with ServiceClient(unix_path=live_daemon, handshake=False) as client:
        greeted = client.request({"type": "hello", "version": 2})
        assert greeted["version"] == 2
        refused = client.request_pipeline(
            [{"type": "hello", "version": 1}]
        )[0]
        assert not refused["ok"]
        assert refused["error"]["code"] == "version_mismatch"
