"""Property-based tests (hypothesis) on the service wire protocol.

The codec invariants the daemon's liveness rests on: every encodable
message round-trips bit-exactly through one frame, and *no* byte
sequence a client can send produces anything but a well-formed message
or a stable ``bad_request`` error — the dispatcher never sees garbage
and the connection loop never dies on a malformed frame.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Measurement
from repro.service.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    REQUEST_TYPES,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    measurement_from_payload,
    measurement_payload,
    parse_request,
    request_id_of,
)

# -- strategies ----------------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)

messages = st.dictionaries(st.text(max_size=20), json_values, max_size=8)

finite_positive = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)

measurements = st.builds(
    Measurement,
    work=finite_positive,
    energy_j=finite_positive,
    rate=finite_positive,
    power_w=finite_positive,
)


# -- framing round trip --------------------------------------------------------


@given(messages)
def test_encode_decode_round_trip(message):
    assert decode_message(encode_message(message)) == message


@given(messages)
def test_encoding_is_one_complete_line(message):
    frame = encode_message(message)
    assert frame.endswith(b"\n")
    assert b"\n" not in frame[:-1]


@given(messages)
def test_encoding_is_canonical(message):
    # Key order in the input never changes the bytes on the wire.
    shuffled = dict(reversed(list(message.items())))
    assert encode_message(message) == encode_message(shuffled)


# -- malformed frames ----------------------------------------------------------


@given(st.binary(max_size=200))
def test_arbitrary_bytes_decode_or_raise_bad_request(data):
    try:
        message = decode_message(data)
    except ProtocolError as exc:
        assert exc.code == "bad_request"
    else:
        assert isinstance(message, dict)


@given(json_values)
def test_non_object_payloads_rejected(value):
    line = json.dumps(value).encode() + b"\n"
    if isinstance(value, dict):
        assert decode_message(line) == value
    else:
        with pytest.raises(ProtocolError) as excinfo:
            decode_message(line)
        assert excinfo.value.code == "bad_request"


def test_oversized_line_rejected_before_parsing():
    with pytest.raises(ProtocolError) as excinfo:
        decode_message(b" " * (MAX_LINE_BYTES + 1))
    assert excinfo.value.code == "bad_request"


@given(messages)
def test_parse_request_total_over_arbitrary_messages(message):
    # parse_request either yields a known type or a coded error; it
    # must never raise anything else, whatever the envelope holds.
    try:
        request_type, fields = parse_request(message)
    except ProtocolError as exc:
        assert exc.code in ("bad_request", "unknown_type")
    else:
        assert request_type in REQUEST_TYPES
        assert "type" not in fields and "rid" not in fields


# -- error envelope stability --------------------------------------------------


@given(st.text(max_size=30), st.text(max_size=100))
def test_error_envelope_always_well_formed(code, message):
    envelope = error_response(code, message)
    assert envelope["ok"] is False
    assert envelope["error"]["code"] in ERROR_CODES
    # Unknown codes collapse to "internal" but keep the original code
    # visible in the message for debugging.
    if code not in ERROR_CODES:
        assert envelope["error"]["code"] == "internal"
        assert code in envelope["error"]["message"]
    # The envelope itself must survive the wire.
    assert decode_message(encode_message(envelope)) == envelope


# -- request ids ---------------------------------------------------------------


@given(st.text(min_size=1, max_size=128))
def test_valid_rid_passes_through(rid):
    assert request_id_of({"rid": rid}) == rid


@given(json_values)
def test_rid_validation_is_total(value):
    message = {"rid": value}
    if value is None:
        assert request_id_of(message) is None
    elif isinstance(value, str) and 1 <= len(value) <= 128:
        assert request_id_of(message) == value
    else:
        with pytest.raises(ProtocolError) as excinfo:
            request_id_of(message)
        assert excinfo.value.code == "bad_request"


# -- measurement codec ---------------------------------------------------------


@given(measurements)
@settings(max_examples=50)
def test_measurement_round_trip(measurement):
    decoded = measurement_from_payload(
        measurement_payload(measurement)
    )
    assert math.isclose(decoded.work, measurement.work)
    assert math.isclose(decoded.energy_j, measurement.energy_j)
    assert math.isclose(decoded.rate, measurement.rate)
    assert math.isclose(decoded.power_w, measurement.power_w)


@given(measurements)
@settings(max_examples=50)
def test_measurement_survives_the_wire(measurement):
    payload = measurement_payload(measurement)
    revived = decode_message(encode_message(payload))
    decoded = measurement_from_payload(revived)
    assert decoded == measurement_from_payload(payload)


@given(json_values)
def test_measurement_decoder_is_total(payload):
    # Any JSON value either decodes to a Measurement or raises the
    # stable bad_request error — never a bare KeyError/TypeError.
    try:
        decoded = measurement_from_payload(payload)
    except ProtocolError as exc:
        assert exc.code == "bad_request"
    else:
        assert isinstance(decoded, Measurement)
