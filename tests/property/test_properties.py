"""Property-based tests (hypothesis) on core invariants.

These cover the data structures and control math whose correctness the
formal guarantees rest on: Pareto frontiers and Eqn. 6 selection, pole
placement vs. the Eqn. 9 stability region, EWMA contraction, budget
accounting conservation, and the perforation transform.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.apps.base import AppConfig, ConfigTable
from repro.apps.perforation import PerforatableLoop, perforate
from repro.core.analysis import perturbed_loop, stability_bound
from repro.core.budget import BudgetAccountant, EnergyGoal
from repro.core.ewma import Ewma
from repro.core.pole import max_stable_error, pole_for_error
from repro.core.vdbe import Vdbe

# -- strategies ----------------------------------------------------------------

speedups = st.floats(min_value=1.0, max_value=100.0)
accuracies = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def config_tables(draw):
    """A valid ConfigTable: the default plus up to 30 arbitrary configs."""
    n = draw(st.integers(min_value=0, max_value=30))
    configs = [AppConfig(index=0, speedup=1.0, accuracy=1.0)]
    for i in range(n):
        configs.append(
            AppConfig(
                index=i + 1,
                speedup=draw(speedups),
                accuracy=draw(accuracies),
            )
        )
    return ConfigTable(configs)


# -- ConfigTable / Eqn. 6 --------------------------------------------------------


@given(config_tables())
def test_frontier_is_subset_and_contains_default(table):
    frontier = table.pareto_frontier
    indices = {c.index for c in table}
    assert all(c.index in indices for c in frontier)
    assert frontier[0].accuracy == 1.0


@given(config_tables())
def test_frontier_strictly_monotone(table):
    frontier = table.pareto_frontier
    for a, b in zip(frontier, frontier[1:]):
        assert a.speedup < b.speedup
        assert a.accuracy > b.accuracy


@given(config_tables())
def test_no_frontier_config_is_dominated(table):
    for candidate in table.pareto_frontier:
        for other in table:
            dominates = (
                other.speedup >= candidate.speedup
                and other.accuracy > candidate.accuracy
            )
            assert not dominates


@given(config_tables(), st.floats(min_value=0.0, max_value=150.0))
def test_eqn6_selection_is_optimal(table, required):
    """The selected config is the most accurate one meeting the speedup
    requirement (or the fastest when nothing does)."""
    chosen = table.best_accuracy_for_speedup(required)
    eligible = [c for c in table if c.speedup >= required]
    if eligible:
        best = max(eligible, key=lambda c: c.accuracy)
        assert chosen.accuracy >= best.accuracy - 1e-12
        assert chosen.speedup >= required
    else:
        assert chosen.speedup == table.max_speedup


@given(
    config_tables(),
    st.floats(min_value=0.0, max_value=50.0),
    st.floats(min_value=0.0, max_value=50.0),
)
def test_eqn6_selection_monotone(table, s1, s2):
    lo, hi = sorted((s1, s2))
    assert (
        table.best_accuracy_for_speedup(lo).accuracy
        >= table.best_accuracy_for_speedup(hi).accuracy
    )


# -- pole placement / Eqn. 9 ------------------------------------------------------


@given(st.floats(min_value=0.0, max_value=1e6))
def test_pole_always_legal(delta):
    pole = pole_for_error(delta)
    assert 0.0 <= pole < 1.0


@given(st.floats(min_value=0.0, max_value=1e6))
def test_pole_covers_measured_error(delta):
    """Eqn. 11's pole puts the measured δ inside (or on) the Eqn. 9
    stability region."""
    pole = pole_for_error(delta)
    assert max_stable_error(pole) >= min(delta, 2.0) - 1e-9
    if delta > 2.0:
        assert max_stable_error(pole) >= delta * (1 - 1e-9)


@given(
    st.floats(min_value=0.0, max_value=0.99),
    st.floats(min_value=0.01, max_value=50.0),
)
def test_stability_bound_separates_stable_from_unstable(pole, delta):
    loop = perturbed_loop(pole, delta)
    if delta < stability_bound(pole) * (1 - 1e-9):
        assert loop.stable
    elif delta > stability_bound(pole) * (1 + 1e-9):
        assert not loop.stable


@given(st.floats(min_value=0.0, max_value=0.99))
def test_closed_loop_dc_gain_is_one(pole):
    """F(1) = 1 regardless of pole: convergence (Eqn. 7)."""
    loop = perturbed_loop(pole, 1.0)
    assert math.isclose(loop.dc_gain, 1.0, rel_tol=1e-9)


# -- EWMA ------------------------------------------------------------------------


@given(
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=-1e6, max_value=1e6),
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50
    ),
)
def test_ewma_stays_in_sample_hull(alpha, prior, samples):
    ewma = Ewma(alpha=alpha, value=prior)
    for sample in samples:
        ewma.update(sample)
    lo = min(samples + [prior])
    hi = max(samples + [prior])
    assert lo - 1e-6 <= ewma.value <= hi + 1e-6


@given(
    st.floats(min_value=0.5, max_value=1.0),
    st.floats(min_value=-100.0, max_value=100.0),
)
def test_ewma_contracts_toward_constant_signal(alpha, target):
    ewma = Ewma(alpha=alpha, value=target + 50.0)
    previous_gap = abs(ewma.value - target)
    for _ in range(10):
        ewma.update(target)
        gap = abs(ewma.value - target)
        assert gap <= previous_gap + 1e-9
        previous_gap = gap


# -- VDBE ------------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=2000),
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e3),
            st.floats(min_value=1e-3, max_value=1e3),
        ),
        min_size=1,
        max_size=40,
    ),
)
def test_vdbe_epsilon_stays_in_unit_interval(n_configs, updates):
    vdbe = Vdbe(n_configs=n_configs)
    for measured, estimated in updates:
        vdbe.update(measured, estimated)
        assert 0.0 <= vdbe.epsilon <= 1.0


# -- budget accounting --------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_accountant_conservation(records):
    goal = EnergyGoal(total_work=100.0, budget_j=1000.0)
    accountant = BudgetAccountant(goal)
    for work, energy in records:
        accountant.record(work, energy)
    assert accountant.work_done == sum(w for w, _ in records)
    assert accountant.energy_used_j == sum(e for _, e in records)
    assert (
        accountant.remaining_work + accountant.work_done
        >= goal.total_work - 1e-9
    )


@given(
    st.lists(
        st.floats(min_value=0.1, max_value=30.0), min_size=1, max_size=50
    )
)
def test_meeting_rolling_target_meets_total_budget(energies_scale):
    """If every iteration spends exactly its rolling target, the total
    lands exactly on the budget — the invariant the controller relies on."""
    goal = EnergyGoal(total_work=float(len(energies_scale)), budget_j=500.0)
    accountant = BudgetAccountant(goal)
    for _ in energies_scale:
        target = accountant.target_energy_per_work()
        assert target is not None
        accountant.record(1.0, target)
    assert math.isclose(accountant.energy_used_j, 500.0, rel_tol=1e-9)


# -- budget transfers -----------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=10.0, max_value=1000.0), min_size=2, max_size=6
    ),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.floats(min_value=-5.0, max_value=5.0),
        ),
        max_size=40,
    ),
)
def test_budget_adjustments_conserve_when_paired(budgets, transfers):
    """Moving joules between accountants never creates or destroys them."""
    from repro.core.budget import BudgetAccountant, EnergyGoal

    accountants = [
        BudgetAccountant(EnergyGoal(total_work=10.0, budget_j=b))
        for b in budgets
    ]
    total = sum(a.effective_budget_j for a in accountants)
    for index, delta in transfers:
        donor = accountants[index % len(accountants)]
        receiver = accountants[(index + 1) % len(accountants)]
        try:
            donor.adjust_budget(-abs(delta))
        except ValueError:
            continue
        receiver.adjust_budget(abs(delta))
    assert math.isclose(
        sum(a.effective_budget_j for a in accountants), total, rel_tol=1e-9
    )


@given(
    st.floats(min_value=1.0, max_value=1e6),
    st.dictionaries(
        st.text(
            alphabet="abcdefgh", min_size=1, max_size=4
        ),
        st.floats(min_value=0.1, max_value=1e3),
        min_size=1,
        max_size=6,
    ),
)
def test_split_budget_partitions_exactly(total, needs):
    from repro.core.multi import split_budget

    shares = split_budget(total, needs)
    assert math.isclose(sum(shares.values()), total, rel_tol=1e-9)
    assert all(share > 0 for share in shares.values())


# -- perforation --------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=500),
    st.floats(min_value=0.0, max_value=0.95),
)
def test_perforate_keeps_expected_fraction(n, rate):
    kept = list(perforate(range(n), rate))
    expected = n * (1.0 - rate)
    assert abs(len(kept) - expected) <= 2
    assert kept == sorted(set(kept))  # in order, no duplicates


@given(
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=0.0, max_value=0.9),
    st.floats(min_value=0.0, max_value=0.99),
)
def test_perforatable_loop_speedup_and_accuracy_bounds(
    share, sensitivity, rate
):
    loop = PerforatableLoop("l", share, sensitivity)
    assert 1.0 <= loop.speedup(rate) <= 1.0 / (1.0 - share) + 1e-9
    assert 1.0 - sensitivity <= loop.accuracy(rate) <= 1.0
