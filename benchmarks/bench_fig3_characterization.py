"""Fig. 3: energy-efficiency landscapes.

The paper characterizes each platform by plotting energy efficiency
(rate/power at full application accuracy) against the linearized
configuration index for bodytrack (smooth, easy) and ferret (hard,
multi-modal on Server).  This bench regenerates the series and checks
the Sec. 4.3 observations:

* large spread between best and worst efficiency everywhere,
* Mobile's peak off the big cores,
* Tablet's peak at the default (highest index),
* Server's peak away from the default, at app-specific locations.
"""

import numpy as np

from conftest import emit

from repro.apps import build_application
from repro.hw import PlatformSimulator

APPS = ("bodytrack", "ferret")


def characterize(machines):
    series = {}
    for machine_name, machine in machines.items():
        linear = machine.space.linearized()
        for app_name in APPS:
            app = build_application(app_name)
            simulator = PlatformSimulator(machine, app.resource_profile)
            eff = np.array(
                [simulator.energy_efficiency(c) for c in linear]
            )
            series[(machine_name, app_name)] = eff
    return series


def _render(series) -> str:
    lines = ["Fig. 3: Energy-efficiency landscapes (per config index)"]
    for (machine, app), eff in series.items():
        argmax = int(eff.argmax())
        lines.append(
            f"\n{machine}/{app}: {len(eff)} configs, "
            f"min={eff.min():.4f} max={eff.max():.4f} "
            f"default={eff[-1]:.4f} peak@{argmax} "
            f"(gain over default {eff.max() / eff[-1]:.2f}x)"
        )
        # Down-sampled series for plotting by hand.
        step = max(1, len(eff) // 16)
        samples = ", ".join(
            f"{i}:{eff[i]:.3f}" for i in range(0, len(eff), step)
        )
        lines.append(f"  series: {samples}")
    return "\n".join(lines) + "\n"


def test_fig3(benchmark, machines):
    series = benchmark.pedantic(
        characterize, args=(machines,), rounds=1, iterations=1
    )
    emit("fig3_characterization.txt", _render(series))

    for (machine_name, app_name), eff in series.items():
        # Significant spread between best and worst (Sec. 4.3 bullet 1).
        assert eff.max() > 2.0 * eff.min(), (machine_name, app_name)

    # Tablet: peak at the default configuration (highest index).
    for app_name in APPS:
        eff = series[("tablet", app_name)]
        assert eff.argmax() == len(eff) - 1

    # Server: default is wasteful; peaks differ between the two apps.
    assert series[("server", "bodytrack")].argmax() != len(
        series[("server", "bodytrack")]
    ) - 1
    assert (
        series[("server", "bodytrack")].argmax()
        != series[("server", "ferret")].argmax()
    )

    # Mobile: the most efficient configurations are not the big-cluster
    # default (the learner must move off the big cores).
    eff = series[("mobile", "bodytrack")]
    assert eff.max() > 1.5 * eff[-1]
