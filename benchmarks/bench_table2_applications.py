"""Table 2: approximate-application configurations.

Regenerates the paper's Table 2 — per application: configuration count,
maximum speedup, maximum accuracy loss, and accuracy metric — from the
built suite, alongside the published values.
"""

from conftest import emit

from repro.apps import table2


def _render(rows) -> str:
    lines = [
        "Table 2: Approximate Application configurations "
        "(measured / paper)",
        f"{'Application':<15}{'Configs':>16}{'Speedup':>20}"
        f"{'Acc. Loss (%)':>18}  Accuracy Metric",
    ]
    for row in rows:
        lines.append(
            f"{row.application:<15}"
            f"{row.configs:>7d}/{row.paper_configs:<8d}"
            f"{row.max_speedup:>9.2f}/{row.paper_max_speedup:<10.2f}"
            f"{row.max_accuracy_loss_pct:>8.2f}/{row.paper_max_accuracy_loss_pct:<9.2f}"
            f"  {row.accuracy_metric}"
        )
    return "\n".join(lines) + "\n"


def test_table2(benchmark):
    rows = benchmark.pedantic(table2, rounds=1, iterations=1)
    emit("table2_applications.txt", _render(rows))
    # Shape assertions: counts exact, trade ranges within jitter.
    for row in rows:
        assert row.configs == row.paper_configs
        assert abs(row.max_speedup / row.paper_max_speedup - 1.0) < 0.05
