"""Service throughput: sessions/sec and step latency under concurrency.

The daemon hosts every session on one event loop (`repro.service`), so
the interesting numbers are how step latency degrades as concurrent
clients multiply, and how much convergence time a warm-start snapshot
saves.  This bench runs the real daemon (ServerThread on a Unix
socket) and the real blocking client:

* 1 / 8 / 32 concurrent synthetic clients, each a full closed loop —
  sessions/sec, steps/sec, p50/p95/p99 per-step round-trip latency,
  and the per-client steps/sec spread (min/mean/max exposes unfair
  scheduling the aggregate hides);
* telemetry overhead — the same load against a daemon with
  ``ServiceTelemetry.disabled()`` vs the default enabled telemetry;
  the enabled daemon must stay within 5 % of the disabled one's
  throughput (the ``repro.obs`` hot path is dict lookups and float
  adds, and this gate keeps it that way);
* warm vs cold convergence — iterations until the SEO's ε settles,
  cold start vs restored from a snapshot.

Wall-clock numbers on a shared event loop are noisy, so every load
point runs ``--repeats`` times (default 3) and the reported row is the
per-metric **median** across repeats.  Results land in
``benchmarks/results/service_throughput.json`` (medians plus every raw
repeat) and in ``BENCH_service_throughput.json`` at the repo root
(medians only), so the perf trajectory is tracked per PR.  Absolute
latencies reflect Python and a loopback socket; the shape claims that
should survive any port are (a) p95 grows roughly linearly with client
count (one shared loop) and (b) warm starts converge in strictly fewer
iterations.
"""

import json
import statistics

import pytest

from conftest import write_repo_result, write_result

from repro.service import (
    ServerThread,
    ServiceClient,
    ServiceTelemetry,
    SessionManager,
    SnapshotStore,
    drive_synthetic_session,
    run_load,
)

CLIENT_COUNTS = (1, 8, 32)
STEPS_PER_CLIENT = 20
CONVERGENCE_STEPS = 40
OVERHEAD_CLIENTS = 8
OVERHEAD_LIMIT = 0.05

#: Keys of ``LoadReport.as_dict`` whose median across repeats is the
#: headline number; the rest (client/step counts) are invariant.
_MEDIAN_KEYS = (
    "elapsed_s",
    "sessions_per_s",
    "steps_per_s",
    "p50_step_latency_ms",
    "p95_step_latency_ms",
    "p99_step_latency_ms",
    "client_steps_per_s_mean",
    "client_steps_per_s_min",
    "client_steps_per_s_max",
)

_results = {
    "repeats": None,
    "load": [],
    "overhead": {},
    "convergence": {},
}


def _median_row(runs):
    """Per-metric median across repeat rows of one load point."""
    row = dict(runs[0])
    for key in _MEDIAN_KEYS:
        row[key] = statistics.median(run[key] for run in runs)
    return row


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    manager = SessionManager(
        global_budget_j=1e9, store=SnapshotStore()
    )
    sock = str(tmp_path_factory.mktemp("service") / "bench.sock")
    with ServerThread(manager, unix_path=sock):
        yield sock


@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_concurrent_load(daemon, n_clients, repeats):
    runs = []
    for repeat in range(repeats):
        report = run_load(
            n_clients,
            steps=STEPS_PER_CLIENT,
            unix_path=daemon,
            base_seed=1000 * n_clients + 100 * repeat,
        )
        assert report.errors == 0
        assert report.total_steps == n_clients * STEPS_PER_CLIENT
        runs.append(report.as_dict())
    row = _median_row(runs)
    _results["repeats"] = repeats
    _results["load"].append({"median": row, "runs": runs})
    print(
        f"\n{n_clients:>3} clients (median of {repeats}): "
        f"{row['sessions_per_s']:8.1f} sessions/s  "
        f"{row['steps_per_s']:8.1f} steps/s  "
        f"p50 {row['p50_step_latency_ms']:6.2f} ms  "
        f"p95 {row['p95_step_latency_ms']:6.2f} ms  "
        f"p99 {row['p99_step_latency_ms']:6.2f} ms"
    )


def _median_steps_per_s(sock, repeats, base_seed):
    rates = []
    for repeat in range(repeats):
        report = run_load(
            OVERHEAD_CLIENTS,
            steps=STEPS_PER_CLIENT,
            unix_path=sock,
            base_seed=base_seed + 100 * repeat,
        )
        assert report.errors == 0
        rates.append(report.steps_per_s)
    return statistics.median(rates)


def test_metrics_overhead(tmp_path_factory, repeats):
    rates = {}
    for mode in ("disabled", "enabled"):
        manager = SessionManager(
            global_budget_j=1e9,
            store=SnapshotStore(),
            telemetry=(
                ServiceTelemetry.disabled()
                if mode == "disabled"
                else None
            ),
        )
        sock = str(
            tmp_path_factory.mktemp(f"obs_{mode}") / "bench.sock"
        )
        with ServerThread(manager, unix_path=sock):
            rates[mode] = _median_steps_per_s(
                sock, repeats, base_seed=5000
            )
    overhead = 1.0 - rates["enabled"] / rates["disabled"]
    _results["overhead"] = {
        "n_clients": OVERHEAD_CLIENTS,
        "steps_per_client": STEPS_PER_CLIENT,
        "steps_per_s_disabled": rates["disabled"],
        "steps_per_s_enabled": rates["enabled"],
        "overhead_fraction": overhead,
        "limit_fraction": OVERHEAD_LIMIT,
    }
    print(
        f"\ntelemetry overhead (median of {repeats}): "
        f"disabled {rates['disabled']:8.1f} steps/s  "
        f"enabled {rates['enabled']:8.1f} steps/s  "
        f"overhead {100 * overhead:+5.2f}%"
    )
    assert overhead <= OVERHEAD_LIMIT


def test_warm_vs_cold_convergence(daemon):
    with ServiceClient(unix_path=daemon) as client:
        cold = drive_synthetic_session(
            client,
            machine="tablet",
            app="x264",
            factor=1.5,
            steps=CONVERGENCE_STEPS,
            seed=7,
            warm_start=False,
            take_snapshot=True,
        )
        warm = drive_synthetic_session(
            client,
            machine="tablet",
            app="x264",
            factor=1.5,
            steps=CONVERGENCE_STEPS,
            seed=8,
            warm_start=True,
        )
    assert warm.warm and not cold.warm
    assert warm.convergence_step() < cold.convergence_step()
    _results["convergence"] = {
        "steps": CONVERGENCE_STEPS,
        "cold_convergence_step": cold.convergence_step(),
        "warm_convergence_step": warm.convergence_step(),
        "cold_final_epsilon": cold.decisions[-1]["epsilon"],
        "warm_final_epsilon": warm.decisions[-1]["epsilon"],
    }
    print(
        f"\nconvergence: cold {cold.convergence_step()} iterations, "
        f"warm {warm.convergence_step()}"
    )

    path = write_result(
        "service_throughput.json",
        json.dumps(_results, indent=2, sort_keys=True) + "\n",
    )
    print(f"wrote {path}")
    trajectory = {
        "bench": "service_throughput",
        "repeats": _results["repeats"],
        "load": [point["median"] for point in _results["load"]],
        "overhead": _results["overhead"],
        "convergence": _results["convergence"],
    }
    path = write_repo_result(
        "BENCH_service_throughput.json",
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
    )
    print(f"wrote {path}")
