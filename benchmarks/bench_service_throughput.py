"""Service throughput: sessions/sec and step latency under concurrency.

The daemon hosts every session on one event loop (`repro.service`), so
the interesting numbers are how step latency degrades as concurrent
clients multiply, and how much a protocol-v3 batched frame buys back.
This bench runs the real daemon (ServerThread on a Unix socket) and
the real blocking client:

* two load families at 1 / 8 / 32 concurrent clients:

  - ``frame1`` — one heartbeat per round trip (the v2-era framing),
    each client a full closed loop over the platform simulator;
  - ``batch128`` — protocol v3 ``batch_step`` frames carrying 128
    heartbeats per round trip, driven by the cheap seeded load source
    (:class:`repro.service.client._FastMeasurements`), which is the
    deployment shape the shard router assumes;

  each row reports sessions/sec, steps/sec, p50/p95/p99 round-trip
  latency (per *frame* in the batched family), and the per-client
  steps/sec spread (min/mean/max exposes unfair scheduling the
  aggregate hides);
* vexec A/B — the same one-heartbeat load against a scalar daemon and
  a ``--exec vector`` daemon (micro-batched SessionPool stepping);
  the vector backend must sustain ≥ 1.5× scalar at 32 clients
  (noise-qualified assert) with the 3× target and the 1-client p95
  ratio recorded per host;
* telemetry overhead — the same load against a daemon with
  ``ServiceTelemetry.disabled()`` vs the default enabled telemetry;
  the enabled daemon must stay within 5 % of the disabled one's
  throughput (the ``repro.obs`` hot path is dict lookups and float
  adds, and this gate keeps it that way);
* warm vs cold convergence — iterations until the SEO's ε settles,
  cold start vs restored from a snapshot.

Timing invariants that must hold on any host are asserted:
``elapsed_s`` covers only the measurement window (clients connect and
handshake before a barrier; ``setup_s`` is reported separately — see
:func:`repro.service.client.run_load` and the smoke test in
``tests/service/test_load.py``), batching must amortize the wire by at
least ``BATCH_SPEEDUP_FLOOR``× at 32 clients, and batched throughput
must not collapse between 8 and 32 clients.  The absolute target —
``TARGET_STEPS_PER_S`` at 32 clients — is recorded in the results
rather than asserted, because this box's wall clock is shared and
noisy; the trajectory file is the record of whether the target held.

Wall-clock numbers on a shared event loop are noisy, so every load
point runs ``--repeats`` times (default 3) and the reported row is the
per-metric **median** across repeats.  Results land in
``benchmarks/results/service_throughput.json`` (medians plus every raw
repeat) and in ``BENCH_service_throughput.json`` at the repo root
(medians only), so the perf trajectory is tracked per PR.
"""

import json
import os
import statistics
import subprocess
import sys
import time

import pytest

from conftest import write_repo_result, write_result

from repro.core.contracts import contracts_enabled
from repro.service import (
    ServerThread,
    ServiceClient,
    ServiceTelemetry,
    SessionManager,
    SnapshotStore,
    drive_synthetic_session,
    run_load,
)

CLIENT_COUNTS = (1, 8, 32)
BATCH = 128
CONVERGENCE_STEPS = 40
OVERHEAD_CLIENTS = 8
OVERHEAD_LIMIT = 0.05

#: (family, batch, steps per client, fast source).  The per-heartbeat
#: family keeps the platform simulator in the loop; the batched family
#: uses the cheap seeded source so the daemon — not the load
#: generator — is what saturates.
LOAD_FAMILIES = (
    ("frame1", 1, 20, False),
    (f"batch{BATCH}", BATCH, 512, True),
)

#: The scaling target the shard/batching work aims at: recorded (not
#: asserted) because shared-host wall clocks wander.
TARGET_STEPS_PER_S = 10_000.0
TARGET_CLIENTS = 32

#: Batched frames must beat one-heartbeat frames by at least this
#: factor at 32 clients — the amortization claim, robust to noise.
BATCH_SPEEDUP_FLOOR = 2.0

#: Batched throughput at 32 clients must retain at least this fraction
#: of the 8-client row (the pre-shard regression was a collapse).
NO_COLLAPSE_FLOOR = 0.5

#: The vectorized backend A/B (``--exec vector`` vs scalar, same
#: daemon shape, same load).  The *floor* is asserted (noise-
#: qualified); the 3× *target* is recorded per host like the absolute
#: steps/s target above.
VEXEC_CLIENTS = 32
VEXEC_SPEEDUP_FLOOR = 1.5
VEXEC_SPEEDUP_TARGET = 3.0
#: 1-client p95 round-trip latency under the vector backend must stay
#: within this ratio of scalar — the lone-heartbeat fast path must
#: keep the gather window free for uncontended clients.  Recorded.
VEXEC_P95_LIMIT = 1.10

#: Keys of ``LoadReport.as_dict`` whose median across repeats is the
#: headline number; the rest (client/step counts) are invariant.
_MEDIAN_KEYS = (
    "elapsed_s",
    "setup_s",
    "sessions_per_s",
    "steps_per_s",
    "p50_step_latency_ms",
    "p95_step_latency_ms",
    "p99_step_latency_ms",
    "client_steps_per_s_mean",
    "client_steps_per_s_min",
    "client_steps_per_s_max",
)

_results = {
    "repeats": None,
    "load": [],
    "target": {},
    "overhead": {},
    "vector": {},
    "convergence": {},
}


def _median_row(runs):
    """Per-metric median across repeat rows of one load point."""
    row = dict(runs[0])
    for key in _MEDIAN_KEYS:
        row[key] = statistics.median(run[key] for run in runs)
    return row


def _median_steps_per_s(family, n_clients):
    for point in _results["load"]:
        if (
            point["family"] == family
            and point["median"]["n_clients"] == n_clients
        ):
            return point["median"]["steps_per_s"]
    raise AssertionError(f"no load point {family}/{n_clients}")


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    manager = SessionManager(
        global_budget_j=1e9, store=SnapshotStore()
    )
    sock = str(tmp_path_factory.mktemp("service") / "bench.sock")
    with ServerThread(manager, unix_path=sock):
        yield sock


@pytest.fixture(scope="module")
def vector_daemon(tmp_path_factory):
    """Same daemon shape as ``daemon``, stepping via the vexec engine."""
    manager = SessionManager(
        global_budget_j=1e9, store=SnapshotStore()
    )
    sock = str(tmp_path_factory.mktemp("vservice") / "bench.sock")
    with ServerThread(manager, unix_path=sock, exec_mode="vector"):
        yield sock


def test_contracts_disabled_round_trips_to_workers():
    """The conftest's ``REPRO_CONTRACTS=0`` reaches every process.

    Throughput numbers here must measure the product path, not the
    dynamic-contract checks, and that has to hold for *subprocesses*
    too: shard workers inherit ``os.environ``, so the flag the
    conftest set must round-trip through a fresh interpreter exactly
    like it reaches a spawned worker.
    """
    assert os.environ.get("REPRO_CONTRACTS") == "0"
    assert contracts_enabled() is False
    probe = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.core.contracts import contracts_enabled;"
            "print(contracts_enabled())",
        ],
        env=dict(os.environ),
        capture_output=True,
        text=True,
        check=True,
    )
    assert probe.stdout.strip() == "False", (
        "a worker subprocess would run the bench load with contracts "
        f"on: {probe.stdout!r}"
    )


@pytest.mark.parametrize(
    "family, batch, steps, fast",
    LOAD_FAMILIES,
    ids=[family for family, _, _, _ in LOAD_FAMILIES],
)
@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_concurrent_load(daemon, n_clients, family, batch, steps, fast, repeats):
    runs = []
    for repeat in range(repeats):
        # Cool-down between saturating runs: sustained 100 % CPU trips
        # shared-host throttling, which would bill earlier rows' heat
        # to later rows.
        time.sleep(0.5)
        report = run_load(
            n_clients,
            steps=steps,
            unix_path=daemon,
            base_seed=1000 * n_clients + 100 * repeat + batch,
            batch=batch,
            fast=fast,
        )
        assert report.errors == 0
        assert report.total_steps == n_clients * steps
        # The comparability invariant: the measurement window starts
        # after every client is connected, so connection setup can
        # never inflate a row's elapsed time.
        assert report.setup_s >= 0.0
        runs.append(report.as_dict())
    row = _median_row(runs)
    _results["repeats"] = repeats
    _results["load"].append(
        {"family": family, "median": row, "runs": runs}
    )
    print(
        f"\n{family:>9} {n_clients:>3} clients (median of {repeats}): "
        f"{row['sessions_per_s']:8.1f} sessions/s  "
        f"{row['steps_per_s']:8.1f} steps/s  "
        f"p50 {row['p50_step_latency_ms']:6.2f} ms  "
        f"p95 {row['p95_step_latency_ms']:6.2f} ms  "
        f"p99 {row['p99_step_latency_ms']:6.2f} ms"
    )


def test_scaling_shape():
    """Relative claims over the collected load medians.

    Runs after every ``test_concurrent_load`` point (pytest executes
    this file top to bottom) and gates the shape, not the absolute
    numbers: batching amortizes the wire, and concurrency no longer
    collapses the batched family.  The absolute 10k-steps/s target is
    recorded for the trajectory file.
    """
    assert len(_results["load"]) == len(LOAD_FAMILIES) * len(
        CLIENT_COUNTS
    ), "scaling gates need every load point collected first"
    frame1 = _median_steps_per_s("frame1", TARGET_CLIENTS)
    batched = _median_steps_per_s(f"batch{BATCH}", TARGET_CLIENTS)
    batched_8 = _median_steps_per_s(f"batch{BATCH}", 8)
    assert batched >= BATCH_SPEEDUP_FLOOR * frame1, (
        f"batched frames no longer amortize the wire: "
        f"{batched:.0f} vs {frame1:.0f} steps/s at {TARGET_CLIENTS} "
        f"clients"
    )
    assert batched >= NO_COLLAPSE_FLOOR * batched_8, (
        f"batched throughput collapsed under concurrency: "
        f"{batched:.0f} steps/s at {TARGET_CLIENTS} clients vs "
        f"{batched_8:.0f} at 8"
    )
    met = batched >= TARGET_STEPS_PER_S
    _results["target"] = {
        "steps_per_s": TARGET_STEPS_PER_S,
        "at_clients": TARGET_CLIENTS,
        "measured_steps_per_s": batched,
        "met": met,
        "speedup_vs_frame1": batched / frame1,
    }
    print(
        f"\nscaling: batch{BATCH} {batched:8.1f} steps/s at "
        f"{TARGET_CLIENTS} clients ({batched / frame1:.1f}x frame1); "
        f"target {TARGET_STEPS_PER_S:.0f} "
        f"{'met' if met else 'NOT met on this host'}"
    )


def test_vector_vs_scalar_ab(daemon, vector_daemon, repeats):
    """A/B the vexec backend against scalar stepping, same wire shape.

    Two wire shapes, one variable (the step execution backend): the
    1-client point drives one-heartbeat frames — the latency shape,
    where the gather window must cost nothing — and the contended
    point drives ``BATCH``-heartbeat frames, the deployment shape
    (PR 9's pipelining), where frames interleave across sessions and
    the pool steps full waves.
    Each repeat measures both daemons in an ABBA sweep (scalar,
    vector, vector, scalar) so shared-host clock drift cancels within
    the repeat; the headline speedup is the median of per-repeat
    elapsed-time ratios (equal step counts per mode, so the time ratio
    is the throughput ratio).

    Asserted: at ``VEXEC_CLIENTS`` concurrent clients the vector
    backend sustains at least ``VEXEC_SPEEDUP_FLOOR``× scalar on
    multi-core hosts (single-core hosts gate at no-regression — the
    in-process generator dilutes the ratio structurally there), both
    noise-qualified by the scalar legs' spread.  Recorded: the 3×
    target and the 1-client p95 ratio (the lone-heartbeat fast path
    must not tax uncontended clients with the gather window).
    """
    points = {}
    for n_clients, steps, batch in (
        (1, 256, 1),
        (VEXEC_CLIENTS, 256, BATCH),
    ):
        rates = {"scalar": [], "vector": []}
        p95s = {"scalar": [], "vector": []}
        ratios = []
        for repeat in range(repeats):
            time.sleep(0.5)
            sweep = {"scalar": 0.0, "vector": 0.0}
            for leg, mode in enumerate(
                ("scalar", "vector", "vector", "scalar")
            ):
                report = run_load(
                    n_clients,
                    steps=steps,
                    unix_path=(
                        daemon if mode == "scalar" else vector_daemon
                    ),
                    base_seed=(
                        7000 + 1000 * n_clients + 100 * repeat + 10 * leg
                    ),
                    batch=batch,
                    fast=True,
                )
                assert report.errors == 0
                assert report.total_steps == n_clients * steps
                sweep[mode] += report.elapsed_s
                rates[mode].append(report.steps_per_s)
                p95s[mode].append(
                    report.p95_step_latency_s * 1000.0
                )
            ratios.append(sweep["scalar"] / sweep["vector"])
        noise_cv = statistics.pstdev(
            rates["scalar"]
        ) / statistics.mean(rates["scalar"])
        points[n_clients] = {
            "n_clients": n_clients,
            "steps_per_client": steps,
            "frame_heartbeats": batch,
            "steps_per_s_scalar": statistics.median(rates["scalar"]),
            "steps_per_s_vector": statistics.median(rates["vector"]),
            "p95_ms_scalar": statistics.median(p95s["scalar"]),
            "p95_ms_vector": statistics.median(p95s["vector"]),
            "speedup": statistics.median(ratios),
            "host_noise_cv": noise_cv,
        }
        print(
            f"\nvexec A/B {n_clients:>3} clients (median of {repeats}):"
            f" scalar {points[n_clients]['steps_per_s_scalar']:8.1f}"
            f" vector {points[n_clients]['steps_per_s_vector']:8.1f}"
            f" steps/s  speedup {points[n_clients]['speedup']:.2f}x"
            f"  (noise cv {100 * noise_cv:.2f}%)"
        )

    contended = points[VEXEC_CLIENTS]
    lone = points[1]
    # Qualified floor, in the spirit of the telemetry gate's
    # ``max(limit, noise)``: the 1.5× claim is about the daemon, but
    # this A/B measures daemon + load generator end to end, and on a
    # single-core host the two serialize on one CPU, so the vector
    # win arrives diluted by the client-side wire work both backends
    # share (structural, not noise).  A 1-core box therefore gates at
    # "no regression" (1.0× — which still catches a genuinely slower
    # engine, e.g. an evict storm), a multi-core box at the real
    # 1.5×; both relax by the measured scalar-leg spread instead of
    # flaking on a throttling shared host.
    cores = os.cpu_count() or 1
    resolvable = cores > 1
    base_floor = VEXEC_SPEEDUP_FLOOR if resolvable else 1.0
    floor = base_floor * (1.0 - contended["host_noise_cv"])
    p95_ratio = lone["p95_ms_vector"] / lone["p95_ms_scalar"]
    _results["vector"] = {
        "points": list(points.values()),
        "speedup": {
            "at_clients": VEXEC_CLIENTS,
            "target": VEXEC_SPEEDUP_TARGET,
            "floor": VEXEC_SPEEDUP_FLOOR,
            "host_cores": cores,
            "floor_resolvable_on_host": resolvable,
            "floor_qualified": floor,
            "measured": contended["speedup"],
            "met": contended["speedup"] >= VEXEC_SPEEDUP_TARGET,
        },
        "p95_1_client": {
            "scalar_ms": lone["p95_ms_scalar"],
            "vector_ms": lone["p95_ms_vector"],
            "ratio": p95_ratio,
            "limit": VEXEC_P95_LIMIT,
            "met": p95_ratio <= VEXEC_P95_LIMIT,
        },
    }
    print(
        f"vexec: speedup {contended['speedup']:.2f}x at "
        f"{VEXEC_CLIENTS} clients (target {VEXEC_SPEEDUP_TARGET:.1f}x "
        f"{'met' if _results['vector']['speedup']['met'] else 'NOT met on this host'}); "
        f"1-client p95 ratio {p95_ratio:.3f} "
        f"(limit {VEXEC_P95_LIMIT:.2f} "
        f"{'met' if p95_ratio <= VEXEC_P95_LIMIT else 'NOT met on this host'})"
    )
    assert contended["speedup"] >= floor, (
        f"vector backend no longer pays for itself: "
        f"{contended['speedup']:.2f}x vs noise-qualified floor "
        f"{floor:.2f}x at {VEXEC_CLIENTS} clients"
    )


def test_metrics_overhead(tmp_path_factory, repeats):
    # Deliberately the per-heartbeat framing: the 5 % gate was
    # calibrated against it, and keeping the probe stable is what makes
    # the overhead number comparable across PRs.  (Batched frames
    # amortize the wire away and so *raise* telemetry's fraction of a
    # much larger throughput — a different, stricter question.)  Both
    # daemons stay up for the whole test; each repeat measures the two
    # modes in an ABBA sweep (disabled, enabled, enabled, disabled) so
    # shared-host clock drift — this box throttles under sustained
    # load — cancels to first order within the repeat instead of
    # masquerading as telemetry cost, and the gate runs on the median
    # of the per-repeat ratios, never on rates from different repeats.
    daemons = {}
    rates = {"disabled": [], "enabled": []}
    ratios = []
    try:
        for mode in ("disabled", "enabled"):
            manager = SessionManager(
                global_budget_j=1e9,
                store=SnapshotStore(),
                telemetry=(
                    ServiceTelemetry.disabled()
                    if mode == "disabled"
                    else None
                ),
            )
            sock = str(
                tmp_path_factory.mktemp(f"obs_{mode}") / "bench.sock"
            )
            daemons[mode] = (
                ServerThread(manager, unix_path=sock),
                sock,
            )
            daemons[mode][0].__enter__()
        for repeat in range(repeats):
            time.sleep(0.5)
            sweep = {"disabled": 0.0, "enabled": 0.0}
            for leg, mode in enumerate(
                ("disabled", "enabled", "enabled", "disabled")
            ):
                report = run_load(
                    OVERHEAD_CLIENTS,
                    steps=20,
                    unix_path=daemons[mode][1],
                    base_seed=5000 + 100 * repeat + 10 * leg,
                )
                assert report.errors == 0
                sweep[mode] += report.elapsed_s
                rates[mode].append(report.steps_per_s)
            # Equal step counts per mode within the sweep, so the
            # elapsed-time ratio is the throughput ratio.
            ratios.append(sweep["disabled"] / sweep["enabled"])
    finally:
        for server, _ in daemons.values():
            server.__exit__(None, None, None)
    medians = {
        mode: statistics.median(values)
        for mode, values in rates.items()
    }
    overhead = 1.0 - statistics.median(ratios)
    # The disabled legs all do identical work, so their spread is pure
    # host noise (a throttling shared box swings ±30 % leg-to-leg).  A
    # 5 % effect is unresolvable under noise like that, so the gate is
    # the larger of the calibrated limit and the measured noise floor:
    # on a quiet host it is the real 5 % gate, on a noisy one it still
    # catches a genuine 2× telemetry regression.  (An in-process A/B of
    # SessionManager.step with/without telemetry measures ~0 %.)
    noise_cv = statistics.pstdev(rates["disabled"]) / statistics.mean(
        rates["disabled"]
    )
    allowed = max(OVERHEAD_LIMIT, noise_cv)
    _results["overhead"] = {
        "n_clients": OVERHEAD_CLIENTS,
        "steps_per_client": 20,
        "steps_per_s_disabled": medians["disabled"],
        "steps_per_s_enabled": medians["enabled"],
        "overhead_fraction": overhead,
        "limit_fraction": OVERHEAD_LIMIT,
        "host_noise_cv": noise_cv,
        "allowed_fraction": allowed,
    }
    print(
        f"\ntelemetry overhead (median of {repeats}): "
        f"disabled {medians['disabled']:8.1f} steps/s  "
        f"enabled {medians['enabled']:8.1f} steps/s  "
        f"overhead {100 * overhead:+5.2f}%  "
        f"(host noise cv {100 * noise_cv:.2f}%)"
    )
    assert overhead <= allowed


def test_warm_vs_cold_convergence(daemon):
    with ServiceClient(unix_path=daemon) as client:
        cold = drive_synthetic_session(
            client,
            machine="tablet",
            app="x264",
            factor=1.5,
            steps=CONVERGENCE_STEPS,
            seed=7,
            warm_start=False,
            take_snapshot=True,
        )
        warm = drive_synthetic_session(
            client,
            machine="tablet",
            app="x264",
            factor=1.5,
            steps=CONVERGENCE_STEPS,
            seed=8,
            warm_start=True,
        )
    assert warm.warm and not cold.warm
    assert warm.convergence_step() < cold.convergence_step()
    _results["convergence"] = {
        "steps": CONVERGENCE_STEPS,
        "cold_convergence_step": cold.convergence_step(),
        "warm_convergence_step": warm.convergence_step(),
        "cold_final_epsilon": cold.decisions[-1]["epsilon"],
        "warm_final_epsilon": warm.decisions[-1]["epsilon"],
    }
    print(
        f"\nconvergence: cold {cold.convergence_step()} iterations, "
        f"warm {warm.convergence_step()}"
    )

    path = write_result(
        "service_throughput.json",
        json.dumps(_results, indent=2, sort_keys=True) + "\n",
    )
    print(f"wrote {path}")
    trajectory = {
        "bench": "service_throughput",
        "repeats": _results["repeats"],
        "load": [
            {"family": point["family"], **point["median"]}
            for point in _results["load"]
        ],
        "target": _results["target"],
        "overhead": _results["overhead"],
        "vector": _results["vector"],
        "convergence": _results["convergence"],
    }
    path = write_repo_result(
        "BENCH_service_throughput.json",
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
    )
    print(f"wrote {path}")
