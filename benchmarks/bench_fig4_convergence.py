"""Fig. 4: stability and convergence time series.

bodytrack runs 260 frames under an aggressive energy goal — a 4x
reduction on Mobile, 3x on Tablet and Server (Sec. 5.3's representative
run) — and the bench reports the normalized energy-per-frame and
accuracy series.  The published shape: energy per frame tracks the
target line after a short transient, and accuracy stays high.
"""

import numpy as np

from conftest import emit

from repro.apps import build_application
from repro.runtime.harness import run_jouleguard

FRAMES = 260
FACTORS = {"mobile": 4.0, "tablet": 3.0, "server": 3.0}


def run_convergence(machines):
    app = build_application("bodytrack")
    results = {}
    for machine_name, factor in FACTORS.items():
        result = run_jouleguard(
            machines[machine_name],
            app,
            factor=factor,
            n_iterations=FRAMES,
            seed=4,
        )
        results[machine_name] = result
    return results


def _render(results) -> str:
    lines = [
        "Fig. 4: bodytrack energy/frame (normalized to target) and "
        "accuracy",
        "(f=4 on Mobile, f=3 on Tablet/Server; 10-frame moving average)",
    ]
    for machine_name, result in results.items():
        target = result.goal.energy_per_work
        smoothed = result.trace.windowed_energy_per_work(10) / target
        accuracy = np.array(result.trace.accuracy)
        lines.append(
            f"\n{machine_name}: relative error "
            f"{result.relative_error_pct:.2f}%, mean accuracy "
            f"{result.mean_accuracy:.4f}"
        )
        lines.append(f"{'frame':>8}{'energy/target':>16}{'accuracy':>12}")
        for frame in range(0, len(smoothed), 25):
            lines.append(
                f"{frame:>8d}{smoothed[frame]:>16.3f}"
                f"{accuracy[frame]:>12.4f}"
            )
    return "\n".join(lines) + "\n"


def test_fig4(benchmark, machines):
    results = benchmark.pedantic(
        run_convergence, args=(machines,), rounds=1, iterations=1
    )
    emit("fig4_convergence.txt", _render(results))

    for machine_name, result in results.items():
        # Converges to the goal within a few percent over the run.
        assert result.relative_error_pct < 5.0, machine_name
        # The second half of the run tracks the target closely.
        target = result.goal.energy_per_work
        late = result.trace.energy_per_work()[FRAMES // 2 :]
        assert np.mean(late) < target * 1.15, machine_name
    # Accuracy cost ordering: Mobile has the most efficient configs, so
    # it retains the most accuracy even at the harsher 4x goal
    # (Sec. 5.3: "Tablet and Server ... must sacrifice more accuracy").
    assert (
        results["mobile"].mean_accuracy
        >= max(
            results["tablet"].mean_accuracy,
            results["server"].mean_accuracy,
        )
        - 0.02
    )
