"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  Results
are printed (run with ``-s`` to see them live) *and* written under
``benchmarks/results/`` so a full ``pytest benchmarks/ --benchmark-only``
leaves the reproduced artifacts on disk.

The Fig. 5 / Fig. 6 sweep (every application × platform × energy factor)
is computed once per session and shared.
"""

from __future__ import annotations

import os
import pathlib
from typing import List

# Benchmarks measure the product path, and production deployments run
# with dynamic contracts off (they cost ~40 % of an in-process step —
# see src/repro/core/contracts.py).  Default them OFF for everything
# under benchmarks/ — before any repro import reads the flag, and via
# the environment so daemon/worker subprocesses spawned by the benches
# inherit the same setting.  An operator can still force them on with
# an explicit REPRO_CONTRACTS=1.  The tier-1 test suite (tests/) is
# unaffected and always runs with contracts on.
os.environ.setdefault("REPRO_CONTRACTS", "0")

import pytest  # noqa: E402

from repro.core.contracts import set_contracts_enabled  # noqa: E402
from repro.hw import all_machines  # noqa: E402
from repro.runtime.sweep import SweepCell, filter_cells, sweep_all  # noqa: E402

# In-process effect of the flag above, in case repro was imported
# before this conftest (e.g. a whole-repo pytest invocation).
if os.environ["REPRO_CONTRACTS"] in ("0", "off", "false"):
    set_contracts_enabled(False)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Repo root, for the ``BENCH_*.json`` trajectory files tracked per PR.
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: Iterations per closed-loop run in the sweeps.  The paper's runs are
#: minutes long (10^4-10^6 heartbeats); 400 keeps the full sweep fast
#: while amortizing the learner's exploration.
SWEEP_ITERATIONS = 400

#: Goals within this fraction of the theoretical maximum factor are
#: treated as feasible for the sweep (the paper likewise skips bars for
#: infeasible targets).
FEASIBILITY_MARGIN = 0.9


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--repeats",
        type=int,
        default=3,
        help=(
            "Runs per load point in timing-sensitive benches; the "
            "reported numbers are medians across repeats."
        ),
    )


@pytest.fixture(scope="session")
def repeats(request) -> int:
    return max(1, request.config.getoption("--repeats"))


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + os.replace).

    A crashed or interrupted bench run must never leave a truncated
    ``BENCH_*.json`` behind — downstream tooling diffs these files
    across PRs and a half-written JSON document would poison the
    trajectory.  ``os.replace`` is atomic on POSIX when source and
    destination share a filesystem, which holds here because the tmp
    file lives next to the destination.
    """
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def write_result(name: str, text: str) -> pathlib.Path:
    """Persist one benchmark's table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    _atomic_write_text(path, text)
    return path


def write_repo_result(name: str, text: str) -> pathlib.Path:
    """Persist a per-PR trajectory file (``BENCH_*.json``) at repo root."""
    path = REPO_ROOT / name
    _atomic_write_text(path, text)
    return path


def emit(name: str, text: str) -> None:
    """Print a result table and persist it."""
    print(f"\n{text}")
    write_result(name, text)


@pytest.fixture(scope="session")
def machines():
    return all_machines()


@pytest.fixture(scope="session")
def full_sweep() -> List[SweepCell]:
    """The Sec. 5.3/5.4 sweep shared by the Fig. 5 and Fig. 6 benches."""
    return sweep_all(
        n_iterations=SWEEP_ITERATIONS,
        seed=17,
        margin=FEASIBILITY_MARGIN,
    )


def cells_by(cells, machine=None, app=None) -> List[SweepCell]:
    return filter_cells(cells, machine=machine, app=app)
