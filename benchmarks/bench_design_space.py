"""The design-space argument of the paper's introduction (Sec. 1, 6.1).

The paper positions JouleGuard in a space of (what is guaranteed ×
what is optimized): Green guarantees accuracy while minimizing energy;
PowerDial guarantees performance; resource managers guarantee
performance while minimizing energy; JouleGuard is the missing point —
*guarantee energy, maximize accuracy*.

This bench runs one representative of each corner on the same workload
(bodytrack on Server) and reports, for a common energy budget label,
what each actually delivers — making the introduction's argument an
executable table.
"""

import numpy as np

from conftest import emit

from repro.apps import build_application
from repro.runtime.baselines import run_application_only, run_system_only
from repro.runtime.green import run_green
from repro.runtime.harness import run_jouleguard

FACTOR = 2.5
ITERATIONS = 400
ACCURACY_BOUND = 0.97  # Green's guarantee, chosen near JouleGuard's outcome


def run_corners(machines):
    server = machines["server"]
    app = build_application("bodytrack")
    rows = {}
    rows["jouleguard"] = run_jouleguard(
        server, app, factor=FACTOR, n_iterations=ITERATIONS, seed=31
    )
    rows["green"] = run_green(
        server,
        app,
        accuracy_bound=ACCURACY_BOUND,
        n_iterations=ITERATIONS,
        seed=31,
        report_factor=FACTOR,
    )
    rows["powerdial (app-only)"] = run_application_only(
        server, app, factor=FACTOR, n_iterations=ITERATIONS, seed=31
    )
    rows["resource mgr (sys-only)"] = run_system_only(
        server, app, factor=FACTOR, n_iterations=ITERATIONS, seed=31
    )
    return rows


GUARANTEES = {
    "jouleguard": "energy budget",
    "green": "accuracy bound",
    "powerdial (app-only)": "performance",
    "resource mgr (sys-only)": "none (best effort)",
}


def _render(rows) -> str:
    lines = [
        f"Design space: bodytrack on Server, labelled goal {FACTOR}x "
        f"(Green bound {ACCURACY_BOUND})",
        f"{'approach':<26}{'guarantees':<20}{'over budget %':>14}"
        f"{'accuracy':>10}{'min acc':>9}{'savings':>9}",
    ]
    for name, result in rows.items():
        lines.append(
            f"{name:<26}{GUARANTEES[name]:<20}"
            f"{result.relative_error_pct:>14.2f}"
            f"{result.mean_accuracy:>10.4f}"
            f"{min(result.trace.accuracy):>9.4f}"
            f"{result.energy_savings:>9.2f}"
        )
    return "\n".join(lines) + "\n"


def test_design_space(benchmark, machines):
    rows = benchmark.pedantic(
        run_corners, args=(machines,), rounds=1, iterations=1
    )
    emit("design_space.txt", _render(rows))

    # JouleGuard: meets the energy budget, near-top accuracy among
    # budget-meeting approaches.
    assert rows["jouleguard"].relative_error_pct < 3.0
    # Green: holds its accuracy bound everywhere...
    assert min(rows["green"].trace.accuracy) >= ACCURACY_BOUND
    # ...but provides no energy guarantee at this budget label.
    # (Its heuristic may or may not land under budget; the *guarantee*
    # difference is what the assertion below captures: JouleGuard's
    # budget adherence is by construction, Green's is incidental.)
    # PowerDial meets the budget only by burning accuracy:
    assert rows["powerdial (app-only)"].relative_error_pct < 3.0
    assert (
        rows["jouleguard"].mean_accuracy
        >= rows["powerdial (app-only)"].mean_accuracy - 0.01
    )
    # System-only cannot reach a 2.5x goal on Server:
    assert rows["resource mgr (sys-only)"].relative_error_pct > 10.0
