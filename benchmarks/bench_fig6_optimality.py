"""Fig. 6: effective accuracy (vs. the oracle) for the full sweep.

Shares the Fig. 5 sweep.  Published shape: effective accuracy close to
unity everywhere; Mobile uniformly highest (its goals sit well inside
the platform's operating range); the weak spots are applications pushed
to the extreme edge of their feasible range (the paper's example is
swish++ on Tablet at 1.5x).
"""

import numpy as np

from conftest import cells_by, emit

from repro.core.budget import PAPER_FACTORS


def _render(cells) -> str:
    lines = ["Fig. 6: Effective accuracy by platform, application, goal"]
    factor_header = "".join(f"{f:>8.2f}" for f in PAPER_FACTORS)
    for machine in ("mobile", "tablet", "server"):
        lines.append(f"\n{machine}:")
        lines.append(f"{'app':<15}" + factor_header)
        apps = sorted({c.app for c in cells_by(cells, machine=machine)})
        for app in apps:
            row = {
                c.factor: c.effective_accuracy
                for c in cells_by(cells, machine=machine, app=app)
            }
            cols = "".join(
                f"{row[f]:>8.3f}" if f in row else f"{'—':>8}"
                for f in PAPER_FACTORS
            )
            lines.append(f"{app:<15}" + cols)
    acc = np.array([c.effective_accuracy for c in cells])
    lines.append(
        f"\nsummary over {len(cells)} runs: mean={acc.mean():.3f} "
        f"min={acc.min():.3f}"
    )
    per_machine = {
        m: np.mean(
            [c.effective_accuracy for c in cells_by(cells, machine=m)]
        )
        for m in ("mobile", "tablet", "server")
    }
    lines.append(f"per-platform means: {per_machine}")
    return "\n".join(lines) + "\n"


def test_fig6(benchmark, full_sweep):
    cells = benchmark.pedantic(lambda: full_sweep, rounds=1, iterations=1)
    emit("fig6_optimality.txt", _render(cells))

    acc = np.array([c.effective_accuracy for c in cells])
    # "JouleGuard is within a few percent of true optimal accuracy."
    assert acc.mean() > 0.97
    # No catastrophic outliers (paper's worst, swish-like edge cases,
    # sit around 0.5-0.85; our margin keeps them above 0.8).
    assert acc.min() > 0.8
    # Mobile accuracies uniformly high (Sec. 5.4).
    mobile = [c.effective_accuracy for c in cells if c.machine == "mobile"]
    assert np.mean(mobile) > 0.97
