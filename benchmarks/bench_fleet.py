"""Fleet engine throughput: vectorized pool vs the scalar session loop.

The point of ``repro.fleet`` is that stepping a cohort as numpy
struct-of-arrays state is orders of magnitude faster than stepping the
same sessions through per-object ``JouleGuardRuntime`` loops, while
staying decision-for-decision equivalent (the equivalence itself is a
tier-1 test; this bench only measures speed).  Two workloads:

* **throughput** — a 100k-device tablet/x264 cohort stepped in fast
  mode vs a batch of :class:`~repro.fleet.ScalarSessionLoop` objects
  over the same number of steps.  Both sides draw their measurements
  from a :class:`~repro.fleet.CohortHardwareModel`, so synthesis cost
  is charged to both.  The headline number is device-steps/s and the
  ratio must clear ``SPEEDUP_FLOOR`` (100x) — the bar the vectorized
  engine has to keep clearing as the step path grows features;
* **fleet tails** — one run of the ``smoke`` scenario, recording the
  fleet-level outcomes a deployment would watch: budget violations
  per million sessions, kills per million, and the accuracy /
  burn-fraction distribution tails.

Timing points run ``--repeats`` times (default 3) and report medians.
Results land in ``benchmarks/results/fleet.json`` and in
``BENCH_fleet.json`` at the repo root so the perf trajectory is
tracked per PR.  Absolute rates reflect this container's cores; the
shape claim that should survive any port is the >=100x gap between
the vectorized and scalar engines at fleet scale.
"""

import json
import statistics
import time

import numpy as np

from conftest import write_repo_result, write_result

from repro.apps import build_application
from repro.fleet import (
    CohortHardwareModel,
    CohortSpec,
    FleetSimulator,
    ScalarSessionLoop,
    SessionPool,
    preset_scenario,
)
from repro.hw import GENERIC_PROFILE, get_machine
from repro.hw.vector import MachineTables

POOL_DEVICES = 100_000
SCALAR_SESSIONS = 192
N_STEPS = 20
SPEEDUP_FLOOR = 100.0

#: Work per session far above what N_STEPS can finish, so the pool
#: stays fully populated (no completion path) for the whole timing.
BENCH_WORK = 1e9

_results = {
    "repeats": None,
    "throughput": {},
    "fleet": {},
}


def _cohort_fixture(n, seed):
    machine = get_machine("tablet")
    app = build_application("x264")
    spec = CohortSpec.from_pair(machine, app)
    tables = MachineTables.build(machine, GENERIC_PROFILE)
    model = CohortHardwareModel(tables, spec, n, seed=seed)
    work = np.full(n, BENCH_WORK)
    seeds = np.arange(n, dtype=np.int64) * 7 + seed
    factors = np.linspace(1.2, 2.5, n)
    return machine, app, spec, model, work, seeds, factors


def _time_pool(repeat):
    _, _, spec, model, work, seeds, factors = _cohort_fixture(
        POOL_DEVICES, seed=100 + repeat
    )
    pool = SessionPool(spec, mode="fast", seed=100 + repeat)
    pool.open(work, seeds, factors=factors)
    start = time.perf_counter()
    for t in range(N_STEPS):
        m_work, energy_j, rate, power_w = model.measurements(
            t, pool.d_sys, pool.d_fpos
        )
        pool.step(m_work, energy_j, rate, power_w)
        model.prune(t)
    elapsed = time.perf_counter() - start
    assert pool.alive_count == POOL_DEVICES
    return POOL_DEVICES * N_STEPS / elapsed


def _time_scalar(repeat):
    machine, app, _, model, work, seeds, factors = _cohort_fixture(
        SCALAR_SESSIONS, seed=100 + repeat
    )
    loops = [
        ScalarSessionLoop(
            machine,
            app,
            float(work[i]),
            int(seeds[i]),
            factor=float(factors[i]),
        )
        for i in range(SCALAR_SESSIONS)
    ]
    index_to_fpos = {
        int(index): position
        for position, index in enumerate(model.spec.frontier_indices)
    }
    start = time.perf_counter()
    for t in range(N_STEPS):
        for i, loop in enumerate(loops):
            decision = loop.decision
            loop.step(
                model.measurement_for(
                    i,
                    t,
                    decision.system_index,
                    index_to_fpos[decision.app_config.index],
                )
            )
        model.prune(t)
    elapsed = time.perf_counter() - start
    return SCALAR_SESSIONS * N_STEPS / elapsed


def test_pool_vs_scalar_throughput(repeats):
    pool_rates = [_time_pool(r) for r in range(repeats)]
    scalar_rates = [_time_scalar(r) for r in range(repeats)]
    pool_rate = statistics.median(pool_rates)
    scalar_rate = statistics.median(scalar_rates)
    speedup = pool_rate / scalar_rate
    _results["repeats"] = repeats
    _results["throughput"] = {
        "pool_devices": POOL_DEVICES,
        "scalar_sessions": SCALAR_SESSIONS,
        "n_steps": N_STEPS,
        "pool_device_steps_per_s": pool_rate,
        "scalar_device_steps_per_s": scalar_rate,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "pool_runs": pool_rates,
        "scalar_runs": scalar_rates,
    }
    print(
        f"\nfleet throughput (median of {repeats}): "
        f"pool {pool_rate:12.0f} device-steps/s  "
        f"scalar {scalar_rate:10.0f} device-steps/s  "
        f"speedup {speedup:8.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR


def test_fleet_tail_metrics():
    scenario = preset_scenario("smoke")
    report = FleetSimulator(scenario).run()
    assert report.hard_tier_overdraft == 0
    assert report.killed > 0
    _results["fleet"] = {
        "scenario": scenario.name,
        "report": report.as_dict(),
    }
    print(
        f"\nfleet tails ({scenario.name}): "
        f"{report.opened} sessions  "
        f"{report.violations_per_million:.0f} violations/M  "
        f"{report.kills_per_million:.0f} kills/M  "
        f"hard-tier overdraft {report.hard_tier_overdraft}"
    )

    path = write_result(
        "fleet.json",
        json.dumps(_results, indent=2, sort_keys=True) + "\n",
    )
    print(f"wrote {path}")
    trajectory = {
        "bench": "fleet",
        "repeats": _results["repeats"],
        "throughput": {
            key: value
            for key, value in _results["throughput"].items()
            if key not in ("pool_runs", "scalar_runs")
        },
        "fleet": _results["fleet"],
    }
    path = write_repo_result(
        "BENCH_fleet.json",
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
    )
    print(f"wrote {path}")
