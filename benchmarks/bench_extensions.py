"""Benches for the extension systems (not in the paper; DESIGN.md Sec. 6).

* race-vs-pace: the Table 3 "idle" dimension — winner per platform and
  the gap both heuristics leave to the hybrid optimum,
* thermal throttling: JouleGuard's budget survives an undersized
  heatsink,
* multi-application coordination: budget transfers preserve the global
  guarantee while rescuing a straining application.
"""

import numpy as np

from conftest import emit

from repro.apps import build_application
from repro.core.budget import EnergyGoal
from repro.core.jouleguard import build_runtime
from repro.core.multi import MultiAppCoordinator
from repro.core.types import Measurement
from repro.hw import GENERIC_PROFILE, compare_policies
from repro.hw.simulator import PlatformSimulator
from repro.hw.speedup_model import work_rate
from repro.hw.thermal import ThermalModel, attach_thermal_model
from repro.runtime.harness import prior_shapes
from repro.runtime.oracle import default_energy_per_work


def run_race_pace(machines):
    rows = []
    for name, machine in machines.items():
        rate = work_rate(machine, machine.default_config, GENERIC_PROFILE)
        for slack in (1.5, 4.0, 12.0):
            comparison = compare_policies(
                machine, GENERIC_PROFILE, 1.0, slack / rate
            )
            rows.append(
                (
                    name,
                    slack,
                    comparison.winner,
                    comparison.heuristic_gap,
                )
            )
    return rows


def run_thermal(machines):
    machine = machines["tablet"]
    app = build_application("x264")
    simulator = PlatformSimulator(machine, app.resource_profile, seed=3)
    model = attach_thermal_model(
        simulator,
        ThermalModel(
            thermal_resistance_c_per_w=10.0,
            time_constant_s=2.0,
            throttle_threshold_c=70.0,
            critical_c=95.0,
            min_throttle=0.5,
        ),
    )
    n = 400
    epw = default_energy_per_work(machine, app)
    goal = EnergyGoal.from_factor(1.5, n, epw)
    rate_shape, power_shape = prior_shapes(machine)
    runtime = build_runtime(rate_shape, power_shape, app.table, goal, seed=4)
    total = 0.0
    peak_temp = 0.0
    throttled_iterations = 0
    for _ in range(n):
        decision = runtime.current_decision
        result = simulator.run_iteration(
            machine.space[decision.system_index],
            work=1.0,
            app_speedup=decision.app_config.speedup,
        )
        total += result.energy_j
        peak_temp = max(peak_temp, model.temperature_c)
        throttled_iterations += int(model.throttling)
        runtime.step(
            Measurement(
                work=1.0,
                energy_j=result.measured_power_w * result.time_s,
                rate=result.measured_rate,
                power_w=result.measured_power_w,
            )
        )
    overshoot = max(0.0, (total / goal.budget_j - 1.0) * 100.0)
    return {
        "overshoot_pct": overshoot,
        "peak_temp_c": peak_temp,
        "throttled_fraction": throttled_iterations / n,
    }


def run_multi(machines):
    machine = machines["tablet"]
    pair = {
        "x264": build_application("x264"),
        "bodytrack": build_application("bodytrack"),
    }
    n = 400
    needs = {
        name: default_energy_per_work(machine, app) * n
        for name, app in pair.items()
    }
    global_budget = sum(needs.values()) / 2.0
    shares = {
        "x264": global_budget * 0.65,
        "bodytrack": global_budget * 0.35,
    }
    rate_shape, power_shape = prior_shapes(machine)
    runtimes = {
        name: build_runtime(
            rate_shape,
            power_shape,
            app.table,
            EnergyGoal(total_work=n, budget_j=shares[name]),
            seed=i,
        )
        for i, (name, app) in enumerate(pair.items())
    }
    simulators = {
        name: PlatformSimulator(machine, app.resource_profile, seed=20 + i)
        for i, (name, app) in enumerate(pair.items())
    }
    coordinator = MultiAppCoordinator(runtimes, rebalance_period=25)
    for _ in range(n):
        for name in pair:
            decision = coordinator.current_decision(name)
            result = simulators[name].run_iteration(
                machine.space[decision.system_index],
                work=1.0,
                app_speedup=decision.app_config.speedup,
                app_power_factor=decision.app_config.power_factor,
            )
            coordinator.step(
                name,
                Measurement(
                    work=1.0,
                    energy_j=result.measured_power_w * result.time_s,
                    rate=result.measured_rate,
                    power_w=result.measured_power_w,
                ),
            )
    report = coordinator.summary()
    return {
        "global_budget_j": global_budget,
        "used_j": coordinator.total_energy_used_j,
        "transferred_j": report["bodytrack"]["effective_budget_j"]
        - shares["bodytrack"],
        "conserved": abs(
            coordinator.total_effective_budget_j - global_budget
        )
        < 1e-6,
    }


def _render(race_pace, thermal, multi) -> str:
    lines = ["Extension benches", "", "Race-to-idle vs pacing:"]
    lines.append(f"{'platform':<9}{'slack':>7}{'winner':>8}{'gap':>7}")
    for name, slack, winner, gap in race_pace:
        lines.append(f"{name:<9}{slack:>6.1f}x{winner:>8}{gap:>7.2f}")
    lines.append("")
    lines.append(
        f"Thermal throttling (tablet, undersized heatsink): budget "
        f"overshoot {thermal['overshoot_pct']:.2f}%, peak "
        f"{thermal['peak_temp_c']:.1f}C, throttled "
        f"{thermal['throttled_fraction']:.0%} of iterations"
    )
    lines.append("")
    lines.append(
        f"Multi-app coordination (tablet): used {multi['used_j']:.1f} J "
        f"of {multi['global_budget_j']:.1f} J global budget; "
        f"{multi['transferred_j']:+.1f} J transferred to the straining "
        f"app; conservation {'holds' if multi['conserved'] else 'BROKEN'}"
    )
    return "\n".join(lines) + "\n"


def test_extensions(benchmark, machines):
    def run_all():
        return (
            run_race_pace(machines),
            run_thermal(machines),
            run_multi(machines),
        )

    race_pace, thermal, multi = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    emit("extensions.txt", _render(race_pace, thermal, multi))

    winners = {name: set() for name, *_ in race_pace}
    for name, _, winner, gap in race_pace:
        winners[name].add(winner)
        assert gap >= 1.0
    # The heuristic winner is platform-dependent (the learner's raison
    # d'être): pacing on mobile, racing on tablet at loose slack.
    assert "pace" in winners["mobile"]
    assert "race" in winners["tablet"]

    assert thermal["throttled_fraction"] > 0.05  # the heatsink does bite
    assert thermal["overshoot_pct"] < 6.0  # and the budget survives

    assert multi["conserved"]
    assert multi["used_j"] <= multi["global_budget_j"] * 1.03
    assert multi["transferred_j"] > 0.0
