"""Table 3: system configurations.

Regenerates the paper's Table 3 — per platform and knob: the number of
settings and the maximum speedup/powerup that knob provides (measured by
sweeping the knob with every other knob at its maximum, on the generic
profile, relative to the knob's minimum setting).
"""

from conftest import emit

from repro.apps import build_all
from repro.hw import system_power, work_rate

#: Published Table 3 rows for side-by-side comparison:
#: (platform, knob) -> (settings, speedup, powerup)
PAPER_TABLE3 = {
    ("mobile", "big_cores"): (4, 4.52, 2.00),
    ("mobile", "big_ghz"): (19, 10.23, 10.42),
    ("mobile", "little_cores"): (4, 4.52, 1.32),
    ("mobile", "little_ghz"): (13, 7.11, 2.62),
    ("tablet", "clock_ghz"): (8, 2.72, 1.94),
    ("tablet", "cores"): (2, 1.81, 1.22),
    ("tablet", "hyperthreads"): (2, 1.10, 1.03),
    ("server", "clock_ghz"): (16, 3.23, 2.05),
    ("server", "cores"): (16, 15.99, 2.03),
    ("server", "hyperthreads"): (2, 1.92, 1.11),
    ("server", "mem_ctrls"): (2, 1.84, 1.11),
}


def _sweep_configs(machine, knob):
    """Legal configs sweeping one knob, others pinned resource-max.

    Other knobs take the highest-resource configuration that admits the
    most legal values of this knob (on the Mobile platform's
    cluster-exclusive space, a cluster's core count can only sweep 1–4
    while that cluster is the active one — matching Table 3's counts).
    """
    best = []
    for config in machine.space.linearized()[::-1]:
        candidates = []
        for value in knob.values:
            candidate = config.replace(**{knob.name: value})
            try:
                machine.space.validate(candidate)
            except ValueError:
                continue
            candidates.append(candidate)
        if len(candidates) > len(best):
            best = candidates
        if len(best) == len(knob.values):
            break
    return best


def _knob_range(machine, knob, profiles):
    """(legal settings, speedup, powerup) for one knob.

    The paper reports "the maximum increase in speed and power measured
    on each machine" — a maximum over the benchmark suite — so each
    knob's range is the max over all application resource profiles.
    """
    configs = _sweep_configs(machine, knob)
    if len(configs) < 2:
        return None
    speedup = powerup = 1.0
    for profile in profiles:
        rates = [work_rate(machine, c, profile) for c in configs]
        powers = [system_power(machine, c, profile) for c in configs]
        speedup = max(speedup, max(rates) / min(rates))
        powerup = max(powerup, max(powers) / min(powers))
    return len(configs), speedup, powerup


def measure_table3(machines):
    profiles = [app.resource_profile for app in build_all().values()]
    rows = []
    for name, machine in machines.items():
        for knob in machine.space.knobs:
            sweep = _knob_range(machine, knob, profiles)
            if sweep is None:
                continue
            settings, speedup, powerup = sweep
            paper = PAPER_TABLE3.get((name, knob.name))
            rows.append((name, knob.name, settings, speedup, powerup, paper))
    return rows


def _render(rows) -> str:
    lines = [
        "Table 3: System configurations (measured / paper)",
        f"{'System':<9}{'Knob':<15}{'Settings':>12}{'Speedup':>18}"
        f"{'Powerup':>18}",
    ]
    for name, knob, settings, speedup, powerup, paper in rows:
        if paper:
            p_settings, p_speed, p_power = paper
            lines.append(
                f"{name:<9}{knob:<15}"
                f"{settings:>5d}/{p_settings:<6d}"
                f"{speedup:>8.2f}/{p_speed:<8.2f}"
                f"{powerup:>8.2f}/{p_power:<8.2f}"
            )
        else:
            lines.append(
                f"{name:<9}{knob:<15}{settings:>5d}/{'—':<6}"
                f"{speedup:>8.2f}/{'—':<8}{powerup:>8.2f}/{'—':<8}"
            )
    return "\n".join(lines) + "\n"


def test_table3(benchmark, machines):
    rows = benchmark.pedantic(
        measure_table3, args=(machines,), rounds=1, iterations=1
    )
    emit("table3_systems.txt", _render(rows))
    by_key = {(m, k): (s, sp, pw) for m, k, s, sp, pw, _ in rows}
    # Setting counts match the paper exactly.
    for (machine, knob), (settings, _, _) in PAPER_TABLE3.items():
        assert by_key[(machine, knob)][0] == settings
    # Knobs provide real dynamic range in the right direction.
    for _, _, _, speedup, powerup, _ in rows:
        assert speedup >= 1.0
        assert powerup >= 1.0
