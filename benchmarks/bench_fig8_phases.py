"""Fig. 8: adaptation to application phases.

The Sec. 5.6 input: three concatenated 200-frame scenes — hard, easy
(naturally ~40 % faster), hard — run under an aggressive energy goal on
all three platforms.  Published shape: a short energy spike at each
phase change, energy per frame holding the target throughout, and the
middle phase's headroom converted into *higher accuracy*.
"""

import numpy as np

from conftest import emit

from repro.apps import build_application
from repro.runtime.harness import run_jouleguard
from repro.workloads.phases import three_scene_video

FRAMES_PER_SCENE = 200
#: The paper's representative goals: a 4x reduction on Mobile, 3x on the
#: other platforms (as in Fig. 4) — aggressive enough that the hard
#: scenes require real accuracy loss.
FACTORS = {"mobile": 4.0, "tablet": 3.0, "server": 3.0}


def run_phases(machines):
    app = build_application("bodytrack")
    workload = three_scene_video(FRAMES_PER_SCENE)
    results = {}
    for machine_name, machine in machines.items():
        factor = FACTORS[machine_name]
        results[machine_name] = (
            factor,
            run_jouleguard(
                machine, app, factor=factor, workload=workload, seed=8
            ),
        )
    return results


def _phase_slices():
    n = FRAMES_PER_SCENE
    settle = n // 4
    return {
        "hard1": slice(settle, n),
        "easy": slice(n + settle, 2 * n),
        "hard2": slice(2 * n + settle, 3 * n),
    }


def _render(results) -> str:
    lines = [
        "Fig. 8: Phase adaptation (bodytrack, hard/easy/hard scenes)",
    ]
    for machine_name, (factor, result) in results.items():
        target = result.goal.energy_per_work
        epw = result.trace.energy_per_work()
        accuracy = np.array(result.trace.accuracy)
        lines.append(
            f"\n{machine_name} (goal {factor:.2f}x, relative error "
            f"{result.relative_error_pct:.2f}%)"
        )
        lines.append(
            f"{'phase':<8}{'energy/frame / target':>24}{'accuracy':>12}"
        )
        for phase, sl in _phase_slices().items():
            lines.append(
                f"{phase:<8}{np.mean(epw[sl]) / target:>24.3f}"
                f"{accuracy[sl].mean():>12.4f}"
            )
    return "\n".join(lines) + "\n"


def test_fig8(benchmark, machines):
    results = benchmark.pedantic(
        run_phases, args=(machines,), rounds=1, iterations=1
    )
    emit("fig8_phases.txt", _render(results))

    slices = _phase_slices()
    for machine_name, (factor, result) in results.items():
        accuracy = np.array(result.trace.accuracy)
        hard1 = accuracy[slices["hard1"]].mean()
        easy = accuracy[slices["easy"]].mean()
        hard2 = accuracy[slices["hard2"]].mean()
        # The easy scene's headroom becomes accuracy (the Fig. 8 bump).
        assert easy > hard1, machine_name
        assert easy > hard2, machine_name
        # ...without breaking the energy guarantee.
        assert result.relative_error_pct < 5.0, machine_name
        # Hard scenes resemble each other (the runtime re-adapts back).
        assert abs(hard1 - hard2) < 0.05, machine_name
