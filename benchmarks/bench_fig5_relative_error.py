"""Fig. 5: relative error for every application, platform, and goal.

The full Sec. 5.3 sweep: energy-reduction factors 1.1x–3.0x for every
application on every platform it runs on (infeasible combinations are
skipped, as in the paper).  The published shape: error is within a few
percent everywhere, generally growing with goal aggressiveness.
"""

import numpy as np

from conftest import cells_by, emit

from repro.core.budget import PAPER_FACTORS


def _render(cells) -> str:
    lines = ["Fig. 5: Relative error (%) by platform, application, goal"]
    factor_header = "".join(f"{f:>8.2f}" for f in PAPER_FACTORS)
    for machine in ("mobile", "tablet", "server"):
        lines.append(f"\n{machine}:")
        lines.append(f"{'app':<15}" + factor_header)
        apps = sorted({c.app for c in cells_by(cells, machine=machine)})
        for app in apps:
            row = {
                c.factor: c.relative_error_pct
                for c in cells_by(cells, machine=machine, app=app)
            }
            cols = "".join(
                f"{row[f]:>8.2f}" if f in row else f"{'—':>8}"
                for f in PAPER_FACTORS
            )
            lines.append(f"{app:<15}" + cols)
    errors = np.array([c.relative_error_pct for c in cells])
    lines.append(
        f"\nsummary over {len(cells)} runs: mean={errors.mean():.2f}% "
        f"median={np.median(errors):.2f}% p90={np.percentile(errors, 90):.2f}% "
        f"max={errors.max():.2f}%"
    )
    return "\n".join(lines) + "\n"


def test_fig5(benchmark, full_sweep):
    cells = benchmark.pedantic(
        lambda: full_sweep, rounds=1, iterations=1
    )
    emit("fig5_relative_error.txt", _render(cells))

    errors = np.array([c.relative_error_pct for c in cells])
    # "JouleGuard maintains energy within a few percent of the goal."
    assert errors.mean() < 2.0
    assert np.median(errors) < 1.0
    # Worst cases stay in the paper's ~10 % ballpark.
    assert errors.max() < 15.0
    # Most combinations are effectively exact.
    assert (errors < 1.0).mean() > 0.8
