"""Table 4: runtime overhead.

The paper times 100 iterations of the runtime managing x264 (the largest
application configuration space) on each platform and reports
microseconds per iteration: 249 µs (Mobile), 164 µs (Tablet), 82 µs
(Server).  Here the runtime is the Python implementation and the
"platform" determines the system-configuration space the learner must
search (Mobile 128, Tablet 32, Server 1024 arms) — this benchmark uses
pytest-benchmark to genuinely *time* one Algorithm 1 iteration per
platform.  Absolute numbers reflect Python, not the paper's C runtime;
the shape claim that survives is that overhead stays far below any
realistic heartbeat period.
"""

import pytest

from conftest import emit

from repro.apps import build_application
from repro.core.budget import EnergyGoal
from repro.core.jouleguard import build_runtime
from repro.core.types import Measurement
from repro.runtime.harness import prior_shapes
from repro.runtime.oracle import default_energy_per_work

PAPER_LATENCY_US = {"mobile": 249, "tablet": 164, "server": 82}

_collected = {}


def _make_runtime(machine):
    app = build_application("x264")
    epw = default_energy_per_work(machine, app)
    goal = EnergyGoal.from_factor(2.0, total_work=1e9, default_energy_per_work=epw)
    rate_shape, power_shape = prior_shapes(machine)
    runtime = build_runtime(rate_shape, power_shape, app.table, goal, seed=0)
    measurement = Measurement(work=1.0, energy_j=epw / 2, rate=30.0, power_w=150.0)
    return runtime, measurement


@pytest.mark.parametrize("machine_name", ["mobile", "tablet", "server"])
def test_runtime_iteration_latency(benchmark, machines, machine_name):
    runtime, measurement = _make_runtime(machines[machine_name])
    benchmark(runtime.step, measurement)
    mean_us = benchmark.stats["mean"] * 1e6
    _collected[machine_name] = mean_us
    # Far below any heartbeat period: x264 frames arrive every ~30 ms.
    assert mean_us < 30_000

    if len(_collected) == 3:
        lines = [
            "Table 4: Runtime overhead (one Algorithm 1 iteration, x264)",
            f"{'Platform':<10}{'Latency (us)':>14}{'Paper (us, C runtime)':>24}",
        ]
        for name in ("mobile", "tablet", "server"):
            lines.append(
                f"{name:<10}{_collected[name]:>14.1f}"
                f"{PAPER_LATENCY_US[name]:>24d}"
            )
        emit("table4_overhead.txt", "\n".join(lines) + "\n")
