"""Fig. 1: four approaches to an energy goal for swish++.

The motivating experiment (Sec. 2): reduce swish++'s energy per query by
one third on Server.  The published shape:

* system-only  — misses the goal (~20 % high) at full accuracy,
* app-only     — on target, but ~83 % of results lost,
* uncoordinated — oscillates; poor accuracy without better energy,
* JouleGuard   — on target with far smaller accuracy loss.
"""

import math

import numpy as np

from conftest import emit

from repro.apps import build_application
from repro.runtime.baselines import (
    run_application_only,
    run_system_only,
    run_uncoordinated,
)
from repro.runtime.harness import run_jouleguard

FACTOR = 1.5  # 0.09 -> 0.06 J/query in the paper
ITERATIONS = 1200
SEED = 2


def run_all(machines):
    server = machines["server"]
    app = build_application("swish")
    runners = {
        "system-only": run_system_only,
        "app-only": run_application_only,
        "uncoordinated": run_uncoordinated,
        "jouleguard": run_jouleguard,
    }
    results = {}
    for name, runner in runners.items():
        result = runner(
            server, app, factor=FACTOR, n_iterations=ITERATIONS, seed=SEED
        )
        epw = result.trace.energy_per_work()
        steady = epw[ITERATIONS // 3 :]
        results[name] = {
            "relative_error_pct": result.relative_error_pct,
            "accuracy": result.mean_accuracy,
            "energy_per_query": float(np.mean(epw)),
            "target": result.goal.energy_per_work,
            "oscillation_cv": float(np.std(steady) / np.mean(steady)),
            "series": result.trace.windowed_energy_per_work(25),
        }
    return results


def _render(results) -> str:
    lines = [
        "Fig. 1: Approaches to a 1.5x energy goal, swish++ on Server",
        f"{'Approach':<15}{'J/query':>10}{'Target':>10}{'RelErr%':>10}"
        f"{'Accuracy':>10}{'Osc. CV':>10}",
    ]
    for name, r in results.items():
        lines.append(
            f"{name:<15}{r['energy_per_query']:>10.4f}"
            f"{r['target']:>10.4f}{r['relative_error_pct']:>10.2f}"
            f"{r['accuracy']:>10.3f}{r['oscillation_cv']:>10.3f}"
        )
    lines.append("")
    lines.append("Energy-per-query time series (25-query moving average,")
    lines.append("sampled every 100 queries; target = 1.00):")
    header = "iter".rjust(8) + "".join(
        name.rjust(15) for name in results
    )
    lines.append(header)
    target = next(iter(results.values()))["target"]
    length = min(len(r["series"]) for r in results.values())
    for i in range(0, length, 100):
        row = f"{i:>8d}" + "".join(
            f"{r['series'][i] / target:>15.3f}" for r in results.values()
        )
        lines.append(row)
    return "\n".join(lines) + "\n"


def test_fig1(benchmark, machines):
    results = benchmark.pedantic(
        run_all, args=(machines,), rounds=1, iterations=1
    )
    emit("fig1_motivation.txt", _render(results))

    # The paper's qualitative ordering must hold:
    # 1. system-only misses the goal at full accuracy.
    assert results["system-only"]["relative_error_pct"] > 5.0
    assert math.isclose(results["system-only"]["accuracy"], 1.0)
    # 2. app-only meets the goal with severe accuracy loss.
    assert results["app-only"]["relative_error_pct"] < 3.0
    assert results["app-only"]["accuracy"] < 0.4
    # 3. uncoordinated oscillates visibly more than system-only.
    assert (
        results["uncoordinated"]["oscillation_cv"]
        > 2.0 * results["system-only"]["oscillation_cv"]
    )
    # 4. JouleGuard meets the goal with the best accuracy of any
    #    goal-meeting approach.
    assert results["jouleguard"]["relative_error_pct"] < 3.0
    assert (
        results["jouleguard"]["accuracy"] > results["app-only"]["accuracy"]
    )
    assert (
        results["jouleguard"]["accuracy"]
        > results["uncoordinated"]["accuracy"]
    )
