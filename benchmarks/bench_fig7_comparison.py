"""Fig. 7: JouleGuard vs. application-only vs. system-only on Server.

For each application and a ladder of energy-savings goals, compares
JouleGuard's achieved accuracy with the best possible application-only
accuracy (which needs the full factor as speedup) and the maximum
system-only savings (the dotted line: full accuracy, but a hard ceiling
on achievable savings).  Published shape:

* JouleGuard ≥ application-only at every feasible goal,
* JouleGuard's accuracy only starts to drop beyond the system-only line,
* the coordinated range extends beyond either layer alone.
"""

import numpy as np

from conftest import FEASIBILITY_MARGIN, emit

from repro.apps import applications_for_platform
from repro.runtime.baselines import app_only_accuracy, max_system_only_savings
from repro.runtime.harness import run_jouleguard
from repro.runtime.oracle import max_feasible_factor

GOALS = (1.1, 1.2, 1.3, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0)
ITERATIONS = 500


def run_comparison(machines):
    server = machines["server"]
    table = {}
    for app_name, app in applications_for_platform("server").items():
        sys_line = max_system_only_savings(server, app)
        limit = max_feasible_factor(server, app) * FEASIBILITY_MARGIN
        rows = []
        for goal in GOALS:
            if goal > limit:
                continue
            guarded = run_jouleguard(
                server, app, factor=goal, n_iterations=ITERATIONS, seed=23
            )
            rows.append(
                (goal, guarded.mean_accuracy, app_only_accuracy(app, goal))
            )
        table[app_name] = (sys_line, rows)
    return table


def _render(table) -> str:
    lines = [
        "Fig. 7: Accuracy vs. energy-savings goal on Server",
        "(JG = JouleGuard, AO = application-only best possible;",
        " sys-line = max savings from system adaptation alone)",
    ]
    for app_name, (sys_line, rows) in table.items():
        lines.append(f"\n{app_name} (system-only line: {sys_line:.2f}x)")
        lines.append(f"{'goal':>8}{'JG acc':>10}{'AO acc':>10}")
        for goal, jg, ao in rows:
            ao_text = f"{ao:>10.3f}" if ao is not None else f"{'infeas':>10}"
            lines.append(f"{goal:>8.2f}{jg:>10.3f}" + ao_text)
    return "\n".join(lines) + "\n"


def test_fig7(benchmark, machines):
    table = benchmark.pedantic(
        run_comparison, args=(machines,), rounds=1, iterations=1
    )
    emit("fig7_comparison.txt", _render(table))

    for app_name, (sys_line, rows) in table.items():
        for goal, jouleguard_acc, app_only_acc in rows:
            # JouleGuard is uniformly at least as accurate as the best
            # application-only outcome (small tolerance for run noise).
            if app_only_acc is not None:
                assert jouleguard_acc >= app_only_acc - 0.02, (
                    app_name,
                    goal,
                )
            # Within the system-only range, no needless accuracy loss
            # (tolerance for coarse tables like swish++'s 6 configs,
            # where one transient step costs a whole accuracy notch).
            if goal <= sys_line * 0.9:
                assert jouleguard_acc > 0.95, (app_name, goal)
        # The coordinated range reaches goals application-only cannot.
        reachable = [g for g, _, ao in rows if ao is None]
        app = applications_for_platform("server")[app_name]
        if rows and rows[-1][0] > app.table.max_speedup:
            assert reachable, app_name
