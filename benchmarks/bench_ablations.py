"""Ablations of JouleGuard's design choices (DESIGN.md Sec. 5).

Not a paper figure — these benches justify the design decisions the
paper argues for (and the documented engineering defaults this
reproduction adds):

* adaptive pole vs. a fixed aggressive pole under injected model error
  (the Sec. 3.4.2 robustness claim),
* VDBE vs. fixed-ε exploration vs. a classic UCB1 bandit,
* the EWMA α sweep around the paper's 0.85,
* optimistic-prior inflation (``optimism`` > 1) on a large space,
* the known static-power floor in the power prior.
"""

import numpy as np

from conftest import emit

from repro.apps import build_application
from repro.core.budget import EnergyGoal
from repro.core.jouleguard import JouleGuardRuntime, build_runtime
from repro.core.types import Measurement
from repro.core.ucb import UcbSystemOptimizer
from repro.core.vdbe import Vdbe
from repro.hw.simulator import PlatformSimulator
from repro.runtime.harness import prior_shapes, run_jouleguard
from repro.runtime.oracle import default_energy_per_work

APP = "x264"
FACTOR = 2.0
ITERATIONS = 400


def _closed_loop(
    machine, app, seed, seo_kwargs=None, disturbance=None, seo_factory=None
):
    simulator = PlatformSimulator(machine, app.resource_profile, seed=seed)
    if disturbance is not None:
        simulator.add_disturbance(disturbance)
    epw = default_energy_per_work(machine, app)
    goal = EnergyGoal.from_factor(FACTOR, ITERATIONS, epw)
    rate_shape, power_shape = prior_shapes(machine)
    if seo_factory is not None:
        runtime = JouleGuardRuntime(
            seo=seo_factory(rate_shape, power_shape, seed + 1),
            table=app.table,
            goal=goal,
        )
    else:
        runtime = build_runtime(
            rate_shape, power_shape, app.table, goal, seed=seed + 1,
            **(seo_kwargs or {}),
        )
    total = 0.0
    accuracies = []
    for _ in range(ITERATIONS):
        decision = runtime.current_decision
        result = simulator.run_iteration(
            machine.space[decision.system_index],
            work=1.0,
            app_speedup=decision.app_config.speedup,
            app_power_factor=decision.app_config.power_factor,
        )
        total += result.energy_j
        accuracies.append(decision.app_config.accuracy)
        runtime.step(
            Measurement(
                work=1.0,
                energy_j=result.measured_power_w * result.time_s,
                rate=result.measured_rate,
                power_w=result.measured_power_w,
            )
        )
    error = max(0.0, (total / goal.budget_j - 1.0) * 100.0)
    return error, float(np.mean(accuracies))


def _mean_over_seeds(machine, app, n_seeds=3, **kwargs):
    outcomes = [
        _closed_loop(machine, app, seed=10 + s, **kwargs)
        for s in range(n_seeds)
    ]
    errors = [e for e, _ in outcomes]
    accs = [a for _, a in outcomes]
    return float(np.mean(errors)), float(np.mean(accs))


def run_ablations(machines):
    server = machines["server"]
    app = build_application(APP)
    rows = []

    rows.append(("default", *_mean_over_seeds(server, app)))

    # Fixed-ε exploration instead of VDBE (ε never adapts).
    class FixedEpsilon(Vdbe):
        def update(self, measured_eff, estimated_eff):
            return self.epsilon

    fixed = FixedEpsilon(n_configs=len(server.space))
    fixed.epsilon = 0.1
    rows.append(
        (
            "fixed-eps 0.1",
            *_mean_over_seeds(server, app, seo_kwargs={"vdbe": fixed}),
        )
    )

    # Literal 1/|Sys| ε weight (no floor): exploration never winds down.
    rows.append(
        (
            "literal 1/|Sys| weight",
            *_mean_over_seeds(
                server,
                app,
                seo_kwargs={
                    "vdbe": Vdbe(
                        n_configs=len(server.space), min_weight=0.0
                    )
                },
            ),
        )
    )

    # EWMA alpha sweep around the paper's 0.85.
    for alpha in (0.3, 0.85, 1.0):
        rows.append(
            (
                f"alpha {alpha}",
                *_mean_over_seeds(server, app, seo_kwargs={"alpha": alpha}),
            )
        )

    # Optimism inflation forces long systematic sweeps of a 1024-arm space.
    for optimism in (1.0, 1.3):
        rows.append(
            (
                f"optimism {optimism}",
                *_mean_over_seeds(
                    server, app, seo_kwargs={"optimism": optimism}
                ),
            )
        )

    # Classic UCB1 instead of the paper's VDBE (pull-every-arm capped at
    # 64 so the 1024-arm forced sweep does not dominate the run).
    rows.append(
        (
            "ucb1 (capped)",
            *_mean_over_seeds(
                server,
                app,
                seo_factory=lambda r, p, s: UcbSystemOptimizer(
                    r, p, max_initial_pulls=64, seed=s
                ),
            ),
        )
    )

    # A mid-run 30% slowdown disturbance: the adaptive pole must absorb it.
    rows.append(
        (
            "with disturbance",
            *_mean_over_seeds(
                server,
                app,
                disturbance=lambda t: 0.7 if t > 5.0 else 1.0,
            ),
        )
    )
    return rows


def _render(rows) -> str:
    lines = [
        f"Ablations ({APP} on Server, f={FACTOR}, {ITERATIONS} iterations, "
        "mean of 3 seeds)",
        f"{'variant':<26}{'rel. error %':>14}{'accuracy':>12}",
    ]
    for name, error, accuracy in rows:
        lines.append(f"{name:<26}{error:>14.2f}{accuracy:>12.4f}")
    return "\n".join(lines) + "\n"


def test_ablations(benchmark, machines):
    rows = benchmark.pedantic(
        run_ablations, args=(machines,), rounds=1, iterations=1
    )
    emit("ablations.txt", _render(rows))

    by_name = {name: (error, acc) for name, error, acc in rows}
    # The shipped defaults meet the goal.
    assert by_name["default"][0] < 3.0
    # The paper's α=0.85 is at least as good as the extremes here.
    assert (
        by_name["alpha 0.85"][0]
        <= max(by_name["alpha 0.3"][0], by_name["alpha 1.0"][0]) + 1.0
    )
    # Inflated optimism costs energy on the 1024-arm space.
    assert by_name["optimism 1.0"][0] <= by_name["optimism 1.3"][0] + 1.0
    # The runtime absorbs a mid-run disturbance.
    assert by_name["with disturbance"][0] < 5.0
