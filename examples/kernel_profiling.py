#!/usr/bin/env python
"""Profile real kernels into a PowerDial-style configuration table.

The shipped benchmark suite uses configuration tables calibrated to the
paper's Table 2, but the same machinery can build a table by *measuring*
a real kernel — the workflow PowerDial automates.  This example profiles
the Monte-Carlo swaption pricer at a ladder of trial counts, turns the
measurements into a ConfigTable, and runs it under an energy budget.

Usage::

    python examples/kernel_profiling.py
"""

from repro import get_machine, run_jouleguard
from repro.apps.profiling import ProfiledSetting, profile_application
from repro.hw.profiles import AppResourceProfile
from repro.kernels.montecarlo import (
    MarketModel,
    Swaption,
    price_swaption,
    pricing_accuracy,
)

TRIAL_LADDER = (50_000, 20_000, 8_000, 3_000, 1_200, 500, 200)


def make_settings():
    """One profiled setting per trial count; cost = trials (work is
    linear in trials), quality = price accuracy vs. the full run."""
    swaption, market = Swaption(), MarketModel()
    reference = price_swaption(swaption, market, TRIAL_LADDER[0], seed=0)

    def runner(trials):
        def run():
            price = price_swaption(swaption, market, trials, seed=1)
            return float(trials), pricing_accuracy(price, reference)

        return run

    return [
        ProfiledSetting(
            knob_settings=(("sim_trials", float(trials)),),
            run=runner(trials),
        )
        for trials in TRIAL_LADDER
    ]


def main() -> None:
    print("profiling the Monte-Carlo pricer (real execution)...")
    app = profile_application(
        "profiled-swaptions",
        make_settings(),
        resource_profile=AppResourceProfile(
            name="profiled-swaptions",
            base_rate=2.0,
            parallel_fraction=0.99,
            clock_sensitivity=1.0,
            memory_boundness=0.05,
            ht_gain=0.15,
            activity_factor=1.1,
        ),
        accuracy_metric="swaption price (measured)",
    )
    print(f"{'trials':>9}{'speedup':>10}{'accuracy':>11}")
    for config in app.table:
        print(f"{int(config.knob_settings[0][1]):>9d}"
              f"{config.speedup:>10.1f}{config.accuracy:>11.4f}")
    print(f"\nprofiled table: {len(app.table)} configs, max speedup "
          f"{app.table.max_speedup:.1f}x, frontier "
          f"{len(app.table.pareto_frontier)} configs")

    machine = get_machine("server")
    for factor in (2.0, 10.0, 40.0):
        result = run_jouleguard(
            machine, app, factor=factor, n_iterations=400, seed=6
        )
        print(f"goal {factor:5.1f}x: over-budget "
              f"{result.relative_error_pct:5.2f} %  accuracy "
              f"{result.mean_accuracy:.4f}")


if __name__ == "__main__":
    main()
