#!/usr/bin/env python
"""Bring your own platform: model a new machine from primitives.

Builds a Raspberry-Pi-4-like board (4 in-order cores, 6 clock steps,
low static power) from `repro.hw` primitives, characterizes its
efficiency landscape, and runs JouleGuard on it with the x264 workload —
nothing in the runtime is specific to the paper's three machines.

Usage::

    python examples/custom_platform.py
"""

from repro import build_application, run_jouleguard
from repro.hw import (
    Cluster,
    ConfigSpace,
    Knob,
    Machine,
    PlatformSimulator,
)
from repro.runtime.ascii_plot import sparkline


def build_pi() -> Machine:
    """A Raspberry-Pi-4-class board: 4 cores, 0.6–1.8 GHz, ~1 W idle."""
    space = ConfigSpace(
        knobs=[
            Knob("cores", (1, 2, 3, 4)),
            Knob("clock_ghz", (0.6, 0.9, 1.2, 1.4, 1.6, 1.8)),
        ]
    )
    return Machine(
        name="pi4",
        space=space,
        clusters=(
            Cluster(
                name="a72",
                cores_knob="cores",
                speed_knob="clock_ghz",
                perf_per_ghz=0.9,
                leak_w=0.08,
                dyn_w_per_ghz3=0.22,
            ),
        ),
        idle_w=1.1,
        external_w=1.4,  # board, SD card, ethernet PHY
        bandwidth_per_ctrl=3.0,
    )


def main() -> None:
    machine = build_pi()
    app = build_application("x264")
    print(f"custom platform '{machine.name}': "
          f"{len(machine.space)} configurations")

    simulator = PlatformSimulator(machine, app.resource_profile)
    linear = machine.space.linearized()
    efficiencies = [simulator.energy_efficiency(c) for c in linear]
    best = max(range(len(linear)), key=lambda i: efficiencies[i])
    print(f"efficiency  {sparkline(efficiencies)}")
    print(f"peak at index {best}: {linear[best]} "
          f"(default gain {efficiencies[best] / efficiencies[-1]:.2f}x)\n")

    # The runtime needs nothing else — prior shapes, goals, and the
    # closed loop all derive from the machine description.
    for factor in (1.5, 2.5, 3.5):
        result = run_jouleguard(
            machine, app, factor=factor, n_iterations=300, seed=1
        )
        print(f"goal {factor:.1f}x: over-budget "
              f"{result.relative_error_pct:5.2f} %  accuracy "
              f"{result.mean_accuracy:.4f}  "
              f"(oracle {result.oracle_acc:.4f})")


if __name__ == "__main__":
    main()
