#!/usr/bin/env python
"""Several approximate apps, one battery (extension beyond the paper).

A tablet runs a video encoder and a body tracker simultaneously against
one global energy budget.  The :class:`repro.core.multi.MultiAppCoordinator`
splits the budget proportionally, then transfers surplus joules from the
app that is running under budget to the one straining — so the *device*
keeps its guarantee while accuracy is re-maximized globally.

The tracker is deliberately given an under-sized initial share so the
transfer mechanism has work to do.

Usage::

    python examples/multi_app_battery.py
"""

import numpy as np

from repro import build_application, get_machine
from repro.core.budget import EnergyGoal
from repro.core.jouleguard import build_runtime
from repro.core.multi import MultiAppCoordinator
from repro.core.types import Measurement
from repro.hw.simulator import PlatformSimulator
from repro.runtime.harness import prior_shapes
from repro.runtime.oracle import default_energy_per_work

ITERATIONS = 500


def main() -> None:
    machine = get_machine("tablet")
    apps = {
        "x264": build_application("x264"),
        "bodytrack": build_application("bodytrack"),
    }
    needs = {
        name: default_energy_per_work(machine, app) * ITERATIONS
        for name, app in apps.items()
    }
    global_budget = sum(needs.values()) / 2.0  # halve the device's energy

    # Deliberately skew the initial split: bodytrack gets a share that
    # is infeasible alone (a 3.4x reduction), x264 a comfortable one.
    shares = {
        "x264": global_budget * 0.65,
        "bodytrack": global_budget * 0.35,
    }
    print(f"global budget: {global_budget:.1f} J "
          f"(default need {sum(needs.values()):.1f} J)")
    for name in apps:
        print(f"  {name:10s} share {shares[name]:8.1f} J "
              f"(default need {needs[name]:8.1f} J → "
              f"{needs[name] / shares[name]:.2f}x reduction)")

    rate_shape, power_shape = prior_shapes(machine)
    runtimes = {
        name: build_runtime(
            rate_shape,
            power_shape,
            app.table,
            EnergyGoal(total_work=ITERATIONS, budget_j=shares[name]),
            seed=i,
        )
        for i, (name, app) in enumerate(apps.items())
    }
    simulators = {
        name: PlatformSimulator(machine, app.resource_profile, seed=10 + i)
        for i, (name, app) in enumerate(apps.items())
    }
    coordinator = MultiAppCoordinator(runtimes, rebalance_period=25)

    accuracies = {name: [] for name in apps}
    for _ in range(ITERATIONS):
        for name in apps:
            decision = coordinator.current_decision(name)
            result = simulators[name].run_iteration(
                machine.space[decision.system_index],
                work=1.0,
                app_speedup=decision.app_config.speedup,
                app_power_factor=decision.app_config.power_factor,
            )
            accuracies[name].append(decision.app_config.accuracy)
            coordinator.step(
                name,
                Measurement(
                    work=1.0,
                    energy_j=result.measured_power_w * result.time_s,
                    rate=result.measured_rate,
                    power_w=result.measured_power_w,
                ),
            )

    print("\nafter the run:")
    report = coordinator.summary()
    for name, row in report.items():
        moved = row["effective_budget_j"] - row["budget_j"]
        print(f"  {name:10s} spent {row['energy_used_j']:8.1f} J of "
              f"{row['effective_budget_j']:8.1f} J effective "
              f"({moved:+7.1f} J transferred) | accuracy "
              f"{np.mean(accuracies[name]):.4f}")
    used = coordinator.total_energy_used_j
    print(f"\ndevice total: {used:.1f} J of {global_budget:.1f} J "
          f"({'within' if used <= global_budget * 1.01 else 'OVER'} the "
          "global budget)")


if __name__ == "__main__":
    main()
