#!/usr/bin/env python
"""Bring your own application: wire a new workload into JouleGuard.

The runtime needs three things from an application (Sec. 3.5–3.6):

1. a configuration table — speedup and an accuracy *order* per config,
2. a resource profile — how the default computation scales with
   cores/clock/bandwidth (only the simulator needs this; on real
   hardware the measurements do the job),
3. per-iteration feedback — work, energy, rate, power.

This example builds a fictional "thumbnailer" service with two dynamic
knobs (output resolution, filter quality), profiles it by declaration,
and runs it under an energy budget on the Tablet platform.  It also
shows the Sec. 3.6 ordinal-accuracy mode: the accuracy column is a
preference rank, not a measured number.

Usage::

    python examples/custom_application.py
"""

from repro import get_machine, run_jouleguard
from repro.apps.base import ApproximateApplication
from repro.apps.powerdial import build_table, calibrated_knob
from repro.hw.profiles import AppResourceProfile


def build_thumbnailer(ordinal_accuracy: bool = False) -> ApproximateApplication:
    """A 4 x 5 = 20-configuration image-thumbnailing service."""
    resolution = calibrated_knob(
        "resolution",
        values=(512, 256, 128, 64),
        max_speedup=6.0,
        max_accuracy_loss=0.25,
        loss_exponent=1.4,
    )
    filter_quality = calibrated_knob(
        "filter_quality",
        values=(5, 4, 3, 2, 1),
        max_speedup=1.8,
        max_accuracy_loss=0.10,
        loss_exponent=1.6,
    )
    table = build_table([resolution, filter_quality], jitter=0.01, seed=77)
    profile = AppResourceProfile(
        name="thumbnailer",
        base_rate=20.0,  # images/s on one reference core at 1 GHz
        parallel_fraction=0.97,  # images are independent
        clock_sensitivity=0.85,
        memory_boundness=0.4,
        ht_gain=0.3,
        activity_factor=0.9,
    )
    return ApproximateApplication(
        name="thumbnailer",
        framework="powerdial",
        accuracy_metric="perceptual quality rank"
        if ordinal_accuracy
        else "SSIM vs. full-quality output",
        table=table,
        resource_profile=profile,
        iteration_name="image",
        accuracy_is_ordinal=ordinal_accuracy,
    )


def main() -> None:
    machine = get_machine("tablet")
    app = build_thumbnailer()
    print(f"thumbnailer: {len(app.table)} configurations, "
          f"max speedup {app.table.max_speedup:.2f}x, "
          f"max accuracy loss {app.table.max_accuracy_loss:.1%}")
    print(f"Pareto frontier: {len(app.table.pareto_frontier)} configs\n")

    for factor in (1.5, 2.5, 4.0):
        result = run_jouleguard(
            machine, app, factor=factor, n_iterations=400, seed=4
        )
        print(f"goal {factor:.1f}x: over-budget "
              f"{result.relative_error_pct:5.2f} %  "
              f"accuracy {result.mean_accuracy:.4f}  "
              f"(oracle {result.oracle_acc:.4f})")

    # Sec. 3.6: the runtime never does arithmetic on accuracy, so a pure
    # preference order works identically.
    ordinal = build_thumbnailer(ordinal_accuracy=True)
    result = run_jouleguard(
        machine, ordinal, factor=2.5, n_iterations=400, seed=4
    )
    print(f"\nordinal-accuracy mode, goal 2.5x: over-budget "
          f"{result.relative_error_pct:.2f} % — selection still works "
          "on a preference order alone.")


if __name__ == "__main__":
    main()
