#!/usr/bin/env python
"""Racing vs. pacing to idle (paper Table 3's "idle" rows, ref. [19]).

For a periodic job with increasing slack, compares classic race-to-idle
(run flat out, then sleep) against pacing (slow down to just meet the
deadline) and the hybrid optimum, on all three platform models.  The
published observation reproduced: the winning heuristic is
platform-dependent, which is why a learner beats either fixed policy.

Usage::

    python examples/race_vs_pace.py
"""

from repro.hw import GENERIC_PROFILE, all_machines, compare_policies
from repro.hw.speedup_model import work_rate


def main() -> None:
    for name, machine in all_machines().items():
        default_rate = work_rate(
            machine, machine.default_config, GENERIC_PROFILE
        )
        print(f"\n{name} (default completes 1 work unit in "
              f"{1.0 / default_rate * 1e3:.2f} ms):")
        print(f"{'slack':>7}{'race J':>10}{'pace J':>10}{'hybrid J':>10}"
              f"{'winner':>8}{'gap':>7}")
        for slack in (1.2, 2.0, 4.0, 8.0, 16.0):
            period = slack / default_rate
            comparison = compare_policies(
                machine, GENERIC_PROFILE, work=1.0, period_s=period
            )
            print(f"{slack:>6.1f}x"
                  f"{comparison.race.energy_j:>10.3f}"
                  f"{comparison.pace.energy_j:>10.3f}"
                  f"{comparison.hybrid.energy_j:>10.3f}"
                  f"{comparison.winner:>8}"
                  f"{comparison.heuristic_gap:>7.2f}")
    print("\nNeither heuristic wins everywhere — the gap column is what a"
          "\nfeedback learner (JouleGuard's SEO) closes automatically.")


if __name__ == "__main__":
    main()
