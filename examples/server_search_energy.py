#!/usr/bin/env python
"""The paper's motivating experiment (Sec. 2): swish++ on a server.

A document-search service must cut its energy per query by one third.
This script reproduces the four approaches of Fig. 1 — system-only,
application-only, uncoordinated, and JouleGuard — and prints the
energy/accuracy outcome plus a coarse time-series so the uncoordinated
oscillation is visible.

It also demonstrates the *real* search engine substrate: the accuracy
numbers in the application's configuration table correspond to measured
F1 against full result lists on a synthetic Gutenberg-like corpus.

Usage::

    python examples/server_search_energy.py
"""

import numpy as np

from repro import build_application, get_machine, run_jouleguard
from repro.apps.swishpp import measure_kernel_tradeoff
from repro.runtime.baselines import (
    run_application_only,
    run_system_only,
    run_uncoordinated,
)

FACTOR = 1.5
QUERIES = 1200


def main() -> None:
    print("Measured search-engine truncation quality (real inverted index):")
    for limit, f1 in measure_kernel_tradeoff(n_queries=30, seed=1):
        label = "unlimited" if limit == 0 else f"top-{int(limit)}"
        print(f"  max_results={label:10s} mean F1 vs. full results: {f1:.3f}")
    print()

    machine = get_machine("server")
    app = build_application("swish")
    runners = {
        "system-only": run_system_only,
        "app-only": run_application_only,
        "uncoordinated": run_uncoordinated,
        "jouleguard": run_jouleguard,
    }
    results = {}
    for name, runner in runners.items():
        results[name] = runner(
            machine, app, factor=FACTOR, n_iterations=QUERIES, seed=2
        )

    target = results["jouleguard"].goal.energy_per_work
    print(f"goal: {target:.4f} J/query "
          f"(default {results['jouleguard'].default_epw:.4f}, "
          f"reduction {FACTOR}x)\n")
    print(f"{'approach':<15}{'J/query':>10}{'over budget':>13}"
          f"{'accuracy':>10}")
    for name, result in results.items():
        epw = result.achieved_energy_j / result.trace.total_work()
        print(f"{name:<15}{epw:>10.4f}"
              f"{result.relative_error_pct:>12.1f}%"
              f"{result.mean_accuracy:>10.3f}")

    print("\nenergy-per-query trace (normalized to goal, 50-query bins):")
    print("bin    " + "".join(f"{name:>15}" for name in results))
    series = {
        name: result.trace.windowed_energy_per_work(50) / target
        for name, result in results.items()
    }
    length = min(len(s) for s in series.values())
    for i in range(0, length, 150):
        print(f"{i:>6d} " + "".join(f"{series[name][i]:>15.2f}"
                                    for name in results))
    print("\nNote the uncoordinated column wandering while JouleGuard"
          " holds 1.00.")


if __name__ == "__main__":
    main()
