#!/usr/bin/env python
"""Battery-budget video encoding on a phone (the paper's Sec. 1 pitch).

"Few mobile users want to minimize energy — they need guarantees that
their battery will last until they return to a charger."  This example
gives the Mobile platform a fixed battery allowance for encoding a long
video and compares three strategies:

* default      — run flat out; the battery dies early,
* app-only     — PowerDial-style throttling on the default system config,
* jouleguard   — coordinated system + application adaptation.

Usage::

    python examples/mobile_video_battery.py
"""

import numpy as np

from repro import build_application, get_machine, run_jouleguard
from repro.runtime.baselines import run_application_only
from repro.runtime.oracle import default_energy_per_work

FRAMES = 600
#: Battery allowance: 40 % of what the default configuration would burn.
BATTERY_FACTOR = 2.5


def describe(name, result):
    frames_within_budget = int(
        np.searchsorted(
            np.cumsum(result.trace.true_energy_j), result.goal.budget_j
        )
    )
    print(f"{name:12s}: used {result.achieved_energy_j:8.1f} J of "
          f"{result.goal.budget_j:8.1f} J budget | "
          f"battery lasted {min(frames_within_budget, FRAMES):3d}/{FRAMES} frames | "
          f"accuracy {result.mean_accuracy:.4f}")


def main() -> None:
    machine = get_machine("mobile")
    app = build_application("x264")
    epw = default_energy_per_work(machine, app)
    print(f"default encode cost: {epw:.4f} J/frame; battery allows "
          f"{FRAMES * epw / BATTERY_FACTOR:.1f} J for {FRAMES} frames "
          f"({BATTERY_FACTOR}x reduction)\n")

    # Default configuration: no adaptation at all (factor 1 budget is the
    # default draw — re-use the app-only runner with a never-binding goal
    # by reporting against the tight budget instead).
    flat_out = run_application_only(
        machine, app, factor=1.0, n_iterations=FRAMES, seed=1
    )
    # Report the flat-out run against the *tight* budget:
    tight_budget = FRAMES * epw / BATTERY_FACTOR
    burned = np.cumsum(flat_out.trace.true_energy_j)
    died_at = int(np.searchsorted(burned, tight_budget))
    print(f"{'default':12s}: used {burned[-1]:8.1f} J | battery died at "
          f"frame {died_at}/{FRAMES} | accuracy 1.0000 (until it died)")

    app_only = run_application_only(
        machine, app, factor=BATTERY_FACTOR, n_iterations=FRAMES, seed=1
    )
    describe("app-only", app_only)

    guarded = run_jouleguard(
        machine, app, factor=BATTERY_FACTOR, n_iterations=FRAMES, seed=1
    )
    describe("jouleguard", guarded)

    print(f"\nJouleGuard finished the video within the battery budget at "
          f"{guarded.mean_accuracy:.1%} of default quality "
          f"(app-only managed {app_only.mean_accuracy:.1%}).")


if __name__ == "__main__":
    main()
