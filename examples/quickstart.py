#!/usr/bin/env python
"""Quickstart: meet an energy budget with near-optimal accuracy.

Runs the x264 video encoder on the Server platform model with a goal of
halving energy consumption relative to the out-of-the-box configuration,
then reports how JouleGuard did against the budget and the clairvoyant
oracle.

Usage::

    python examples/quickstart.py
"""

from repro import build_application, get_machine, run_jouleguard


def main() -> None:
    machine = get_machine("server")
    app = build_application("x264")

    result = run_jouleguard(
        machine,
        app,
        factor=2.0,  # halve energy vs. the default configuration
        n_iterations=300,  # 300 frames
        seed=0,
    )

    print(f"application      : {result.app_name} on {result.machine_name}")
    print(f"energy budget    : {result.goal.budget_j:,.0f} J "
          f"({result.goal.energy_per_work:.2f} J/frame)")
    print(f"energy consumed  : {result.achieved_energy_j:,.0f} J")
    print(f"relative error   : {result.relative_error_pct:.2f} % "
          "(0 = within budget)")
    print(f"mean accuracy    : {result.mean_accuracy:.4f} "
          "(1 = default configuration quality)")
    print(f"oracle accuracy  : {result.oracle_acc:.4f}")
    print(f"effective acc.   : {result.effective_acc:.4f} "
          "(fraction of the best any controller could do)")
    print(f"energy savings   : {result.energy_savings:.2f}x vs. default")

    decision = None
    for decision in reversed(result.trace.system_index):
        break
    config = machine.space[decision]
    print(f"settled system config: {config}")


if __name__ == "__main__":
    main()
