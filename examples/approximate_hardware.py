#!/usr/bin/env python
"""Approximate hardware (the paper's Sec. 3.7 modification).

Approximate hardware keeps timing but trades power for occasional wrong
results (voltage over-scaling, inexact arithmetic units).  The paper
sketches the JouleGuard modification: learn the most efficient
accuracy-preserving system configuration as usual, then let the
controller reduce *power* (rather than demand speedup) by tuning the
hardware approximation level.

This example simulates a processor with five voltage-overscaling levels
and closes the loop with :class:`repro.core.hwapprox.PowerReductionController`.

Usage::

    python examples/approximate_hardware.py
"""

import numpy as np

from repro.core.hwapprox import (
    HardwareApproxLevel,
    HardwareApproxTable,
    PowerReductionController,
)

#: Simulated voltage-overscaling levels: deeper undervolting cuts power
#: but raises the arithmetic error rate (accuracy is 1 - error impact).
LEVELS = HardwareApproxTable(
    [
        HardwareApproxLevel(index=0, power_factor=1.00, accuracy=1.000),
        HardwareApproxLevel(index=1, power_factor=0.92, accuracy=0.998),
        HardwareApproxLevel(index=2, power_factor=0.84, accuracy=0.990),
        HardwareApproxLevel(index=3, power_factor=0.74, accuracy=0.960),
        HardwareApproxLevel(index=4, power_factor=0.62, accuracy=0.900),
    ]
)

NOMINAL_POWER_W = 50.0
ITERATIONS = 120


def main() -> None:
    rng = np.random.default_rng(5)
    controller = PowerReductionController(
        min_factor=LEVELS.min_power_factor
    )

    for budget_w in (48.0, 42.0, 36.0, 30.0):
        level = LEVELS.best_accuracy_for_power_factor(1.0)
        history = []
        for _ in range(ITERATIONS):
            measured = (
                NOMINAL_POWER_W
                * level.power_factor
                * float(rng.lognormal(0, 0.02))
            )
            factor = controller.step(
                target_power=budget_w,
                measured_power=measured,
                est_system_power=NOMINAL_POWER_W,
                pole=0.1,
            )
            level = LEVELS.best_accuracy_for_power_factor(factor)
            history.append((measured, level.accuracy))
        steady = history[ITERATIONS // 2 :]
        mean_power = np.mean([p for p, _ in steady])
        mean_accuracy = np.mean([a for _, a in steady])
        feasible = budget_w >= NOMINAL_POWER_W * LEVELS.min_power_factor
        print(f"power budget {budget_w:5.1f} W: steady power "
              f"{mean_power:5.1f} W, accuracy {mean_accuracy:.3f}"
              + ("" if feasible else "  (infeasible: pinned at the most"
                 " aggressive level)"))


if __name__ == "__main__":
    main()
