#!/usr/bin/env python
"""Regime-switching workloads: energy guarantees under burstiness.

Fig. 8's input has three hand-placed scenes; real inputs switch regimes
stochastically.  This example drives bodytrack with a Markov workload
(easy/normal/hard scenes with realistic dwell times), shows JouleGuard
holding the budget through every transition, and renders the
accuracy/difficulty traces as terminal sparklines.

Usage::

    python examples/bursty_workload.py
"""

import numpy as np

from repro import build_application, get_machine, run_jouleguard
from repro.runtime.ascii_plot import sparkline
from repro.workloads.traces import MarkovWorkload, Regime

REGIMES = (
    Regime("easy", 0.7, mean_dwell=60.0),
    Regime("normal", 1.0, mean_dwell=80.0),
    Regime("hard", 1.35, mean_dwell=40.0),
)
FRAMES = 600
FACTOR = 3.0


def main() -> None:
    machine = get_machine("mobile")
    app = build_application("bodytrack")
    markov = MarkovWorkload(REGIMES, n_iterations=FRAMES, seed=11)
    workload = markov.to_phased()

    result = run_jouleguard(
        machine, app, factor=FACTOR, workload=workload, seed=12
    )
    difficulties = np.array(list(workload.iteration_difficulty()))
    accuracy = np.array(result.trace.accuracy)
    epw = result.trace.energy_per_work()

    print(f"{FRAMES} frames over {len(workload.phases)} regime segments "
          f"(goal {FACTOR}x, target {result.goal.energy_per_work:.4f} "
          "J/frame)\n")
    print(f"difficulty  {sparkline(difficulties)}")
    print(f"accuracy    {sparkline(accuracy)}")
    print(f"energy/frm  {sparkline(epw)}")
    print()

    # Per-regime accounting: easy scenes get the accuracy headroom.
    by_regime = {}
    for (name, _), acc in zip(markov.realize(), accuracy):
        by_regime.setdefault(name, []).append(acc)
    for name in ("easy", "normal", "hard"):
        if name in by_regime:
            print(f"  {name:7s}: {len(by_regime[name]):3d} frames, "
                  f"mean accuracy {np.mean(by_regime[name]):.4f}")
    print(f"\nbudget adherence: {result.relative_error_pct:.2f} % over "
          f"({result.achieved_energy_j:.1f} J of "
          f"{result.goal.budget_j:.1f} J)")


if __name__ == "__main__":
    main()
