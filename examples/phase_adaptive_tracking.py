#!/usr/bin/env python
"""Phase adaptation (the paper's Sec. 5.6 / Fig. 8 experiment).

bodytrack processes three concatenated scenes — hard, easy (naturally
~40 % faster), hard — under an aggressive energy goal on the Mobile
platform.  JouleGuard should hold energy per frame on target throughout
and convert the easy scene's headroom into *accuracy*.

Usage::

    python examples/phase_adaptive_tracking.py
"""

import numpy as np

from repro import build_application, get_machine, run_jouleguard
from repro.workloads import three_scene_video

FRAMES_PER_SCENE = 200
#: The paper's Fig. 4/8 goal on Mobile: a four-fold energy reduction.
FACTOR = 4.0


def main() -> None:
    machine = get_machine("mobile")
    app = build_application("bodytrack")
    factor = FACTOR
    workload = three_scene_video(FRAMES_PER_SCENE)

    result = run_jouleguard(
        machine, app, factor=factor, workload=workload, seed=3
    )

    target = result.goal.energy_per_work
    epw = result.trace.energy_per_work()
    accuracy = np.array(result.trace.accuracy)
    print(f"goal: {factor:.2f}x energy reduction "
          f"({target:.4f} J/frame); relative error "
          f"{result.relative_error_pct:.2f} %\n")

    print(f"{'scene':<8}{'frames':>12}{'J/frame vs target':>20}"
          f"{'accuracy':>11}")
    n = FRAMES_PER_SCENE
    for name, sl in (
        ("hard", slice(n // 4, n)),
        ("easy", slice(n + n // 4, 2 * n)),
        ("hard", slice(2 * n + n // 4, 3 * n)),
    ):
        print(f"{name:<8}{f'{sl.start}-{sl.stop}':>12}"
              f"{np.mean(epw[sl]) / target:>20.3f}"
              f"{accuracy[sl].mean():>11.4f}")

    print("\nper-50-frame accuracy trace (watch the middle bump):")
    for start in range(0, 3 * n, 50):
        chunk = accuracy[start : start + 50].mean()
        bar = "#" * int((chunk - accuracy.min()) * 400)
        print(f"  frames {start:3d}-{start + 49:3d}: {chunk:.4f} {bar}")


if __name__ == "__main__":
    main()
